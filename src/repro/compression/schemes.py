"""Compression *schemes*: the metadata face of each method.

A :class:`Scheme` prices one method for a given model and world size —
wire bytes per worker, number of collective messages, encode/decode
seconds, whether all-reduce applies, and the decode working-set unit for
the memory model.  This is what the performance model (§4 of the paper)
and the what-if engine consume; the numeric compressors/aggregators in the
sibling modules carry the actual math.

The two Table-1 columns appear here as :attr:`Scheme.all_reducible` and
:attr:`Scheme.layerwise`; ``benchmarks/test_table1_classification.py``
regenerates the table from these flags and the property tests verify the
``all_reducible`` claims against the numeric implementations.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..models import ModelSpec
from ..units import FLOAT32_BYTES
from . import kernel_cost as kc
from .kernel_cost import KernelProfile, v100_kernel_profile


@dataclass(frozen=True)
class SchemeCost:
    """What one method costs for one (model, world size) pair.

    Attributes:
        wire_bytes: Per-worker payload bytes for the whole gradient.
        messages: Number of collective invocations (each pays its own
            latency term — PowerSGD pays two, for P then Q).
        encode_decode_s: Total compression + decompression seconds per
            iteration (includes the linear-in-p decode for gather
            methods).
        all_reducible: Whether the payloads aggregate via all-reduce.
        gather_stack_bytes: Bytes of *dense* gradient the decode path
            materializes per received payload (0 for all-reduce methods);
            multiplied by the world size this is the aggregation working
            set that OOMs BERT past 32 GPUs in the paper.
    """

    wire_bytes: float
    messages: int
    encode_decode_s: float
    all_reducible: bool
    gather_stack_bytes: float

    def __post_init__(self) -> None:
        # np.any instead of plain comparisons: the grid engine
        # (repro.core.grid) prices schemes with array-valued kernel
        # profiles, making encode_decode_s an array along the swept axis.
        if np.any(np.asarray(self.wire_bytes) <= 0):
            raise ConfigurationError(
                f"scheme produced non-positive wire bytes "
                f"({self.wire_bytes})")
        if not isinstance(self.messages, int) or self.messages < 1:
            raise ConfigurationError(
                f"messages must be a positive integer, got "
                f"{self.messages!r}")
        if np.any(np.asarray(self.encode_decode_s) < 0):
            raise ConfigurationError(
                f"encode_decode_s must be >= 0, got {self.encode_decode_s}")
        if np.any(np.asarray(self.gather_stack_bytes) < 0):
            raise ConfigurationError(
                f"gather_stack_bytes must be >= 0, "
                f"got {self.gather_stack_bytes}")

    def compression_ratio(self, model: ModelSpec) -> float:
        """Dense gradient bytes over wire bytes."""
        return model.grad_bytes / self.wire_bytes

    def aggregation_working_set(self, world_size: int) -> float:
        """Decode working set at ``world_size`` workers."""
        return self.gather_stack_bytes * world_size


class Scheme(abc.ABC):
    """One gradient compression method, parameterized."""

    name: str = "abstract"
    all_reducible: bool = False
    layerwise: bool = True
    #: Whether the method composes with DDP's per-bucket overlap: it must
    #: be all-reducible, layer-wise, *and* have negligible per-bucket
    #: encode cost, so it can run inside the communication hook without
    #: the §3.1 contention (only fp16 qualifies among the built-ins).
    ddp_overlap: bool = False

    @property
    def label(self) -> str:
        """Display label, e.g. ``"powersgd(rank=4)"``."""
        return self.name

    @abc.abstractmethod
    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        """Price this scheme for one model and world size."""

    def _profile(self, profile: Optional[KernelProfile]) -> KernelProfile:
        return profile if profile is not None else v100_kernel_profile()

    def _stack_bytes(self, model: ModelSpec) -> float:
        """Dense-stacking unit for gather decodes (see ModelSpec docs)."""
        if self.all_reducible:
            return 0.0
        if model.gather_granularity == "layer":
            return float(model.largest_layer_grad_bytes)
        return float(model.grad_bytes)

    def __repr__(self) -> str:
        return f"<Scheme {self.label}>"


class SyncSGDScheme(Scheme):
    """The baseline: dense fp32 gradients, ring all-reduce, zero encode
    cost.  Bucketing/overlap are applied by the DDP performance model,
    not here."""

    name = "syncsgd"
    all_reducible = True
    layerwise = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        return SchemeCost(
            wire_bytes=float(model.grad_bytes),
            messages=1,
            encode_decode_s=0.0,
            all_reducible=True,
            gather_stack_bytes=0.0,
        )


class FP16Scheme(Scheme):
    """Half-precision communication: 2x reduction, near-free encode.

    The cast is cheap enough to run inside the DDP bucket hook, so fp16
    keeps communication/computation overlap — which is exactly why the
    paper's first finding recommends it over aggressive compression.
    """

    name = "fp16"
    all_reducible = True
    layerwise = True
    ddp_overlap = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=model.grad_bytes / 2.0,
            messages=1,
            encode_decode_s=kc.fp16_encode_decode_time(model, prof),
            all_reducible=True,
            gather_stack_bytes=0.0,
        )


class PowerSGDScheme(Scheme):
    """PowerSGD(rank): low-rank P/Q factors, all-reduce compatible, two
    messages; non-matrix parameters (biases, norms) travel uncompressed."""

    name = "powersgd"
    all_reducible = True
    layerwise = True

    def __init__(self, rank: int = 4):
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank}")
        self.rank = rank

    @property
    def label(self) -> str:
        return f"powersgd(rank={self.rank})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        wire = 0.0
        for layer in model.trainable_layers:
            if layer.has_matrix:
                m, n = layer.matrix_shape
                r = max(1, min(self.rank, m, n))
                wire += r * (m + n) * FLOAT32_BYTES
                wire += layer.extra_params * FLOAT32_BYTES
            else:
                wire += layer.num_params * FLOAT32_BYTES
        return SchemeCost(
            wire_bytes=wire,
            messages=2,
            encode_decode_s=kc.powersgd_encode_decode_time(
                model, self.rank, prof),
            all_reducible=True,
            gather_stack_bytes=0.0,
        )


class TopKScheme(Scheme):
    """Top-K sparsification: values + indices, all-gather aggregation."""

    name = "topk"
    all_reducible = False
    layerwise = True

    def __init__(self, fraction: float = 0.01):
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    @property
    def label(self) -> str:
        return f"topk({self.fraction:.0%})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        selected = self.fraction * model.num_params
        index_bytes = 4 if model.num_params < 2**31 else 8
        return SchemeCost(
            wire_bytes=selected * (FLOAT32_BYTES + index_bytes),
            messages=2,
            encode_decode_s=kc.topk_encode_decode_time(
                model, self.fraction, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class SignSGDScheme(Scheme):
    """signSGD with majority vote: 1 bit per coordinate, all-gather."""

    name = "signsgd"
    all_reducible = False
    layerwise = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=math.ceil(model.num_params / 8.0),
            messages=1,
            encode_decode_s=kc.signsgd_encode_decode_time(
                model, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class QSGDScheme(Scheme):
    """QSGD with ``levels`` quantization buckets, fixed-width coding."""

    name = "qsgd"
    all_reducible = False
    layerwise = True

    def __init__(self, levels: int = 16):
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        self.levels = levels

    @property
    def label(self) -> str:
        return f"qsgd(levels={self.levels})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        bits = 1.0 + math.ceil(math.log2(self.levels + 1))
        return SchemeCost(
            wire_bytes=model.num_params * bits / 8.0 + FLOAT32_BYTES,
            messages=1,
            encode_decode_s=kc.qsgd_encode_decode_time(
                model, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class TernGradScheme(Scheme):
    """TernGrad: 2 bits per coordinate plus a scale, all-gather."""

    name = "terngrad"
    all_reducible = False
    layerwise = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=model.num_params / 4.0 + FLOAT32_BYTES,
            messages=1,
            encode_decode_s=kc.terngrad_encode_decode_time(
                model, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class OneBitScheme(Scheme):
    """1-bit SGD: bit mask plus two centroids per tensor, all-gather."""

    name = "onebit"
    all_reducible = False
    layerwise = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=math.ceil(model.num_params / 8.0) + 2 * FLOAT32_BYTES,
            messages=1,
            encode_decode_s=kc.onebit_encode_decode_time(
                model, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class ATOMOScheme(Scheme):
    """ATOMO with SVD atoms: like PowerSGD sizes plus singular values,
    but per-worker factors do not align, so all-gather + expensive SVD."""

    name = "atomo"
    all_reducible = False
    layerwise = True

    def __init__(self, rank: int = 4):
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank}")
        self.rank = rank

    @property
    def label(self) -> str:
        return f"atomo(rank={self.rank})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        wire = 0.0
        for layer in model.trainable_layers:
            if layer.has_matrix:
                m, n = layer.matrix_shape
                r = max(1, min(self.rank, m, n))
                wire += (r * (m + n + 1) + layer.extra_params) * FLOAT32_BYTES
            else:
                wire += layer.num_params * FLOAT32_BYTES
        return SchemeCost(
            wire_bytes=wire,
            messages=3,
            encode_decode_s=kc.atomo_encode_decode_time(
                model, self.rank, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class RandomKScheme(Scheme):
    """Shared-seed Random-K: values only, all-reduce compatible, but the
    shared draw spans the whole flat gradient (not layer-wise — Table 1)."""

    name = "randomk"
    all_reducible = True
    layerwise = False

    def __init__(self, fraction: float = 0.01):
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    @property
    def label(self) -> str:
        return f"randomk({self.fraction:.0%})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=self.fraction * model.num_params * FLOAT32_BYTES,
            messages=1,
            encode_decode_s=kc.randomk_encode_decode_time(
                model, self.fraction, prof),
            all_reducible=True,
            gather_stack_bytes=0.0,
        )


class DGCScheme(Scheme):
    """Deep Gradient Compression: threshold sparsification, values +
    indices via all-gather."""

    name = "dgc"
    all_reducible = False
    layerwise = True

    def __init__(self, fraction: float = 0.001):
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    @property
    def label(self) -> str:
        return f"dgc({self.fraction:.1%})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        selected = self.fraction * model.num_params
        index_bytes = 4 if model.num_params < 2**31 else 8
        return SchemeCost(
            wire_bytes=selected * (FLOAT32_BYTES + index_bytes),
            messages=2,
            encode_decode_s=kc.dgc_encode_decode_time(
                model, self.fraction, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class GradiVeqScheme(Scheme):
    """GradiVeq-style shared-basis projection: linear (all-reducible)
    and layer-wise — Table 1's other "yes/yes" row besides PowerSGD."""

    name = "gradiveq"
    all_reducible = True
    layerwise = True

    def __init__(self, block: int = 512, dims: int = 64):
        if block < 1 or dims < 1 or dims > block:
            raise ConfigurationError(
                f"invalid block/dims ({block}, {dims})")
        self.block = block
        self.dims = dims

    @property
    def label(self) -> str:
        return f"gradiveq({self.block}->{self.dims})"

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        blocks = math.ceil(model.num_params / self.block)
        return SchemeCost(
            wire_bytes=blocks * self.dims * FLOAT32_BYTES,
            messages=1,
            encode_decode_s=kc.gradiveq_encode_decode_time(
                model, self.block, self.dims, prof),
            all_reducible=True,
            gather_stack_bytes=0.0,
        )


class NaturalScheme(Scheme):
    """Natural compression [30]: sign + 8-bit exponent per value (~3.6x),
    unbiased, nearly-free encode, but exponent payloads do not sum —
    all-gather aggregation."""

    name = "natural"
    all_reducible = False
    layerwise = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=model.num_params * 9.0 / 8.0,
            messages=1,
            encode_decode_s=kc.qsgd_encode_decode_time(
                model, prof, world_size),  # same elementwise structure
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


class EFSignScheme(Scheme):
    """EF-signSGD [35]: signSGD's wire format plus a scale, with error
    feedback restoring convergence; still all-gather-bound."""

    name = "efsignsgd"
    all_reducible = False
    layerwise = True

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=math.ceil(model.num_params / 8.0) + FLOAT32_BYTES,
            messages=1,
            encode_decode_s=kc.signsgd_encode_decode_time(
                model, prof, world_size),
            all_reducible=False,
            gather_stack_bytes=self._stack_bytes(model),
        )


#: The Table-1 roster, in the paper's row order, with default parameters.
def table1_schemes() -> List[Scheme]:
    """All methods the paper's Table 1 classifies, as scheme objects."""
    return [
        SyncSGDScheme(),
        GradiVeqScheme(),
        PowerSGDScheme(rank=4),
        RandomKScheme(fraction=0.01),
        ATOMOScheme(rank=4),
        SignSGDScheme(),
        TernGradScheme(),
        QSGDScheme(levels=16),
        DGCScheme(fraction=0.001),
    ]
