"""Transformer model specs: BERT (encoder) and GPT-2 (decoder) families.

Like the ResNet builders, these produce metadata-only :class:`ModelSpec`
objects: exact parameter shapes per layer, forward FLOPs per sample (one
sequence) and activation footprints.  BERT_BASE comes out at ~110 M
parameters / ~438 MB fp32 — the paper rounds this to 418 MB; the ~5%
difference is whether the pooler and token-type embeddings are counted
and does not affect any trend we reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..units import FLOAT32_BYTES
from .flops import attention_flops, linear_flops, norm_flops
from .layers import LayerSpec, ModelSpec


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters shared by the BERT/GPT builders."""

    name: str
    vocab_size: int
    hidden: int
    num_layers: int
    num_heads: int
    intermediate: int
    seq_len: int
    max_positions: int
    num_token_types: int = 0
    num_classes: int = 0  # classification head width; 0 = LM head (tied)
    default_batch_size: int = 12

    def __post_init__(self) -> None:
        for attr in ("vocab_size", "hidden", "num_layers", "num_heads",
                     "intermediate", "seq_len", "max_positions"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{self.name}: {attr} must be > 0")
        if self.hidden % self.num_heads:
            raise ConfigurationError(
                f"{self.name}: hidden={self.hidden} not divisible by "
                f"num_heads={self.num_heads}")
        if self.seq_len > self.max_positions:
            raise ConfigurationError(
                f"{self.name}: seq_len={self.seq_len} exceeds "
                f"max_positions={self.max_positions}")


def _linear(name: str, cin: int, cout: int, tokens: int) -> LayerSpec:
    return LayerSpec(
        name=name, kind="linear",
        param_shape=(cout, cin), matrix_shape=(cout, cin),
        extra_params=cout,
        fwd_flops_per_sample=linear_flops(cin, cout, tokens),
        activation_bytes_per_sample=cout * tokens * FLOAT32_BYTES,
    )


def _layernorm(name: str, hidden: int, tokens: int) -> LayerSpec:
    return LayerSpec(
        name=name, kind="norm",
        extra_params=2 * hidden,
        fwd_flops_per_sample=norm_flops(hidden, tokens),
        activation_bytes_per_sample=hidden * tokens * FLOAT32_BYTES,
    )


def _encoder_layer(prefix: str, cfg: TransformerConfig) -> List[LayerSpec]:
    """One pre-/post-norm transformer block: QKV + attention + output
    projection + 2-layer FFN + two layer norms."""
    h, L = cfg.hidden, cfg.seq_len
    layers = [
        _linear(f"{prefix}.attn.q", h, h, L),
        _linear(f"{prefix}.attn.k", h, h, L),
        _linear(f"{prefix}.attn.v", h, h, L),
        LayerSpec(
            name=f"{prefix}.attn.scores", kind="attention",
            fwd_flops_per_sample=attention_flops(L, h, cfg.num_heads),
            activation_bytes_per_sample=(
                cfg.num_heads * L * L * FLOAT32_BYTES),
        ),
        _linear(f"{prefix}.attn.out", h, h, L),
        _layernorm(f"{prefix}.ln1", h, L),
        _linear(f"{prefix}.ffn.in", h, cfg.intermediate, L),
        _linear(f"{prefix}.ffn.out", cfg.intermediate, h, L),
        _layernorm(f"{prefix}.ln2", h, L),
    ]
    return layers


def build_transformer(cfg: TransformerConfig) -> ModelSpec:
    """Build a transformer spec from a :class:`TransformerConfig`."""
    h, L = cfg.hidden, cfg.seq_len
    layers: List[LayerSpec] = [
        LayerSpec(
            name="embeddings.word", kind="embedding",
            param_shape=(cfg.vocab_size, h),
            matrix_shape=(cfg.vocab_size, h),
            # Lookup is a gather; negligible FLOPs.
            activation_bytes_per_sample=h * L * FLOAT32_BYTES,
        ),
        LayerSpec(
            name="embeddings.position", kind="embedding",
            param_shape=(cfg.max_positions, h),
            matrix_shape=(cfg.max_positions, h),
            activation_bytes_per_sample=h * L * FLOAT32_BYTES,
        ),
    ]
    if cfg.num_token_types:
        layers.append(LayerSpec(
            name="embeddings.token_type", kind="embedding",
            param_shape=(cfg.num_token_types, h),
            matrix_shape=(cfg.num_token_types, h),
            activation_bytes_per_sample=h * L * FLOAT32_BYTES,
        ))
    layers.append(_layernorm("embeddings.ln", h, L))

    for i in range(cfg.num_layers):
        layers.extend(_encoder_layer(f"encoder.{i}", cfg))

    if cfg.num_classes:
        # Fine-tuning head (the paper fine-tunes BERT on Sogou News):
        # a pooler over [CLS] plus a small classifier.
        layers.append(_linear("pooler", h, h, 1))
        layers.append(LayerSpec(
            name="classifier", kind="linear",
            param_shape=(cfg.num_classes, h),
            matrix_shape=(cfg.num_classes, h),
            extra_params=cfg.num_classes,
            fwd_flops_per_sample=linear_flops(h, cfg.num_classes),
            activation_bytes_per_sample=cfg.num_classes * FLOAT32_BYTES,
        ))
    else:
        # LM head tied to the word embedding: no extra parameters, but the
        # vocabulary projection is real compute.
        layers.append(LayerSpec(
            name="lm_head", kind="linear",
            fwd_flops_per_sample=linear_flops(h, cfg.vocab_size, L),
            activation_bytes_per_sample=0.0,
        ))

    return ModelSpec(
        name=cfg.name,
        layers=tuple(layers),
        default_batch_size=cfg.default_batch_size,
        sample_description=f"sequence of {L} tokens",
        # fp32 transformer kernels on V100 sustain a much smaller fraction
        # of peak than cuDNN convolutions (no tensor cores used by the
        # paper's fp32 baseline); calibrated so BERT_BASE backward at the
        # paper's batch sizes lands where its reported speedups require.
        compute_efficiency=0.4,
        # A batch is already seq_len tokens wide, so the GPU saturates at
        # batch size 1.
        batch_half_saturation=0.0,
    )


#: BERT_BASE fine-tuned for 5-way classification (Sogou News, as in the
#: paper's timing runs; long news documents -> full 512-token sequences,
#: which is also what the paper's small BERT batch sizes of 10-12 imply).
#: ~110 M params, ~438 MB fp32 gradient.
BERT_BASE_CONFIG = TransformerConfig(
    name="bert-base", vocab_size=30522, hidden=768, num_layers=12,
    num_heads=12, intermediate=3072, seq_len=512, max_positions=512,
    num_token_types=2, num_classes=5, default_batch_size=12,
)

#: BERT_LARGE with the same head. ~335 M params, ~1.3 GB fp32 gradient.
BERT_LARGE_CONFIG = TransformerConfig(
    name="bert-large", vocab_size=30522, hidden=1024, num_layers=24,
    num_heads=16, intermediate=4096, seq_len=512, max_positions=512,
    num_token_types=2, num_classes=5, default_batch_size=6,
)

#: GPT-2 small as a causal-LM workload (~124 M params).
GPT2_SMALL_CONFIG = TransformerConfig(
    name="gpt2-small", vocab_size=50257, hidden=768, num_layers=12,
    num_heads=12, intermediate=3072, seq_len=1024, max_positions=1024,
    num_token_types=0, num_classes=0, default_batch_size=4,
)


def bert_base() -> ModelSpec:
    """BERT_BASE classification spec (the paper's language workload)."""
    return build_transformer(BERT_BASE_CONFIG)


def bert_large() -> ModelSpec:
    """BERT_LARGE classification spec."""
    return build_transformer(BERT_LARGE_CONFIG)


def gpt2_small() -> ModelSpec:
    """GPT-2-small causal LM spec (extension workload)."""
    return build_transformer(GPT2_SMALL_CONFIG)
