"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so the package installs
editable in offline environments that lack the ``wheel`` package required
by PEP 660 editable builds.
"""

from setuptools import setup

setup()
