"""Hybrid per-layer compression policy.

The paper's Table 1 distinguishes layer-wise methods but its evaluation
always compresses *everything*.  A natural design point in between:
compress only the layers where compression pays — big matrices — and
send small tensors (biases, norms, small convolutions) dense.  This cuts
most of the per-tensor encode overhead (the kernel-launch floor that
dominates PowerSGD's cost on many-layer ResNets: ~0.65 ms x 54 tensors)
while giving up little compression, because parameter mass concentrates
in a few large layers.

:class:`HybridScheme` wraps any layer-wise base scheme with a parameter
threshold; the cost model recomputes wire bytes and encode time over the
partition.  Currently PowerSGD is the base scheme whose per-layer costs
we can partition exactly, so that is what the constructor accepts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..models import LayerSpec, ModelSpec
from ..units import FLOAT32_BYTES
from .kernel_cost import KernelProfile, _effective_rank, v100_kernel_profile
from .schemes import PowerSGDScheme, Scheme, SchemeCost


class HybridPowerSGDScheme(Scheme):
    """PowerSGD on layers above a parameter threshold, dense fp32 below.

    Attributes:
        rank: PowerSGD rank for the compressed layers.
        min_layer_params: Layers with fewer parameters than this travel
            dense (default 10^5: compresses ResNet-50's ~25 largest
            conv layers, skips the long tail).
    """

    name = "hybrid-powersgd"
    all_reducible = True
    layerwise = True

    def __init__(self, rank: int = 4, min_layer_params: int = 100_000):
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank}")
        if min_layer_params < 0:
            raise ConfigurationError(
                f"min_layer_params must be >= 0, got {min_layer_params}")
        self.rank = rank
        self.min_layer_params = min_layer_params

    @property
    def label(self) -> str:
        return (f"hybrid-powersgd(rank={self.rank}, "
                f"min={self.min_layer_params:g})")

    def partition(self, model: ModelSpec,
                  ) -> Tuple[List[LayerSpec], List[LayerSpec]]:
        """Split trainable layers into (compressed, dense)."""
        compressed: List[LayerSpec] = []
        dense: List[LayerSpec] = []
        for layer in model.trainable_layers:
            if layer.has_matrix and layer.num_params >= self.min_layer_params:
                compressed.append(layer)
            else:
                dense.append(layer)
        return compressed, dense

    def cost(self, model: ModelSpec, world_size: int,
             profile: Optional[KernelProfile] = None) -> SchemeCost:
        prof = self._profile(profile)
        compressed, dense = self.partition(model)

        wire = 0.0
        encode = 0.0
        for layer in compressed:
            m, n = layer.matrix_shape
            r = _effective_rank(self.rank, m, n)
            wire += (r * (m + n) + layer.extra_params) * FLOAT32_BYTES
            encode += prof.tensor_overhead_s
            encode += 6.0 * m * n * r / prof.matmul_flops_per_s
            encode += (m + n) * r * r / prof.orth_elems_per_s
        dense_params = sum(layer.num_params for layer in dense)
        wire += dense_params * FLOAT32_BYTES
        encode += dense_params / prof.elementwise_elems_per_s

        return SchemeCost(
            wire_bytes=wire,
            messages=2 if compressed else 1,
            encode_decode_s=encode,
            all_reducible=True,
            gather_stack_bytes=0.0,
        )

    def coverage(self, model: ModelSpec) -> float:
        """Fraction of parameters that get compressed."""
        compressed, _ = self.partition(model)
        covered = sum(layer.num_params for layer in compressed)
        return covered / model.num_params
