"""The auto-advisor: registry-driven grid, bounded shards, determinism.

Covers the sweep pipeline end to end: candidate enumeration out of the
compression registry, the oversize-grid guard's diagnostics, shard job
validation and bit-identity with monolithic grid calls, engine caching
of shard results, and the headline property — sharded-parallel advise
output byte-identical to serial, through both the library API and the
CLI.
"""

import numpy as np
import pytest

from repro.analysis import (
    SweepSpec,
    advise,
    candidate_grid,
    compression_error,
    finish_sweep,
    plan_sweep,
)
from repro.cli import main
from repro.compression import available_schemes
from repro.compression.registry import _SCHEMES
from repro.compression.schemes import SyncSGDScheme
from repro.core import PerfModelInputs
from repro.core.advisor import default_candidates
from repro.core.grid import MAX_GRID_POINTS, syncsgd_time_grid
from repro.engine import (
    AdvisorShardJob,
    AdvisorShardResult,
    ExperimentEngine,
    SimulationCache,
)
from repro.engine.cache import outcome_to_payload, payload_to_outcome
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

SMALL = SweepSpec(world_sizes=(8, 16), bandwidth_points=32,
                  shard_points=16)


def small_inputs(p=8):
    return PerfModelInputs(world_size=p,
                           bandwidth_bytes_per_s=gbps_to_bytes_per_s(10))


class TestCandidateGrid:
    def test_registry_driven(self):
        grid = candidate_grid()
        names = {scheme.name for scheme in grid}
        assert names == set(available_schemes())

    def test_hyperparameters_expand(self):
        grid = candidate_grid()
        powersgd_ranks = sorted(s.rank for s in grid
                                if s.name == "powersgd")
        assert powersgd_ranks == [1, 2, 4, 8, 16, 32]
        # Parameterless schemes appear exactly once.
        assert sum(1 for s in grid if s.name == "syncsgd") == 1

    def test_new_registration_appears(self, monkeypatch):
        class MintScheme(SyncSGDScheme):
            name = "mint"

        monkeypatch.setitem(_SCHEMES, "mint", MintScheme)
        assert "mint" in available_schemes()
        assert any(s.name == "mint" for s in candidate_grid())
        # ...and in the curated recommend menu too (satellite 1).
        assert any(s.name == "mint" for s in default_candidates())

    def test_default_candidates_byte_stable(self):
        # The refactored registry-driven menu keeps the exact curated
        # list (order included) for the built-in registry.
        labels = [s.label for s in default_candidates()]
        assert labels == ["syncsgd", "fp16", "powersgd(rank=4)",
                          "powersgd(rank=8)", "topk(1%)", "signsgd"]


class TestOversizeGuard:
    def test_names_offending_axes_and_suggests_sharding(self):
        bw = np.linspace(1e9, 30e9, 5000)[:, None]
        p = np.arange(2, 4002)[None, :]
        with pytest.raises(ConfigurationError) as err:
            syncsgd_time_grid(get_model("resnet50"), small_inputs(),
                              bandwidth_bytes_per_s=bw, world_size=p)
        message = str(err.value)
        assert f"{MAX_GRID_POINTS:,}" in message
        assert "largest axes" in message
        assert "bandwidth_bytes_per_s (5,000 points)" in message
        assert "world_size (4,000 points)" in message
        assert "slice bandwidth_bytes_per_s into runs of" in message
        assert "repro.analysis.advisor" in message

    def test_advisor_shards_never_trip_it(self):
        # Any legal SweepSpec keeps a shard at most shard_points cells,
        # and the spec validator caps shard_points at the guard.
        with pytest.raises(ConfigurationError):
            SweepSpec(shard_points=MAX_GRID_POINTS + 1)
        spec = SweepSpec(shard_points=MAX_GRID_POINTS)
        assert spec.shard_points <= MAX_GRID_POINTS


class TestAdvisorShardJob:
    def test_validation(self):
        model = get_model("resnet50")
        common = dict(model=model, scheme=None, inputs=small_inputs(),
                      world_size=8, bw_lo_gbps=1.0, bw_hi_gbps=30.0)
        with pytest.raises(ConfigurationError):
            AdvisorShardJob(**common, bw_points=1, start=0, count=1)
        with pytest.raises(ConfigurationError):
            AdvisorShardJob(**common, bw_points=8, start=8, count=1)
        with pytest.raises(ConfigurationError):
            AdvisorShardJob(**common, bw_points=8, start=4, count=5)
        with pytest.raises(ConfigurationError):
            AdvisorShardJob(model=model, scheme=None,
                            inputs=small_inputs(), world_size=0,
                            bw_lo_gbps=1.0, bw_hi_gbps=30.0,
                            bw_points=8, start=0, count=8)

    def test_shard_concatenation_is_bit_identical_to_monolithic(self):
        model = get_model("resnet50")
        inputs = small_inputs()
        points = 32
        bw = np.linspace(1.0, 30.0, points) * 1e9 / 8.0
        mono = syncsgd_time_grid(model, inputs,
                                 bandwidth_bytes_per_s=bw, world_size=8)
        pieces = []
        for start in range(0, points, 10):
            job = AdvisorShardJob(
                model=model, scheme=None, inputs=inputs, world_size=8,
                bw_lo_gbps=1.0, bw_hi_gbps=30.0, bw_points=points,
                start=start, count=min(10, points - start))
            pieces.extend(job.evaluate().total_s)
        assert pieces == [float(t) for t in mono.total]

    def test_fingerprint_distinguishes_slices(self):
        model = get_model("resnet50")
        common = dict(model=model, scheme=None, inputs=small_inputs(),
                      world_size=8, bw_lo_gbps=1.0, bw_hi_gbps=30.0,
                      bw_points=32)
        a = AdvisorShardJob(**common, start=0, count=16)
        b = AdvisorShardJob(**common, start=16, count=16)
        assert a.fingerprint() != b.fingerprint()
        assert a.family_key() == b.family_key()


class TestShardCacheRoundtrip:
    def test_payload_roundtrip(self):
        result = AdvisorShardResult(total_s=(0.125, 0.25, 0.0625))
        payload = outcome_to_payload(result)
        assert payload["kind"] == "advisor-shard"
        back = payload_to_outcome(payload)
        assert back == result

    def test_engine_cache_hits(self, tmp_path):
        model = get_model("resnet50")
        job = AdvisorShardJob(
            model=model, scheme=None, inputs=small_inputs(),
            world_size=8, bw_lo_gbps=1.0, bw_hi_gbps=30.0,
            bw_points=8, start=0, count=8)
        cache = SimulationCache(str(tmp_path / "cache"))
        engine = ExperimentEngine(cache=cache)
        first = engine.run_advisor_outcomes([job])
        assert not first[0].cached
        second = engine.run_advisor_outcomes([job])
        assert second[0].cached
        assert second[0].unwrap().total_s == first[0].unwrap().total_s
        cache.close()


class TestAdviseDeterminism:
    def test_sharded_parallel_equals_serial(self):
        model = get_model("resnet50")
        cluster = cluster_for_gpus(32)
        serial = advise(model, cluster, spec=SMALL,
                        engine=ExperimentEngine(jobs=1))
        parallel = advise(model, cluster, spec=SMALL,
                          engine=ExperimentEngine(jobs=2))
        assert serial.render() == parallel.render()
        assert serial.to_dict() == parallel.to_dict()

    def test_different_sharding_same_report(self):
        model = get_model("resnet50")
        cluster = cluster_for_gpus(32)
        coarse = advise(model, cluster, spec=SMALL)
        fine_spec = SweepSpec(world_sizes=(8, 16), bandwidth_points=32,
                              shard_points=5)
        fine = advise(model, cluster, spec=fine_spec)
        assert [p.to_dict() for p in coarse.frontier] \
            == [p.to_dict() for p in fine.frontier]
        assert coarse.recommendation.render() \
            == fine.recommendation.render()

    def test_cli_output_byte_identical_across_jobs(self, capsys):
        argv = ["advise", "--model", "resnet50", "--gpus", "32",
                "--world-sizes", "8", "16", "--bandwidth-points", "32",
                "--shard-points", "16"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "Pareto frontier" in serial


class TestSweepSemantics:
    def test_plan_counts_and_bounds(self):
        model = get_model("resnet50")
        cluster = cluster_for_gpus(32)
        plan = plan_sweep(model, cluster, spec=SMALL)
        # Every feasible pair splits into ceil(32 / 16) = 2 shards.
        assert all(job.count <= SMALL.shard_points for job in plan.jobs)
        feasible_pairs = len(plan.jobs) // 2
        assert feasible_pairs * 2 == len(plan.jobs)
        assert len(plan.meta) == len(plan.jobs)

    def test_report_invariants(self):
        model = get_model("resnet50")
        cluster = cluster_for_gpus(32)
        report = advise(model, cluster, spec=SMALL)
        assert report.configs_total == (report.candidates_total
                                        * 2 * 32)
        assert report.configs_priced \
            == report.configs_total - report.infeasible_pairs * 32
        assert len(report.frontier) >= 1
        # syncsgd has the unique minimum error (zero wire reduction),
        # so the baseline is always on the frontier and in the ranking.
        assert any(pt.scheme_label == "syncsgd"
                   for pt in report.frontier)
        labels = [v.scheme_label
                  for v in report.recommendation.verdicts]
        assert "syncsgd" in labels
        # Frontier is totally ordered by (time, error, ...).
        keys = [(p.time_s, p.error, p.scheme_label, p.world_size,
                 p.bandwidth_gbps) for p in report.frontier]
        assert keys == sorted(keys)
        # No frontier point is dominated by another (spot oracle).
        for a in report.frontier:
            for b in report.frontier:
                assert not (b.time_s <= a.time_s and b.error <= a.error
                            and (b.time_s < a.time_s
                                 or b.error < a.error))

    def test_error_proxy_bounds_and_baseline(self):
        model = get_model("resnet50")
        assert compression_error(model, SyncSGDScheme(), 8) == 0.0
        for scheme in candidate_grid():
            err = compression_error(model, scheme, 8)
            assert 0.0 <= err <= 1.0

    def test_finish_is_pure_postprocessing(self):
        model = get_model("resnet50")
        cluster = cluster_for_gpus(32)
        plan = plan_sweep(model, cluster, spec=SMALL)
        engine = ExperimentEngine()
        outcomes = engine.run_advisor_outcomes(list(plan.jobs))
        a = finish_sweep(plan, outcomes)
        b = finish_sweep(plan, outcomes)
        assert a.render() == b.render()

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_sweep(get_model("resnet50"), cluster_for_gpus(32),
                       candidates=[])

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(world_sizes=())
        with pytest.raises(ConfigurationError):
            SweepSpec(min_bandwidth_gbps=5.0, max_bandwidth_gbps=2.0)
        with pytest.raises(ConfigurationError):
            SweepSpec(bandwidth_points=1)


class TestServingAdvise:
    def test_request_parsing_and_defaults(self):
        from repro.serving import parse_request

        req = parse_request("advise", {"model": "resnet50", "gpus": 32})
        assert req.kind == "advise"
        assert req.bandwidth_points == 512  # serving-sized default
        with pytest.raises(ConfigurationError):
            parse_request("advise", {"world_sizes": []})
        with pytest.raises(ConfigurationError):
            parse_request("advise", {"bandwidth_points": 1})
        with pytest.raises(ConfigurationError):
            parse_request("advise", {"nonsense": 1})

    def test_scheduler_matches_offline_advise(self):
        from repro.serving import ServingScheduler, parse_request

        request = parse_request("advise", {
            "model": "resnet50", "gpus": 32, "world_sizes": [8, 16],
            "bandwidth_points": 32, "shard_points": 16})
        scheduler = ServingScheduler(batch_window_s=0.0)
        try:
            state = scheduler.submit(request)
            state = scheduler.wait(state.id, timeout_s=120)
            assert state.status == "done"
            offline = advise(get_model("resnet50"),
                             cluster_for_gpus(32), spec=SMALL)
            assert state.result["rendered"] == offline.render()
            assert state.result["frontier"] \
                == [p.to_dict() for p in offline.frontier]
        finally:
            scheduler.close()
