"""Compression schemes: wire sizes, ratios, Table-1 flags, memory."""

import math

import pytest

from repro.compression import (
    ATOMOScheme,
    DGCScheme,
    FP16Scheme,
    GradiVeqScheme,
    OneBitScheme,
    PowerSGDScheme,
    QSGDScheme,
    RandomKScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TernGradScheme,
    TopKScheme,
    make_scheme,
    table1_schemes,
)
from repro.errors import ConfigurationError
from repro.models import get_model


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


@pytest.fixture(scope="module")
def bert():
    return get_model("bert-base")


class TestWireSizes:
    def test_syncsgd_wire_is_dense(self, rn50):
        cost = SyncSGDScheme().cost(rn50, 16)
        assert cost.wire_bytes == rn50.grad_bytes
        assert cost.encode_decode_s == 0.0

    def test_fp16_halves(self, rn50):
        assert FP16Scheme().cost(rn50, 16).wire_bytes == pytest.approx(
            rn50.grad_bytes / 2)

    def test_signsgd_32x(self, rn50):
        cost = SignSGDScheme().cost(rn50, 16)
        assert cost.compression_ratio(rn50) == pytest.approx(32, rel=0.01)

    def test_powersgd_rank4_ratio_near_60x(self, rn50):
        # The paper: "PowerSGD provides around 60x compression when using
        # Rank-4 for ResNet-50."
        ratio = PowerSGDScheme(4).cost(rn50, 16).compression_ratio(rn50)
        assert 40 < ratio < 80

    def test_powersgd_ratio_shrinks_with_rank(self, rn50):
        ratios = [PowerSGDScheme(r).cost(rn50, 16).compression_ratio(rn50)
                  for r in (4, 8, 16)]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_topk_counts_indices(self, rn50):
        cost = TopKScheme(0.01).cost(rn50, 16)
        expected = 0.01 * rn50.num_params * 8  # 4B value + 4B index
        assert cost.wire_bytes == pytest.approx(expected, rel=0.01)

    def test_randomk_values_only(self, rn50):
        cost = RandomKScheme(0.01).cost(rn50, 16)
        assert cost.wire_bytes == pytest.approx(
            0.01 * rn50.num_params * 4, rel=0.01)

    def test_qsgd_bits(self, rn50):
        # levels=16 -> 1 + ceil(log2(17)) = 6 bits/element
        cost = QSGDScheme(levels=16).cost(rn50, 16)
        assert cost.wire_bytes == pytest.approx(
            rn50.num_params * 6 / 8, rel=0.01)

    def test_terngrad_2bits(self, rn50):
        cost = TernGradScheme().cost(rn50, 16)
        assert cost.compression_ratio(rn50) == pytest.approx(16, rel=0.01)

    def test_onebit_like_signsgd(self, rn50):
        one = OneBitScheme().cost(rn50, 16).wire_bytes
        sign = SignSGDScheme().cost(rn50, 16).wire_bytes
        assert one == pytest.approx(sign, rel=0.01)

    def test_atomo_slightly_larger_than_powersgd(self, rn50):
        atomo = ATOMOScheme(4).cost(rn50, 16).wire_bytes
        power = PowerSGDScheme(4).cost(rn50, 16).wire_bytes
        assert power < atomo < power * 1.1

    def test_gradiveq_ratio_is_block_over_dims(self, rn50):
        cost = GradiVeqScheme(block=512, dims=64).cost(rn50, 16)
        assert cost.compression_ratio(rn50) == pytest.approx(8, rel=0.01)


class TestMessagesAndFlags:
    def test_powersgd_two_messages(self, rn50):
        assert PowerSGDScheme(4).cost(rn50, 8).messages == 2

    def test_topk_two_messages(self, rn50):
        assert TopKScheme(0.01).cost(rn50, 8).messages == 2

    def test_signsgd_one_message(self, rn50):
        assert SignSGDScheme().cost(rn50, 8).messages == 1

    def test_table1_flags_match_paper(self):
        from repro.experiments import PAPER_TABLE1
        for scheme in table1_schemes():
            expected_ar, expected_lw = PAPER_TABLE1[scheme.name]
            assert scheme.all_reducible == expected_ar, scheme.name
            assert scheme.layerwise == expected_lw, scheme.name

    def test_labels_include_parameters(self):
        assert "rank=4" in PowerSGDScheme(4).label
        assert "1%" in TopKScheme(0.01).label


class TestMemoryWorkingSet:
    def test_allreducible_schemes_have_no_stack(self, rn50):
        for scheme in (SyncSGDScheme(), FP16Scheme(), PowerSGDScheme(4),
                       RandomKScheme(0.01), GradiVeqScheme()):
            assert scheme.cost(rn50, 32).gather_stack_bytes == 0.0

    def test_bert_stacks_whole_model(self, bert):
        cost = SignSGDScheme().cost(bert, 32)
        assert cost.gather_stack_bytes == bert.grad_bytes
        assert cost.aggregation_working_set(32) == 32 * bert.grad_bytes

    def test_resnet_stacks_largest_layer(self, rn50):
        cost = SignSGDScheme().cost(rn50, 32)
        assert cost.gather_stack_bytes == rn50.largest_layer_grad_bytes

    def test_working_set_linear_in_p(self, bert):
        cost = TopKScheme(0.01).cost(bert, 8)
        assert cost.aggregation_working_set(96) == pytest.approx(
            12 * cost.aggregation_working_set(8))


class TestSchemeCostValidation:
    """Regression: a malformed custom scheme used to sail through and
    blow up later as ZeroDivisionError in ``_collective_time``."""

    def _cost(self, **overrides):
        from repro.compression.schemes import SchemeCost
        fields = dict(wire_bytes=1024.0, messages=1, encode_decode_s=0.01,
                      all_reducible=True, gather_stack_bytes=0.0)
        fields.update(overrides)
        return SchemeCost(**fields)

    def test_valid_cost_accepted(self):
        assert self._cost().messages == 1

    def test_zero_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(messages=0)

    def test_negative_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(messages=-2)

    def test_non_integer_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(messages=1.5)

    def test_non_positive_wire_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(wire_bytes=0.0)
        with pytest.raises(ConfigurationError):
            self._cost(wire_bytes=-1.0)

    def test_negative_encode_decode_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(encode_decode_s=-1e-3)

    def test_negative_gather_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cost(gather_stack_bytes=-8.0)

    def test_malformed_scheme_fails_in_simulator_construction(self, rn50):
        # A scheme whose cost() builds a zero-message SchemeCost now
        # raises ConfigurationError the moment the cost is priced,
        # instead of ZeroDivisionError deep in the collective pricing.
        from repro.compression.schemes import Scheme, SchemeCost
        from repro.hardware import cluster_for_gpus
        from repro.simulator import DDPSimulator

        class BrokenScheme(Scheme):
            name = "broken"
            all_reducible = True

            def cost(self, model, world_size, profile=None):
                return SchemeCost(
                    wire_bytes=float(model.grad_bytes), messages=0,
                    encode_decode_s=0.0, all_reducible=True,
                    gather_stack_bytes=0.0)

        sim = DDPSimulator(rn50, cluster_for_gpus(8),
                           scheme=BrokenScheme())
        with pytest.raises(ConfigurationError):
            sim.run(64, iterations=3, warmup=1)


class TestSchemeRegistry:
    def test_make_scheme_with_params(self):
        scheme = make_scheme("powersgd", rank=8)
        assert scheme.rank == 8

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            make_scheme("gzip")

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSGDScheme(rank=0)
        with pytest.raises(ConfigurationError):
            TopKScheme(fraction=2.0)
        with pytest.raises(ConfigurationError):
            QSGDScheme(levels=0)
        with pytest.raises(ConfigurationError):
            GradiVeqScheme(block=4, dims=8)

    def test_encode_decode_times_from_table2_profile(self, rn50):
        # Scheme costs route through the calibrated profile by default.
        cost = PowerSGDScheme(4).cost(rn50, 16)
        assert cost.encode_decode_s * 1e3 == pytest.approx(45.0, rel=1e-3)
