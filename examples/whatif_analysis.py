#!/usr/bin/env python
"""What-if analysis (§6): should *you* adopt gradient compression?

The paper's closing argument is that its performance model lets users
answer this without renting a cluster.  This example plays the data
scientist: given a model, a batch size and a cluster, it sweeps

  1. network bandwidth (1-30 Gbit/s) and finds the crossover where
     compression stops paying (Figure 11),
  2. future GPU speed at fixed bandwidth (Figure 12),
  3. hypothetical encode-time/ratio trades (Figure 13),

and prints ASCII charts of each.

Run:  python examples/whatif_analysis.py [model] [batch]
"""

import sys

from repro.compression import PowerSGDScheme
from repro.core import (
    PerfModelInputs,
    bandwidth_sweep,
    compute_sweep,
    encode_tradeoff_grid,
    find_crossover_gbps,
)
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s


def ascii_chart(points, x_label, width=50):
    """Two-series ASCII chart: syncSGD ('s') vs compressed ('c')."""
    t_max = max(max(p.syncsgd_s, p.compressed_s) for p in points)
    lines = []
    for p in points:
        s_pos = int(p.syncsgd_s / t_max * (width - 1))
        c_pos = int(p.compressed_s / t_max * (width - 1))
        row = [" "] * width
        row[s_pos] = "s"
        row[c_pos] = "c" if row[c_pos] == " " else "*"
        lines.append(f"  {x_label}={p.x:>6.2f} |{''.join(row)}| "
                     f"{p.speedup:+.0%}")
    lines.append(f"  ('s' syncSGD, 'c' compressed, '*' overlap; "
                 f"right = slower, max {t_max * 1e3:.0f} ms)")
    return "\n".join(lines)


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    model = get_model(model_name)
    batch = (int(sys.argv[2]) if len(sys.argv) > 2
             else model.default_batch_size)
    scheme = PowerSGDScheme(rank=4)
    inputs = PerfModelInputs(
        world_size=64,
        bandwidth_bytes_per_s=gbps_to_bytes_per_s(10),
        batch_size=batch)

    print(f"what-if analysis: {model.name}, batch {batch}, 64 GPUs, "
          f"{scheme.label}\n")

    # 1 --- bandwidth sweep.
    bws = [1, 2, 3, 5, 7, 9, 11, 13, 15, 20, 25, 30]
    points = bandwidth_sweep(model, scheme, bws, inputs)
    print("A. vary network bandwidth (Gbit/s):")
    print(ascii_chart(points, "BW"))
    crossover = find_crossover_gbps(points)
    if crossover is None:
        print("  compression keeps winning across the whole sweep\n")
    else:
        print(f"  compression stops paying above ~{crossover:.1f} Gbit/s\n")

    # 2 --- compute sweep at 10 Gbit/s.
    factors = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    points = compute_sweep(model, scheme, factors, inputs)
    print("B. vary GPU speed at fixed 10 Gbit/s (x today's V100):")
    print(ascii_chart(points, "x"))
    final = points[-1]
    print(f"  at 4x compute, compression is "
          f"{final.syncsgd_s / final.compressed_s:.2f}x faster than "
          f"syncSGD — faster GPUs make compression matter\n")

    # 3 --- encode-time vs ratio trade.
    grid = encode_tradeoff_grid(model, scheme, [1, 2, 3, 4], [1, 2, 3],
                                inputs)
    print("C. hypothetical schemes: encode time / k, payload x (l*k):")
    print("     l\\k " + "".join(f"{k:>9.0f}" for k in (1, 2, 3, 4)))
    for l in (1.0, 2.0, 3.0):
        row = [p.predicted_s * 1e3 for p in grid if p.l == l]
        print(f"     {l:.0f}   " + "".join(f"{t:8.1f} " for t in row))
    print("  (ms per iteration; every step right is an encode cut — "
          "always an improvement, even at 3x the traffic)")


if __name__ == "__main__":
    main()
