"""Model-vs-measurement validation (the paper's Figure 8).

For a grid of cluster sizes, run the "real" system (the discrete-event
simulator, which includes bucket granularity, jitter and incast) and the
analytic performance model (which includes none of those), and report the
per-point and median relative errors.  The paper reports median errors of
1.8 % (syncSGD), 1.37 % (PowerSGD) and 14.2 % (signSGD, blamed on incast);
the same ordering falls out here because the simulator applies incast to
all-gather and the model does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..compression.schemes import Scheme, SyncSGDScheme
from ..errors import OutOfMemoryError
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..simulator import DDPConfig, DDPSimulator
from .calibration import calibrate
from .perf_model import predict


@dataclass(frozen=True)
class ValidationPoint:
    """One (cluster size) comparison of model vs measurement."""

    world_size: int
    measured_s: float
    measured_std_s: float
    predicted_s: float

    @property
    def relative_error(self) -> float:
        """|predicted - measured| / measured."""
        return abs(self.predicted_s - self.measured_s) / self.measured_s


@dataclass(frozen=True)
class ValidationCurve:
    """Model-vs-measurement across a scaling sweep for one scheme."""

    model: str
    scheme: str
    points: Tuple[ValidationPoint, ...]

    @property
    def median_error(self) -> float:
        if not self.points:
            return float("nan")
        return float(np.median([p.relative_error for p in self.points]))

    @property
    def max_error(self) -> float:
        if not self.points:
            return float("nan")
        return float(max(p.relative_error for p in self.points))


def validate_scheme(model: ModelSpec, scheme: Scheme,
                    clusters: Sequence[ClusterConfig],
                    batch_size: Optional[int] = None,
                    iterations: int = 110, warmup: int = 10,
                    seed: int = 0) -> ValidationCurve:
    """Run the Figure-8 protocol for one (model, scheme) pair.

    Cluster sizes whose simulated run OOMs (BERT + gather methods at
    scale) are skipped, exactly as the paper's plots stop at 32 GPUs.
    """
    points: List[ValidationPoint] = []
    for cluster in clusters:
        fabric = Fabric(cluster)
        sim = DDPSimulator(model, cluster, scheme=scheme, fabric=fabric)
        bs = batch_size if batch_size is not None else model.default_batch_size
        try:
            result = sim.run(bs, iterations=iterations, warmup=warmup,
                             seed=seed)
        except OutOfMemoryError:
            continue
        report = calibrate(model, cluster, batch_size=bs, fabric=fabric)
        predicted = predict(model, scheme, report.inputs,
                            gpu=cluster.gpu).total
        points.append(ValidationPoint(
            world_size=cluster.world_size,
            measured_s=result.mean,
            measured_std_s=result.std,
            predicted_s=predicted,
        ))
    return ValidationCurve(
        model=model.name,
        scheme=scheme.label if not isinstance(scheme, SyncSGDScheme)
        else "syncsgd",
        points=tuple(points),
    )
