"""The persistent scheduler: one engine, many concurrent requests.

The one-shot :class:`~repro.engine.ExperimentEngine` runs a batch and
returns; this module keeps it alive for the process lifetime behind an
admission queue, the way vLLM's continuous-batching scheduler keeps a
model executor alive behind one.  A single background thread loops:

1. wait until the queue is non-empty, then sleep one *batch window*
   (``batch_window_s``, default 20 ms) so closely-spaced requests land
   in the same batch;
2. drain up to ``max_batch_requests`` requests, dropping any whose
   deadline expired while queued;
3. expand every drained request into engine jobs — a what-if request
   becomes ``[None] + feasible candidates`` pre-screened by
   :func:`repro.core.feasible_candidates`, a simulate request one
   :class:`~repro.engine.SimJob` per seed — and submit **all of them in
   one engine call** per job type.  The engine's existing family
   batching then collapses compatible jobs *across requests* into
   single grid-kernel calls: that is the dynamic generalization of the
   PR-5 submit-time chunker and the PR-6 ``family_key`` grouping;
4. fan results back out per request, append result rows, and wake
   every waiter.

Admission control happens in :meth:`ServingScheduler.submit`, on the
caller's thread: per-tenant token buckets and the queue-depth cap
reject before any work is queued (:mod:`repro.serving.quota`).
Deadlines reuse the engine's ``job_timeout_s`` semantics one level up:
a request carries a wall-clock budget from submission, checked when the
batch is formed — a request that waited out its budget in the queue is
expired, never executed.

Scheduler state is observable through the PR-7 telemetry registry:
``serving_queue_depth`` and ``serving_batch_occupancy`` gauges,
``serving_requests_total`` / ``serving_rejected_total`` /
``serving_requests_expired_total`` counters, and a
``serving_request_latency_s`` histogram per request kind.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.advisor import SweepPlan, SweepSpec, finish_sweep, plan_sweep
from ..compression.schemes import SyncSGDScheme
from ..core import (
    CalibrationReport,
    calibrate,
    feasible_candidates,
    recommend_with,
    solve_crossover,
)
from ..engine import AdvisorShardJob, ExperimentEngine, ModelEvalJob, SimJob
from ..errors import ConfigurationError
from ..telemetry.logs import get_logger
from ..telemetry.metrics import get_registry
from ..telemetry.tracing import get_tracer
from .quota import AdmissionError, TenantQuotas
from .requests import AdviseRequest, SimulateRequest, WhatIfRequest

Request = Union[WhatIfRequest, SimulateRequest, AdviseRequest]

#: Terminal request states; :meth:`ServingScheduler.wait` returns when
#: one is reached.
TERMINAL_STATES = ("done", "failed", "expired")


@dataclass
class RequestState:
    """One admitted request's lifecycle, shared with waiting clients.

    ``rows`` grows as results stream back (one row per candidate
    verdict or per simulated seed); ``result`` is the assembled
    response body once the request is ``done``.  All mutation happens
    under the scheduler's condition lock.
    """

    id: str
    request: Request
    tenant: str
    submitted_unix: float
    deadline_monotonic: Optional[float]
    status: str = "queued"
    rows: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    finished_unix: Optional[float] = None

    @property
    def kind(self) -> str:
        """``"whatif"``, ``"simulate"``, or ``"advise"``."""
        return self.request.kind

    def to_dict(self) -> Dict[str, Any]:
        """JSON view served by ``GET /v1/jobs/<id>``."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "rows": list(self.rows),
            "result": self.result,
            "error": self.error,
        }


class ServingScheduler:
    """Owns an :class:`~repro.engine.ExperimentEngine` for the process
    lifetime and multiplexes concurrent requests onto it.

    Attributes:
        engine: The shared engine; its content-addressed cache (if any)
            is shared by every tenant, which is exactly why admission
            control exists — a cold-cache tenant's burst must not
            starve everyone else's hits.
        queue_depth: Admission queue capacity; submissions beyond it
            are rejected 503 (``reason="queue_full"``).
        quotas: Per-tenant token buckets (:class:`TenantQuotas`).
        batch_window_s: How long the scheduler lingers after the first
            queued request before forming a batch — the knob trading
            latency for coalescing opportunity.
        max_batch_requests: Most requests drained into one batch.
        default_timeout_s: Deadline applied to requests that do not
            carry their own ``timeout_s``; ``None`` disables deadlines.
    """

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 queue_depth: int = 64,
                 quota_rps: Optional[float] = None,
                 quota_burst: float = 10.0,
                 batch_window_s: float = 0.02,
                 max_batch_requests: int = 8,
                 default_timeout_s: Optional[float] = 300.0):
        """Validate the policy and start the batch thread (a daemon —
        it dies with the process; call :meth:`close` for a clean stop)."""
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        if batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be >= 0, got {batch_window_s}")
        if max_batch_requests < 1:
            raise ConfigurationError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}")
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ConfigurationError(
                f"default_timeout_s must be positive, got "
                f"{default_timeout_s}")
        self.engine = engine if engine is not None else ExperimentEngine()
        self.queue_depth = queue_depth
        self.quotas = TenantQuotas(quota_rps, quota_burst)
        self.batch_window_s = batch_window_s
        self.max_batch_requests = max_batch_requests
        self.default_timeout_s = default_timeout_s
        self.started_unix = time.time()
        #: Batches formed over the scheduler's lifetime.
        self.batches = 0
        #: Requests that shared their batch with at least one other.
        self.requests_coalesced = 0
        self._cv = threading.Condition()
        self._queue: List[RequestState] = []
        self._states: Dict[str, RequestState] = {}
        self._closed = False
        self._log = get_logger("serving")
        # Calibration is deterministic per (model, cluster, batch), so
        # repeat what-if traffic skips the trace-based gamma estimate.
        self._calibrations: Dict[Tuple[str, str, Optional[int]],
                                 CalibrationReport] = {}
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serving-scheduler",
                                        daemon=True)
        self._thread.start()

    # ----- client surface ----------------------------------------------------

    def submit(self, request: Request, tenant: str = "default",
               ) -> RequestState:
        """Admit a request or raise :class:`AdmissionError`.

        Runs on the caller's thread and never blocks on the engine:
        quota check, queue-depth check, enqueue, return.  The returned
        state object is live — poll it via :meth:`get` / :meth:`wait`.
        """
        registry = get_registry()
        if self._closed:
            registry.counter("serving_rejected_total", reason="closed").inc()
            raise AdmissionError("scheduler is shut down", status=503,
                                 reason="closed")
        try:
            self.quotas.check(tenant)
        except AdmissionError:
            registry.counter("serving_rejected_total", reason="quota").inc()
            raise
        timeout_s = (request.timeout_s if request.timeout_s is not None
                     else self.default_timeout_s)
        state = RequestState(
            id=uuid.uuid4().hex[:12],
            request=request,
            tenant=tenant,
            submitted_unix=time.time(),
            deadline_monotonic=(time.monotonic() + timeout_s
                                if timeout_s is not None else None))
        with self._cv:
            if len(self._queue) >= self.queue_depth:
                registry.counter("serving_rejected_total",
                                 reason="queue_full").inc()
                raise AdmissionError(
                    f"admission queue full ({self.queue_depth} requests)",
                    status=503, reason="queue_full")
            self._queue.append(state)
            self._states[state.id] = state
            registry.counter("serving_requests_total",
                             kind=request.kind).inc()
            registry.gauge("serving_queue_depth").set(len(self._queue))
            self._cv.notify_all()
        return state

    def get(self, request_id: str) -> Optional[RequestState]:
        """Look up a request by id (``None`` if unknown)."""
        with self._cv:
            return self._states.get(request_id)

    def wait(self, request_id: str, timeout_s: Optional[float] = None,
             ) -> Optional[RequestState]:
        """Block until the request reaches a terminal state (or the
        wait times out — the state is returned as-is either way)."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        with self._cv:
            state = self._states.get(request_id)
            if state is None:
                return None
            while state.status not in TERMINAL_STATES:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cv.wait(timeout=remaining)
            return state

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the scheduler thread; queued requests are failed."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            for state in self._queue:
                state.status = "failed"
                state.error = "scheduler shut down"
                state.finished_unix = time.time()
            self._queue.clear()
            get_registry().gauge("serving_queue_depth").set(0)
            self._cv.notify_all()
        self._thread.join(timeout=timeout_s)

    # ----- scheduler loop ----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if self._closed:
                    return
            # Linger one batch window so near-simultaneous requests
            # coalesce; the queue can only grow meanwhile.
            if self.batch_window_s > 0:
                time.sleep(self.batch_window_s)
            with self._cv:
                batch = self._queue[:self.max_batch_requests]
                del self._queue[:len(batch)]
                get_registry().gauge("serving_queue_depth").set(
                    len(self._queue))
                now = time.monotonic()
                live: List[RequestState] = []
                for state in batch:
                    if state.deadline_monotonic is not None \
                            and now > state.deadline_monotonic:
                        state.status = "expired"
                        state.error = "deadline expired while queued"
                        state.finished_unix = time.time()
                        get_registry().counter(
                            "serving_requests_expired_total").inc()
                        self._observe_latency(state)
                    else:
                        state.status = "running"
                        live.append(state)
                self._cv.notify_all()
            if not live:
                continue
            self.batches += 1
            if len(live) > 1:
                self.requests_coalesced += len(live)
            get_registry().gauge("serving_batch_occupancy").set(len(live))
            tracer = get_tracer()
            with tracer.span(f"serving-batch x{len(live)}", track="serving",
                             requests=str(len(live))):
                self._execute_batch(live)

    def _execute_batch(self, live: List[RequestState]) -> None:
        """Expand, run, and fan out one batch of admitted requests."""
        plans: Dict[str, Any] = {}
        whatif_jobs: List[ModelEvalJob] = []
        whatif_slices: Dict[str, slice] = {}
        sim_jobs: List[SimJob] = []
        sim_slices: Dict[str, slice] = {}
        advisor_jobs: List[AdvisorShardJob] = []
        advisor_slices: Dict[str, slice] = {}
        for state in live:
            try:
                if state.kind == "whatif":
                    plan = self._plan_whatif(state.request)
                    plans[state.id] = plan
                    start = len(whatif_jobs)
                    whatif_jobs.extend(plan["jobs"])
                    whatif_slices[state.id] = slice(start, len(whatif_jobs))
                elif state.kind == "advise":
                    sweep_plan = self._plan_advise(state.request)
                    plans[state.id] = sweep_plan
                    start = len(advisor_jobs)
                    advisor_jobs.extend(sweep_plan.jobs)
                    advisor_slices[state.id] = slice(start,
                                                     len(advisor_jobs))
                else:
                    jobs = self._plan_simulate(state.request)
                    start = len(sim_jobs)
                    sim_jobs.extend(jobs)
                    sim_slices[state.id] = slice(start, len(sim_jobs))
            except Exception as exc:  # noqa: BLE001 - reported per request
                self._fail(state, exc)

        # The coalescing moment: every request's jobs go through ONE
        # engine call per job type, so the engine's family grouping
        # sees them all at once.  An engine-level exception fails every
        # request in the affected call — never leaves one hanging.
        model_outcomes: List[Any] = []
        sim_outcomes: List[Any] = []
        advisor_outcomes: List[Any] = []
        try:
            if whatif_jobs:
                model_outcomes = self.engine.run_model_outcomes(whatif_jobs)
        except Exception as exc:  # noqa: BLE001 - reported per request
            for state in live:
                if state.status == "running" and state.id in whatif_slices:
                    self._fail(state, exc)
        try:
            if advisor_jobs:
                advisor_outcomes = self.engine.run_advisor_outcomes(
                    advisor_jobs)
        except Exception as exc:  # noqa: BLE001 - reported per request
            for state in live:
                if state.status == "running" and state.id in advisor_slices:
                    self._fail(state, exc)
        try:
            if sim_jobs:
                sim_outcomes = self.engine.run_outcomes(sim_jobs)
        except Exception as exc:  # noqa: BLE001 - reported per request
            for state in live:
                if state.status == "running" and state.id in sim_slices:
                    self._fail(state, exc)

        for state in live:
            if state.status != "running":
                continue  # already failed during planning
            try:
                if state.kind == "whatif":
                    outcomes = model_outcomes[whatif_slices[state.id]]
                    self._finish_whatif(state, plans[state.id], outcomes)
                elif state.kind == "advise":
                    outcomes = advisor_outcomes[advisor_slices[state.id]]
                    self._finish_advise(state, plans[state.id], outcomes)
                else:
                    outcomes = sim_outcomes[sim_slices[state.id]]
                    self._finish_simulate(state, outcomes)
            except Exception as exc:  # noqa: BLE001 - reported per request
                self._fail(state, exc)

    # ----- what-if expansion -------------------------------------------------

    def _calibration(self, request: WhatIfRequest) -> CalibrationReport:
        key = (request.model.name, request.cluster.describe(),
               request.batch_size)
        report = self._calibrations.get(key)
        if report is None:
            report = calibrate(request.model, request.cluster,
                               batch_size=request.batch_size)
            self._calibrations[key] = report
        return report

    def _plan_whatif(self, request: WhatIfRequest) -> Dict[str, Any]:
        """Calibrate and expand one what-if request into priced jobs.

        The entry list comes from the advisor's own feasibility screen
        (:func:`feasible_candidates`), so the engine outcomes line up
        one-to-one with what :func:`recommend_with` will ask its pricer
        for — the ranked output is byte-identical to the offline
        ``repro recommend`` path.
        """
        report = self._calibration(request)
        entries = feasible_candidates(request.model, report.inputs,
                                      gpu=request.cluster.gpu)
        jobs = [ModelEvalJob(model=request.model, scheme=scheme,
                             inputs=report.inputs, gpu=request.cluster.gpu)
                for scheme in entries]
        return {"request": request, "inputs": report.inputs,
                "entries": entries, "jobs": jobs}

    def _finish_whatif(self, state: RequestState, plan: Dict[str, Any],
                       outcomes: List[Any]) -> None:
        request: WhatIfRequest = plan["request"]
        times = [outcome.unwrap().total for outcome in outcomes]
        recommendation = recommend_with(
            request.model, plan["inputs"], lambda _entries: times,
            gpu=request.cluster.gpu)
        crossovers = []
        if request.crossovers:
            for scheme in plan["entries"]:
                if scheme is None or isinstance(scheme, SyncSGDScheme):
                    continue
                crossings = solve_crossover(
                    request.model, scheme, plan["inputs"], 1.0, 30.0,
                    gpu=request.cluster.gpu)
                crossovers.append({
                    "scheme": scheme.label,
                    "crossings": [{"gbps": c.x, "direction": c.direction}
                                  for c in crossings],
                })
        body = recommendation.to_dict()
        body["rendered"] = recommendation.render()
        body["crossovers"] = crossovers
        with self._cv:
            state.rows.extend(body["verdicts"])
            state.result = body
            state.status = "done"
            state.finished_unix = time.time()
            self._observe_latency(state)
            self._cv.notify_all()

    # ----- simulate expansion ------------------------------------------------

    def _plan_simulate(self, request: SimulateRequest) -> List[SimJob]:
        return [SimJob(model=request.model, cluster=request.cluster,
                       scheme=request.scheme, batch_size=request.batch_size,
                       iterations=request.iterations, seed=seed)
                for seed in request.seeds]

    def _finish_simulate(self, state: RequestState,
                         outcomes: List[Any]) -> None:
        request: SimulateRequest = state.request
        rows = []
        for seed, outcome in zip(request.seeds, outcomes):
            row: Dict[str, Any] = {"seed": seed, "cached": outcome.cached}
            if outcome.ok:
                row["mean_s"] = outcome.result.mean
                row["std_s"] = outcome.result.std
                row["iterations"] = len(outcome.result.sync_times)
            elif outcome.oom is not None:
                row["error"] = str(outcome.oom)
            else:
                row["error"] = outcome.error or "engine failure"
            rows.append(row)
        scheme_label = request.scheme.label if request.scheme else "syncsgd"
        result = {
            "model": request.model.name,
            "scheme": scheme_label,
            "cluster": request.cluster.describe(),
            "rows": rows,
        }
        with self._cv:
            state.rows.extend(rows)
            state.result = result
            state.status = "done" if all("error" not in r for r in rows) \
                else "failed"
            if state.status == "failed":
                state.error = "; ".join(
                    f"seed {r['seed']}: {r['error']}"
                    for r in rows if "error" in r)
            state.finished_unix = time.time()
            self._observe_latency(state)
            self._cv.notify_all()

    # ----- advise expansion --------------------------------------------------

    def _plan_advise(self, request: AdviseRequest) -> SweepPlan:
        """Expand one advise request into bounded shard jobs.

        :func:`repro.analysis.plan_sweep` does the calibration,
        candidate enumeration, feasibility screen, and sharding; the
        scheduler only splices the resulting jobs into its batch so
        concurrent sweeps coalesce through one engine call.
        """
        spec = SweepSpec(world_sizes=request.world_sizes,
                         min_bandwidth_gbps=request.min_bandwidth_gbps,
                         max_bandwidth_gbps=request.max_bandwidth_gbps,
                         bandwidth_points=request.bandwidth_points,
                         shard_points=request.shard_points)
        return plan_sweep(request.model, request.cluster,
                          batch_size=request.batch_size, spec=spec)

    def _finish_advise(self, state: RequestState, plan: SweepPlan,
                       outcomes: List[Any]) -> None:
        request: AdviseRequest = state.request
        report = finish_sweep(plan, outcomes)
        body = report.to_dict()
        body["rendered"] = report.render(top=request.top)
        with self._cv:
            state.rows.extend(body["frontier"])
            state.result = body
            state.status = "done"
            state.finished_unix = time.time()
            self._observe_latency(state)
            self._cv.notify_all()

    # ----- bookkeeping -------------------------------------------------------

    def _fail(self, state: RequestState, exc: Exception) -> None:
        self._log.warning("serving.request_failed", request=state.id,
                          kind=state.kind,
                          reason=f"{type(exc).__name__}: {exc}")
        with self._cv:
            state.status = "failed"
            state.error = f"{type(exc).__name__}: {exc}"
            state.finished_unix = time.time()
            self._observe_latency(state)
            self._cv.notify_all()

    def _observe_latency(self, state: RequestState) -> None:
        if state.finished_unix is not None:
            get_registry().histogram(
                "serving_request_latency_s", kind=state.kind).observe(
                max(0.0, state.finished_unix - state.submitted_unix))

    def stats(self) -> Dict[str, Any]:
        """Point-in-time scheduler counters for ``/healthz``."""
        with self._cv:
            queued = len(self._queue)
            total = len(self._states)
        payload: Dict[str, Any] = {
            "uptime_s": time.time() - self.started_unix,
            "queued": queued,
            "requests_seen": total,
            "batches": self.batches,
            "requests_coalesced": self.requests_coalesced,
            "engine": self.engine.stats().to_dict(),
        }
        if self.engine.cache is not None:
            payload["cache"] = self.engine.cache.info()
        return payload
