"""Numpy NN: gradients, training dynamics, datasets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.training import (
    MLP,
    Dataset,
    MLPConfig,
    concentric_rings,
    cross_entropy,
    gaussian_blobs,
    softmax,
    sparse_logits,
)


@pytest.fixture
def small_mlp():
    return MLP(MLPConfig(input_dim=6, hidden_dims=(12,), num_classes=3,
                         seed=0))


class TestSoftmaxAndLoss:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(10, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10))

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.all(np.isfinite(probs))

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        assert cross_entropy(probs, labels) == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_uniform(self):
        probs = np.full((4, 4), 0.25)
        assert cross_entropy(probs, np.zeros(4, dtype=int)) == pytest.approx(
            np.log(4))


class TestGradients:
    def test_numeric_gradient_check(self, small_mlp, rng):
        """Analytic gradients match central finite differences."""
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, size=8)
        _, grads = small_mlp.loss_and_grads(x, y)
        eps = 1e-6
        for name in ("w0", "b0", "w1", "b1"):
            param = small_mlp.params[name]
            flat_idx = np.unravel_index(
                rng.integers(0, param.size), param.shape)
            original = param[flat_idx]
            param[flat_idx] = original + eps
            loss_plus, _ = small_mlp.loss_and_grads(x, y)
            param[flat_idx] = original - eps
            loss_minus, _ = small_mlp.loss_and_grads(x, y)
            param[flat_idx] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[name][flat_idx] == pytest.approx(numeric, abs=1e-5)

    def test_gradient_shapes_match_params(self, small_mlp, rng):
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        _, grads = small_mlp.loss_and_grads(x, y)
        for name, g in grads.items():
            assert g.shape == small_mlp.params[name].shape

    def test_mismatched_xy_rejected(self, small_mlp, rng):
        with pytest.raises(ConfigurationError):
            small_mlp.loss_and_grads(rng.normal(size=(4, 6)),
                                     np.zeros(5, dtype=int))

    def test_wrong_input_dim_rejected(self, small_mlp, rng):
        with pytest.raises(ConfigurationError):
            small_mlp.forward(rng.normal(size=(4, 7)))


class TestTrainingDynamics:
    def test_gd_reduces_loss(self, small_mlp):
        ds = gaussian_blobs(num_samples=256, num_features=6,
                            num_classes=3, seed=1)
        loss0, grads = small_mlp.loss_and_grads(ds.x, ds.y)
        for _ in range(50):
            _, grads = small_mlp.loss_and_grads(ds.x, ds.y)
            small_mlp.apply_update(grads, lr=0.5)
        loss1, _ = small_mlp.loss_and_grads(ds.x, ds.y)
        assert loss1 < loss0 / 2

    def test_apply_update_validates(self, small_mlp):
        with pytest.raises(ConfigurationError):
            small_mlp.apply_update({"nope": np.zeros(3)}, lr=0.1)
        with pytest.raises(ConfigurationError):
            small_mlp.apply_update({"w0": np.zeros((1, 1))}, lr=0.1)
        with pytest.raises(ConfigurationError):
            small_mlp.apply_update({}, lr=0.0)

    def test_clone_and_load_params(self, small_mlp, rng):
        snapshot = small_mlp.clone_params()
        small_mlp.apply_update(
            {"w0": rng.normal(size=small_mlp.params["w0"].shape)}, lr=1.0)
        small_mlp.load_params(snapshot)
        np.testing.assert_array_equal(small_mlp.params["w0"],
                                      snapshot["w0"])

    def test_same_seed_same_init(self):
        cfg = MLPConfig(input_dim=4, hidden_dims=(8,), num_classes=2,
                        seed=9)
        np.testing.assert_array_equal(MLP(cfg).params["w0"],
                                      MLP(cfg).params["w0"])


class TestDatasets:
    def test_blobs_shapes(self):
        ds = gaussian_blobs(num_samples=100, num_features=5, num_classes=3)
        assert ds.x.shape == (100, 5)
        assert ds.num_classes == 3

    def test_blobs_learnable(self):
        # Low spread: classes separable, so a linear probe should beat
        # chance easily.  Checked via per-class center distances instead
        # of training for speed.
        ds = gaussian_blobs(num_samples=400, num_features=8,
                            num_classes=4, spread=0.3, seed=2)
        centers = np.array([ds.x[ds.y == c].mean(axis=0) for c in range(4)])
        dists = np.linalg.norm(centers[:, None] - centers[None], axis=-1)
        assert dists[~np.eye(4, dtype=bool)].min() > 1.0

    def test_rings_radii_ordered(self):
        ds = concentric_rings(num_samples=600, num_classes=3, seed=0)
        radii = np.linalg.norm(ds.x, axis=1)
        assert radii[ds.y == 0].mean() < radii[ds.y == 2].mean()

    def test_sparse_logits_respects_active_features(self):
        ds = sparse_logits(num_samples=100, num_features=20,
                           active_features=3, seed=0)
        assert ds.x.shape == (100, 20)

    def test_shard_partition(self):
        ds = gaussian_blobs(num_samples=100, num_features=4)
        shards = [ds.shard(r, 4) for r in range(4)]
        assert sum(s.num_samples for s in shards) == 100
        with pytest.raises(ConfigurationError):
            ds.shard(4, 4)

    def test_batches_cover_epoch(self):
        ds = gaussian_blobs(num_samples=50, num_features=4)
        seen = sum(len(xb) for xb, _ in ds.batches(8))
        assert seen == 50

    def test_dataset_validation(self, rng):
        with pytest.raises(ConfigurationError):
            Dataset(x=rng.normal(size=(5,)), y=np.zeros(5, dtype=int))
        with pytest.raises(ConfigurationError):
            Dataset(x=rng.normal(size=(5, 2)), y=np.zeros(4, dtype=int))

    def test_generator_validation(self):
        with pytest.raises(ConfigurationError):
            gaussian_blobs(num_samples=0)
        with pytest.raises(ConfigurationError):
            gaussian_blobs(num_classes=1)
        with pytest.raises(ConfigurationError):
            sparse_logits(active_features=100, num_features=10)
