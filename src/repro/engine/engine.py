"""Sweep execution: fan simulation jobs out over processes, memoize.

The paper's methodology (§6) and every scaling figure reduce to the
same shape of work: a grid of independent ``DDPSimulator.run`` calls —
model × scheme × cluster, 110 iterations each.  The grid is
embarrassingly parallel and heavily redundant across figures (the
syncSGD baseline of Figure 4 is the same simulation as the baseline of
Figures 5 and 6), so the engine does two things:

* **fan-out** — cache misses run on a ``concurrent.futures`` process
  pool (``jobs`` workers); results come back in submission order, so a
  parallel sweep produces *identical* rows to the serial one (every job
  carries its own seed and owns its simulator);
* **memoization** — outcomes (timings *and* deterministic OOMs) are
  stored in a content-addressed :class:`SimulationCache` keyed by the
  fingerprint of everything that determines them (see
  :mod:`repro.engine.fingerprint`).

``ExperimentEngine()`` with no arguments is a serial, cache-less
drop-in for the old inline loops, which is what experiment runners
default to when no engine is passed.
"""

from __future__ import annotations

import math
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..compression.kernel_cost import KernelProfile
from ..compression.schemes import Scheme
from ..core.perf_model import PredictedTime
from ..errors import ConfigurationError, EngineError, OutOfMemoryError
from ..faults import FaultSchedule
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..simulator import SIM_MODES, DDPConfig, DDPSimulator, TimingResult
from ..telemetry.logs import get_logger
from ..telemetry.metrics import get_registry
from ..telemetry.tracing import (
    TraceContext,
    TraceRecorder,
    get_tracer,
    set_tracer,
)
from .advisorjobs import (
    AdvisorShardJob,
    AdvisorShardOutcome,
    AdvisorShardResult,
    _execute_advisor_family,
    evaluate_advisor_family,
)
from .cache import CacheStats, SimulationCache
from .fingerprint import (
    FINGERPRINT_VERSION,
    cluster_fingerprint,
    config_fingerprint,
    digest,
    fabric_fingerprint,
    faults_fingerprint,
    model_fingerprint,
    profile_fingerprint,
    scheme_fingerprint,
)
from .modeljobs import (
    ModelEvalJob,
    ModelEvalOutcome,
    _execute_model_family,
    evaluate_family,
)

#: Environment variable for chaos testing the engine itself: set it to a
#: sentinel file path and the first pooled worker to pick up a job
#: SIGKILLs itself (once — creating the sentinel claims the kill).  The
#: reliability test suite uses this to prove a sweep survives a dying
#: worker; it is a no-op unless explicitly set.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_ONCE"

#: Chaos hook for timeout testing: ``<sentinel-path>:<seconds>`` makes
#: the first executor to claim the sentinel sleep that long before
#: simulating, which a per-job timeout then catches.
CHAOS_SLEEP_ENV = "REPRO_CHAOS_SLEEP_ONCE"


def _chaos_hook() -> None:
    """Honour the chaos-testing environment hooks (see the two
    ``REPRO_CHAOS_*`` constants).  Exactly-once semantics come from
    ``O_CREAT | O_EXCL`` on the sentinel: one process wins the claim,
    every other execution proceeds normally."""
    kill_path = os.environ.get(CHAOS_KILL_ENV)
    if kill_path and _claim_sentinel(kill_path):
        os.kill(os.getpid(), signal.SIGKILL)
    sleep_spec = os.environ.get(CHAOS_SLEEP_ENV)
    if sleep_spec:
        path, _, seconds = sleep_spec.rpartition(":")
        if path and _claim_sentinel(path):
            time.sleep(float(seconds))


def _claim_sentinel(path: str) -> bool:
    """Atomically create ``path``; True only for the single winner."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return False
    os.close(fd)
    return True


def _payload_label(payload: object) -> str:
    """Short span name for whatever an execute_fn consumes (a job, a
    chunk, a family — anything with ``describe()``)."""
    describe = getattr(payload, "describe", None)
    if callable(describe):
        return describe()
    return type(payload).__name__


def _traced_call(ctx: TraceContext, fn: Callable, payload: object):
    """Execution wrapper that records spans under a propagated context.

    ``ctx`` is the submitting process's ``(trace_id, parent_span_id,
    submitted_unix_s)``.  A local :class:`TraceRecorder` seeded with
    that context is installed for the duration of ``fn`` — so spans the
    execution emits (including the simulator's own) parent across the
    process boundary — plus a ``queue-wait`` span covering submission
    to pickup and an ``exec`` span around the call itself.  Returns
    ``(fn's result, recorded spans)`` for the parent to merge; a killed
    worker ships nothing, so its retry lands as a sibling attempt.

    Also used in-process by the serial path: the previous tracer is
    restored on exit either way.
    """
    trace_id, parent_id, submitted_unix = ctx
    started_unix = time.time()
    collector = TraceRecorder(trace_id=trace_id, root_parent_id=parent_id)
    previous = set_tracer(collector)
    try:
        collector.add_span("queue-wait", track="queue",
                           start_unix_s=min(submitted_unix, started_unix),
                           end_unix_s=started_unix)
        with collector.span(_payload_label(payload), track="exec",
                            pid=str(os.getpid())):
            out = fn(payload)
    finally:
        set_tracer(previous)
    return out, collector.drain()


@dataclass(frozen=True, eq=False)
class SimJob:
    """One fully-specified ``DDPSimulator.run`` invocation.

    Attributes mirror the simulator's constructor plus ``run``'s
    protocol arguments; ``None`` fields mean "the simulator's default"
    and fingerprint as such.
    """

    model: ModelSpec
    cluster: ClusterConfig
    scheme: Optional[Scheme] = None
    fabric: Optional[Fabric] = None
    config: Optional[DDPConfig] = None
    profile: Optional[KernelProfile] = None
    batch_size: Optional[int] = None
    iterations: int = 110
    warmup: int = 10
    seed: int = 0
    faults: Optional[FaultSchedule] = None
    sim_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.iterations <= self.warmup:
            raise ConfigurationError(
                f"iterations ({self.iterations}) must exceed warmup "
                f"({self.warmup})")
        if self.sim_mode not in SIM_MODES:
            raise ConfigurationError(
                f"unknown simulation mode {self.sim_mode!r}; "
                f"choose one of {', '.join(SIM_MODES)}")

    def fingerprint(self) -> str:
        """Content hash identifying this job's outcome.

        The ``faults`` field only enters the hash when a non-empty
        schedule is attached: fault-free jobs keep the exact keys they
        had before fault injection existed, so no cache directory is
        invalidated by upgrading.

        ``sim_mode`` deliberately stays OUT of the hash: the event and
        batch paths are bit-identical (tests/test_batch_equivalence.py),
        so the mode is an execution detail that must not fork the cache
        — a sweep run under ``--sim-mode batch`` serves a later
        ``--sim-mode event`` run from cache, and vice versa.
        """
        payload = {
            "version": FINGERPRINT_VERSION,
            "model": model_fingerprint(self.model),
            "cluster": cluster_fingerprint(self.cluster),
            "scheme": scheme_fingerprint(self.scheme),
            "fabric": fabric_fingerprint(self.fabric),
            "config": config_fingerprint(self.config),
            "profile": profile_fingerprint(self.profile),
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "seed": self.seed,
        }
        fault_payload = faults_fingerprint(self.faults)
        if fault_payload is not None:
            payload["faults"] = fault_payload
        return digest(payload)

    def family_key(self) -> str:
        """Grouping key for cross-config batch execution.

        Jobs with equal keys share every structural input — model,
        cluster, scheme, fabric, config, profile, batch size and
        iteration protocol — and differ at most in fault schedule and
        seed, which is exactly the axis
        :func:`repro.simulator.batch.run_batch_many` stacks into one
        kernel call.  The key is *not* a cache key (it deliberately
        drops ``faults`` and ``seed``); outcomes are still cached per
        job under :meth:`fingerprint`.  Memoized per instance — the
        engine recomputes it for every miss in every batch.
        """
        cached = self.__dict__.get("_family_key")
        if cached is not None:
            return cached
        payload = {
            "version": FINGERPRINT_VERSION,
            "model": model_fingerprint(self.model),
            "cluster": cluster_fingerprint(self.cluster),
            "scheme": scheme_fingerprint(self.scheme),
            "fabric": fabric_fingerprint(self.fabric),
            "config": config_fingerprint(self.config),
            "profile": profile_fingerprint(self.profile),
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "warmup": self.warmup,
        }
        key = digest(payload)
        object.__setattr__(self, "_family_key", key)
        return key

    def build_simulator(self) -> DDPSimulator:
        """Construct the fully-configured simulator this job describes."""
        return DDPSimulator(
            self.model, self.cluster, scheme=self.scheme,
            fabric=self.fabric, config=self.config,
            kernel_profile=self.profile, faults=self.faults)

    def describe(self) -> str:
        """Short human label for logs and error messages."""
        scheme_label = self.scheme.label if self.scheme else "syncsgd"
        return (f"{self.model.name} x {scheme_label} @ "
                f"{self.cluster.world_size} GPUs")


@dataclass
class JobOutcome:
    """What one job produced: a timing result, a deterministic OOM, or
    — after exhausting the engine's retry budget — a failure.

    ``exec_s`` is the simulation's own wall time inside its worker (0
    for cache hits); ``queue_wait_s`` is how long the job sat between
    submission and a worker picking it up (across retries, it spans
    submission to the *successful* attempt's start).  ``attempts``
    counts executions: 1 for the normal case, more when the engine
    retried a crashed/timed-out worker.
    """

    job: SimJob
    result: Optional[TimingResult] = None
    oom: Optional[OutOfMemoryError] = None
    error: Optional[str] = None
    cached: bool = False
    exec_s: float = 0.0
    queue_wait_s: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Whether a timing result came back."""
        return self.result is not None

    @property
    def failed(self) -> bool:
        """Whether the engine gave up on this job (crash/timeout/error
        through every retry) — distinct from a deterministic OOM, which
        is a *simulation* outcome, not an engine failure."""
        return self.error is not None

    def unwrap(self) -> TimingResult:
        """The result, or re-raise the OOM / engine failure."""
        if self.error is not None:
            raise EngineError(
                f"{self.job.describe()} failed after {self.attempts} "
                f"attempt(s): {self.error}")
        if self.oom is not None:
            raise self.oom
        assert self.result is not None
        return self.result


def _execute_job(job: SimJob) -> Tuple[str, object, float, float]:
    """Process-pool entry point: run one job, tag the outcome.

    OOM is data (the sweep reports it as a row), so it travels back as a
    value instead of an exception; anything else propagates to the
    parent, which retries and ultimately degrades the job to a failure
    outcome.  The tag carries the job's own wall time and the wall-clock
    instant it started (``time.time``, comparable across processes to
    ~ms precision), from which the parent derives queue wait.
    """
    _chaos_hook()
    started_unix = time.time()
    started = time.perf_counter()
    sim = job.build_simulator()
    try:
        result = sim.run(job.batch_size, iterations=job.iterations,
                         warmup=job.warmup, seed=job.seed,
                         mode=job.sim_mode)
    except OutOfMemoryError as exc:
        return ("oom", (str(exc), exc.required_bytes, exc.budget_bytes),
                time.perf_counter() - started, started_unix)
    return ("ok", result, time.perf_counter() - started, started_unix)


@dataclass(frozen=True)
class _JobChunk:
    """Several consecutive misses bundled into one pool submission.

    Chunking amortizes per-task IPC (pickling the model and cluster
    once per chunk instead of once per job) on large sweeps; each job
    inside still executes — and tags its outcome — individually, so
    fan-out back to per-job outcomes is exact.
    """

    jobs: Tuple[SimJob, ...]

    def describe(self) -> str:
        """Short human label for logs and error messages."""
        return (f"chunk of {len(self.jobs)} jobs "
                f"[{self.jobs[0].describe()}, ...]")


def _execute_job_chunk(chunk: _JobChunk) -> Tuple[str, object, float, float]:
    """Process-pool entry point for a chunk: run members in order.

    The payload is the list of per-job tagged outcomes, each carrying
    its own wall time and start instant, so the parent rehydrates them
    exactly as it would unchunked ones.  An unexpected exception fails
    the whole chunk back to the parent, which retries it wholesale.
    """
    started_unix = time.time()
    started = time.perf_counter()
    tags = [_execute_job(job) for job in chunk.jobs]
    return ("chunk", tags, time.perf_counter() - started, started_unix)


@dataclass(frozen=True)
class _SimFamily:
    """Jobs sharing a :meth:`SimJob.family_key`, bundled for one
    stacked kernel call.

    Unlike a :class:`_JobChunk` (an IPC-amortization grouping of
    unrelated jobs), a family's members are structurally identical —
    the batch kernel prices their shared state once and evaluates all
    members' iterations as one array computation.
    """

    jobs: Tuple[SimJob, ...]

    def describe(self) -> str:
        """Short human label for logs and error messages."""
        return (f"family of {len(self.jobs)} jobs "
                f"[{self.jobs[0].describe()}]")


def _execute_sim_family(family: _SimFamily) -> Tuple[str, object, float, float]:
    """Process-pool entry point for a family: one stacked kernel call.

    The payload mirrors :func:`_execute_job_chunk`'s — a list of
    per-job tagged outcomes — so the parent fans results back out with
    the same machinery.  A family the batch kernel cannot serve (a
    deterministic OOM, which is per-member data, or a configuration it
    rejects) falls back to executing members individually, so family
    batching can only add speed, never failure modes; unexpected
    exceptions still propagate for the parent to retry.
    """
    _chaos_hook()
    started_unix = time.time()
    started = time.perf_counter()
    jobs = family.jobs
    lead = jobs[0]
    try:
        # Deferred import: batch.py sits below the simulator package
        # this module already imports.
        from ..simulator.batch import run_batch_many
        sims = [job.build_simulator() for job in jobs]
        for sim in sims:
            if sim._injector is not None:
                sim._injector.reset_run_counters()
        results = run_batch_many(
            sims, lead.batch_size, iterations=lead.iterations,
            warmup=lead.warmup, seeds=[job.seed for job in jobs])
    except (OutOfMemoryError, ConfigurationError):
        tags = [_execute_job(job) for job in jobs]
        return ("chunk", tags, time.perf_counter() - started, started_unix)
    elapsed = time.perf_counter() - started
    share = elapsed / len(jobs)
    tags = [("ok", result, share, started_unix) for result in results]
    return ("chunk", tags, elapsed, started_unix)


def _outcome_from_tagged(job: SimJob, tagged: Tuple[str, object, float, float],
                         submitted_unix: float,
                         cached: bool = False,
                         attempts: int = 1) -> JobOutcome:
    """Rehydrate a worker's tagged return into a :class:`JobOutcome`."""
    kind, payload, exec_s, started_unix = tagged
    queue_wait_s = max(0.0, started_unix - submitted_unix)
    if kind == "error":
        return JobOutcome(job=job, error=str(payload), cached=cached,
                          exec_s=exec_s, queue_wait_s=queue_wait_s,
                          attempts=attempts)
    if kind == "oom":
        message, required, budget = payload  # type: ignore[misc]
        return JobOutcome(job=job, oom=OutOfMemoryError(
            message, required_bytes=required, budget_bytes=budget),
            cached=cached, exec_s=exec_s, queue_wait_s=queue_wait_s,
            attempts=attempts)
    return JobOutcome(job=job, result=payload, cached=cached,  # type: ignore[arg-type]
                      exec_s=exec_s, queue_wait_s=queue_wait_s,
                      attempts=attempts)


@dataclass(frozen=True)
class EngineStats:
    """Structured snapshot of an engine's counters.

    Previously the cache hit rate was only recoverable by parsing the
    CLI's printed status line; this object is the programmatic form —
    what manifests embed and telemetry mirrors.
    """

    cache: CacheStats
    executed: int
    jobs_completed: int
    busy_s: float
    exec_s_total: float
    queue_wait_s_total: float
    worker_s_total: float
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    jobs_chunked: int = 0
    jobs_batched: int = 0

    @property
    def mean_exec_s(self) -> float:
        """Mean wall time of an actually-executed simulation."""
        return self.exec_s_total / self.executed if self.executed else 0.0

    @property
    def pool_utilization(self) -> float:
        """Fraction of allocated worker-seconds spent simulating (1.0 =
        every worker busy the whole time ``run_outcomes`` held it)."""
        return (self.exec_s_total / self.worker_s_total
                if self.worker_s_total > 0 else 0.0)

    def to_dict(self) -> dict:
        """JSON-serializable rendering (for manifests)."""
        return {
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_stores": self.cache.stores,
            "cache_quarantined": self.cache.quarantined,
            "cache_hit_rate": self.cache.hit_rate,
            "cache_memory_hits": self.cache.memory_hits,
            "cache_pack_hits": self.cache.pack_hits,
            "cache_disk_hits": self.cache.disk_hits,
            "cache_evictions": self.cache.evictions,
            "executed": self.executed,
            "jobs_completed": self.jobs_completed,
            "busy_s": self.busy_s,
            "exec_s_total": self.exec_s_total,
            "queue_wait_s_total": self.queue_wait_s_total,
            "worker_s_total": self.worker_s_total,
            "mean_exec_s": self.mean_exec_s,
            "pool_utilization": self.pool_utilization,
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "jobs_chunked": self.jobs_chunked,
            "jobs_batched": self.jobs_batched,
        }

    def describe(self) -> str:
        """One-line human rendering (the CLI's post-sweep status)."""
        text = (f"{self.jobs_completed} jobs ({self.executed} executed, "
                f"{self.cache.describe()}), "
                f"{self.exec_s_total:.1f} s simulating, "
                f"{self.pool_utilization:.0%} pool utilization")
        if self.retries or self.failures:
            text += (f", {self.retries} retried, "
                     f"{self.failures} failed")
        return text


class ExperimentEngine:
    """Runs batches of :class:`SimJob` with optional parallelism and
    an optional result cache.

    Attributes:
        jobs: Worker process count; 1 (the default) runs in-process.
        cache: A :class:`SimulationCache`, or ``None`` to recompute
            everything.
        max_retries: How many times a failed execution (crashed pool
            worker, timeout, unexpected exception) is retried before
            the job degrades to a failure outcome.  0 disables retries.
        retry_backoff_s: Base of the exponential backoff slept before
            retry *k* (``retry_backoff_s * 2**(k-1)`` seconds).
        job_timeout_s: Wall-clock budget for one executed job, or
            ``None`` (default) for no limit.  On the pool path the
            budget is charged per submission wave: a job queued behind
            ``k`` others on the same worker gets ``(k+1)`` budgets, so
            queue wait does not count against it.
        sim_mode: Execution scheme for the simulations this engine
            runs (:data:`repro.simulator.SIM_MODES`).  ``"auto"`` (the
            default) leaves each job's own ``sim_mode`` in force; an
            explicit ``"event"``/``"batch"`` overrides jobs that did not
            pick one themselves.  Results — and therefore cache keys —
            are identical either way.
        chunking: Collapse compatible work into fewer executions:
            large pooled :class:`SimJob` batches are submitted in
            chunks (amortizing per-task IPC), and
            :class:`~repro.engine.modeljobs.ModelEvalJob` families run
            one grid-kernel call each.  Rows, fingerprints, and cached
            bytes are identical either way — chunking is purely an
            execution detail.  ``False`` restores one execution per
            job.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[SimulationCache] = None,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 job_timeout_s: Optional[float] = None,
                 sim_mode: str = "auto",
                 chunking: bool = True):
        """Validate and store the execution policy (see class docstring
        for what each knob controls)."""
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ConfigurationError(
                f"job_timeout_s must be positive, got {job_timeout_s}")
        if sim_mode not in SIM_MODES:
            raise ConfigurationError(
                f"unknown simulation mode {sim_mode!r}; "
                f"choose one of {', '.join(SIM_MODES)}")
        self.jobs = jobs
        self.cache = cache
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.job_timeout_s = job_timeout_s
        self.sim_mode = sim_mode
        self.chunking = chunking
        #: Simulations actually executed (cache misses) over the
        #: engine's lifetime.
        self.executed = 0
        #: Wall-clock seconds spent inside ``run_outcomes``.
        self.busy_s = 0.0
        #: Outcomes returned (hits + misses) over the lifetime.
        self.jobs_completed = 0
        #: Summed per-job simulation wall time (inside workers).
        self.exec_s_total = 0.0
        #: Summed submission-to-start wait of executed jobs.
        self.queue_wait_s_total = 0.0
        #: Worker-seconds allocated (workers x batch wall time).
        self.worker_s_total = 0.0
        #: Failed executions that were re-submitted.
        self.retries = 0
        #: Jobs the engine ultimately gave up on (error outcomes).
        self.failures = 0
        #: Executions killed for exceeding ``job_timeout_s``.
        self.timeouts = 0
        #: Jobs that ran as part of a collapsed execution (a pooled
        #: SimJob chunk, or a model-eval family of more than one job).
        self.jobs_chunked = 0
        #: Jobs evaluated through a stacked cross-config kernel call
        #: (a :class:`_SimFamily` of more than one job).
        self.jobs_batched = 0
        self._log = get_logger("engine")
        # Serializes whole-batch submissions so a long-lived process
        # (the serving scheduler) can share one engine across threads:
        # stats, the process pool, and cache round-trips all assume one
        # batch in flight.  Reentrant, so a submission that itself
        # submits (e.g. an advisor pricer running inside a scheduler
        # batch) does not deadlock.
        self._submission_lock = threading.RLock()

    # ----- execution ---------------------------------------------------------

    def run_outcomes(self, batch: Sequence[SimJob]) -> List[JobOutcome]:
        """Run every job; outcomes come back in input order.

        Cache hits are served without simulating; misses run serially
        or on the process pool, then populate the cache.  Under an
        enabled tracer the whole batch runs inside an ``engine-batch``
        span, so job/cache spans nest under it.  Thread-safe: batches
        submitted concurrently are serialized, in submission order.
        """
        with self._submission_lock:
            tracer = get_tracer()
            if not tracer.enabled:
                return self._run_outcomes_traced(batch)
            with tracer.span("engine-batch", track="engine",
                             jobs=str(len(batch))):
                return self._run_outcomes_traced(batch)

    def _run_outcomes_traced(self, batch: Sequence[SimJob],
                             ) -> List[JobOutcome]:
        """The body of :meth:`run_outcomes` (split out so the tracing
        wrapper above stays flat)."""
        start = time.perf_counter()
        tracer = get_tracer()
        outcomes: List[Optional[JobOutcome]] = [None] * len(batch)
        miss_indices: List[int] = []
        keys: List[Optional[str]] = [None] * len(batch)

        if self.cache is not None:
            # ONE batched cache pass (and one cache-lock acquisition)
            # for the whole batch, instead of a disk round-trip per job.
            lookup_span = tracer.begin("cache-lookup", track="cache",
                                       jobs=str(len(batch)))
            for i, job in enumerate(batch):
                keys[i] = job.fingerprint()
            hits = self.cache.lookup_many(
                [key for key in keys if key is not None])
            for i, job in enumerate(batch):
                hit = hits.get(keys[i])
                if hit is None:
                    miss_indices.append(i)
                elif isinstance(hit, OutOfMemoryError):
                    outcomes[i] = JobOutcome(job=job, oom=hit, cached=True)
                else:
                    outcomes[i] = JobOutcome(job=job, result=hit,
                                             cached=True)
            tracer.finish(lookup_span,
                          hits=str(len(batch) - len(miss_indices)))
        else:
            miss_indices = list(range(len(batch)))

        miss_jobs = [self._job_for_execution(batch[i])
                     for i in miss_indices]
        workers = 1
        retries_before = self.retries
        timeouts_before = self.timeouts
        if miss_jobs:
            submitted_unix = time.time()
            tagged_results, attempt_counts, workers = \
                self._execute_misses(miss_jobs)
            self.executed += len(miss_jobs)
            store_entries: List[Tuple[str, object]] = []
            for i, tagged, attempts in zip(miss_indices, tagged_results,
                                           attempt_counts):
                outcome = _outcome_from_tagged(batch[i], tagged,
                                               submitted_unix,
                                               attempts=attempts)
                outcomes[i] = outcome
                self.exec_s_total += outcome.exec_s
                self.queue_wait_s_total += outcome.queue_wait_s
                # Engine failures are environmental (a killed worker, a
                # hung process) — never cached, so a later run retries.
                if self.cache is not None and not outcome.failed:
                    key = keys[i]
                    assert key is not None
                    store_entries.append(
                        (key, outcome.result if outcome.ok
                         else outcome.oom))
            if store_entries:
                # One batched store: a single pack append + fsync for
                # every miss the batch produced.
                with tracer.span("cache-store", track="cache",
                                 entries=str(len(store_entries))):
                    self.cache.store_many(store_entries)  # type: ignore[arg-type]

        batch_wall = time.perf_counter() - start
        self.busy_s += batch_wall
        if miss_jobs:
            self.worker_s_total += workers * batch_wall
        self.jobs_completed += len(batch)
        self._record_batch(outcomes,
                           retries_delta=self.retries - retries_before,
                           timeouts_delta=self.timeouts - timeouts_before)
        return [o for o in outcomes if o is not None]

    def _execute_misses(self, miss_jobs: Sequence[SimJob],
                        ) -> Tuple[List[tuple], List[int], int]:
        """Execute cache misses, family-batching where profitable.

        Misses whose effective mode allows the batch kernel are grouped
        by :meth:`SimJob.family_key`; families of two or more run as one
        stacked kernel call each (:func:`_execute_sim_family`), pooled
        one-per-task when ``jobs > 1``.  Everything else — explicit
        event-mode jobs, family singletons, all misses under
        ``chunking=False`` — flows through the existing serial /
        chunked / parallel machinery.  Returns ``(tagged results,
        attempt counts, peak worker count)`` aligned with
        ``miss_jobs``.
        """
        families, leftover = self._sim_families(miss_jobs)
        tagged: List[Optional[tuple]] = [None] * len(miss_jobs)
        attempts: List[int] = [1] * len(miss_jobs)
        workers = 1
        if families:
            fams = [_SimFamily(tuple(miss_jobs[k] for k in group))
                    for group in families]
            if self.jobs > 1:
                # A pooled engine keeps pool semantics even for a lone
                # family: execution (and the chaos hooks) must never
                # run in the parent process.
                fam_workers = min(self.jobs, len(fams),
                                  (os.cpu_count() or 1))
                workers = max(workers, fam_workers)
                fam_tags, fam_attempts = self._run_parallel(
                    fams, fam_workers, execute_fn=_execute_sim_family)
            else:
                fam_tags, fam_attempts = self._run_serial(
                    fams, execute_fn=_execute_sim_family)
            batched = 0
            for group, tag, att in zip(families, fam_tags, fam_attempts):
                if tag[0] == "chunk":
                    for k, member_tag in zip(group, tag[1]):
                        tagged[k] = member_tag
                else:  # whole-family failure: members share the error
                    for k in group:
                        tagged[k] = tag
                    # The run paths count one failure per *item*; a
                    # family item degrades every member job.
                    self.failures += len(group) - 1
                for k in group:
                    attempts[k] = att
                batched += len(group)
            self.jobs_batched += batched
            registry = get_registry()
            if registry.enabled:
                registry.counter("engine_jobs_batched_total").inc(batched)
        if leftover:
            rest = [miss_jobs[k] for k in leftover]
            if self.jobs > 1 and len(rest) > 1:
                rest_workers = min(self.jobs, len(rest),
                                   (os.cpu_count() or 1))
                workers = max(workers, rest_workers)
                chunk_size = self._chunk_size(len(rest), rest_workers)
                if chunk_size > 1:
                    rest_tags, rest_attempts = self._run_chunked(
                        rest, rest_workers, chunk_size)
                else:
                    rest_tags, rest_attempts = self._run_parallel(
                        rest, rest_workers)
            else:
                rest_tags, rest_attempts = self._run_serial(rest)
            for k, tag, att in zip(leftover, rest_tags, rest_attempts):
                tagged[k] = tag
                attempts[k] = att
        return tagged, attempts, workers  # type: ignore[return-value]

    def _sim_families(self, miss_jobs: Sequence[SimJob],
                      ) -> Tuple[List[List[int]], List[int]]:
        """Partition miss positions into batchable families and the rest.

        Only jobs whose *effective* mode permits the batch kernel are
        candidates (an explicit ``"event"`` job — its own or the
        engine's override — must run the event loop it asked for), and
        only families of two or more are worth a stacked call.
        """
        if not self.chunking or self.job_timeout_s is not None:
            # Like chunking, family batching is incompatible with a
            # per-job timeout: the budget is per pool submission and
            # must keep meaning per job.
            return [], list(range(len(miss_jobs)))
        groups: Dict[str, List[int]] = {}
        leftover: List[int] = []
        for k, job in enumerate(miss_jobs):
            if job.sim_mode == "event":
                leftover.append(k)
            else:
                groups.setdefault(job.family_key(), []).append(k)
        families: List[List[int]] = []
        for members in groups.values():
            if len(members) >= 2:
                families.append(members)
            else:
                leftover.extend(members)
        leftover.sort()
        return families, leftover

    def _job_for_execution(self, job: SimJob) -> SimJob:
        """Apply the engine's simulation-mode override to one job.

        An engine-level ``"event"``/``"batch"`` wins over a job that
        left its own mode at ``"auto"``; a job that chose explicitly
        keeps its choice.  Fingerprints are unaffected (``sim_mode`` is
        not hashed), so the cache lookup already done against the
        original job stays valid.
        """
        if self.sim_mode != "auto" and job.sim_mode == "auto":
            return replace(job, sim_mode=self.sim_mode)
        return job

    # ----- closed-form model evaluations -------------------------------------

    def run_model_outcomes(self, batch: Sequence[ModelEvalJob],
                           ) -> List[ModelEvalOutcome]:
        """Evaluate model jobs; outcomes come back in input order.

        Cache hits are served per point.  Misses are grouped into
        *families* (equal :meth:`ModelEvalJob.family_key` — jobs that
        differ only along vectorizable axes) and each family runs the
        grid kernel **once**: in-process when serial, one pool task per
        family when ``jobs > 1``.  Results fan back out to per-point
        outcomes and per-point cache entries, so fingerprints and
        cached bytes are exactly what per-job evaluation would have
        produced; ``chunking=False`` falls back to evaluating each job
        individually.  Thread-safe: concurrent submissions serialize on
        the engine's reentrant submission lock.
        """
        with self._submission_lock:
            return self._run_eval_batch(
                batch, hit_type=PredictedTime, outcome_cls=ModelEvalOutcome,
                family_fn=evaluate_family, pool_fn=_execute_model_family)

    def run_advisor_outcomes(self, batch: Sequence[AdvisorShardJob],
                             ) -> List[AdvisorShardOutcome]:
        """Evaluate advisor pricing shards; outcomes in input order.

        Same contract and machinery as :meth:`run_model_outcomes` —
        per-shard cache entries, candidate families pooled one task
        each — except a family's members each run their own bounded
        grid call instead of fusing into one
        (:func:`~repro.engine.advisorjobs.evaluate_advisor_family`).
        Thread-safe and reentrant: the advisor pricer may run inside a
        scheduler batch that already holds the submission lock.
        """
        with self._submission_lock:
            return self._run_eval_batch(
                batch, hit_type=AdvisorShardResult,
                outcome_cls=AdvisorShardOutcome,
                family_fn=evaluate_advisor_family,
                pool_fn=_execute_advisor_family)

    def _run_eval_batch(self, batch: Sequence, hit_type: type,
                        outcome_cls: type, family_fn: Callable,
                        pool_fn: Callable) -> List:
        """Shared body of the closed-form batch entry points, lock held.

        ``hit_type`` screens cache hits (a key collision with another
        outcome kind reads as a miss), ``outcome_cls`` wraps results
        (:class:`ModelEvalOutcome` / :class:`AdvisorShardOutcome` share
        a constructor), ``family_fn`` evaluates one family in-process
        and ``pool_fn`` is its process-pool entry point.
        """
        start = time.perf_counter()
        jobs = list(batch)
        outcomes: List[Optional[object]] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        miss_indices: List[int] = []
        if self.cache is not None:
            # Same batched single-pass lookup as run_outcomes.
            for i, job in enumerate(jobs):
                keys[i] = job.fingerprint()
            hits = self.cache.lookup_many(
                [key for key in keys if key is not None])
            for i, job in enumerate(jobs):
                hit = hits.get(keys[i])
                if isinstance(hit, hit_type):
                    outcomes[i] = outcome_cls(job=job, result=hit,
                                              cached=True)
                else:
                    miss_indices.append(i)
        else:
            miss_indices = list(range(len(jobs)))

        groups: List[List[int]]
        if self.chunking:
            families: Dict[str, List[int]] = {}
            for i in miss_indices:
                families.setdefault(jobs[i].family_key(), []).append(i)
            groups = list(families.values())
        else:
            groups = [[i] for i in miss_indices]
        chunked = sum(len(group) for group in groups if len(group) > 1)

        workers = 1
        if groups:
            if self.jobs > 1 and len(groups) > 1:
                workers = min(self.jobs, len(groups), (os.cpu_count() or 1))
                evaluated = self._eval_families_pooled(
                    jobs, groups, workers, family_fn=family_fn,
                    pool_fn=pool_fn)
            else:
                evaluated = [self._eval_family_inprocess(jobs, group,
                                                         family_fn)
                             for group in groups]
            self.executed += len(miss_indices)
            self.jobs_chunked += chunked
            store_entries: List[Tuple[str, object]] = []
            for group, (results, errors, elapsed) in zip(groups, evaluated):
                share = elapsed / len(group)
                for offset, i in enumerate(group):
                    outcome = outcome_cls(
                        job=jobs[i], result=results[offset],
                        error=errors[offset], exec_s=share)
                    outcomes[i] = outcome
                    self.exec_s_total += share
                    # Evaluation failures (bad configurations) are never
                    # cached; re-running reports them afresh.
                    if self.cache is not None and outcome.ok:
                        key = keys[i]
                        assert key is not None
                        store_entries.append((key, outcome.result))
            if self.cache is not None and store_entries:
                # One pack append + fsync for the whole batch.
                self.cache.store_many(store_entries)

        batch_wall = time.perf_counter() - start
        self.busy_s += batch_wall
        if miss_indices:
            self.worker_s_total += workers * batch_wall
        self.jobs_completed += len(jobs)
        self._record_model_batch(outcomes, chunked)
        return [o for o in outcomes if o is not None]

    def _eval_family_inprocess(self, jobs: Sequence,
                               group: Sequence[int],
                               family_fn: Callable = evaluate_family,
                               ) -> Tuple[List[Optional[object]],
                                          List[Optional[Exception]], float]:
        """One family, one ``family_fn`` call, in this process.

        If the family call raises, fall back to per-point evaluation so
        only the offending job(s) fail — the rest of the family still
        produces results.
        """
        members = [jobs[i] for i in group]
        tracer = get_tracer()
        family_span = tracer.begin(f"grid-family x{len(members)}",
                                   track="engine", size=str(len(members)))
        started = time.perf_counter()
        try:
            results: List[Optional[object]] = list(family_fn(members))
            errors: List[Optional[Exception]] = [None] * len(members)
        except Exception:  # noqa: BLE001 - isolated per point below
            results, errors = [], []
            for job in members:
                try:
                    results.append(job.evaluate())
                    errors.append(None)
                except Exception as exc:  # noqa: BLE001 - reported per job
                    results.append(None)
                    errors.append(exc)
                    self.failures += 1
                    self._log.warning(
                        "engine.model_job_failed", job=job.describe(),
                        reason=f"{type(exc).__name__}: {exc}")
        tracer.finish(family_span)
        return results, errors, time.perf_counter() - started

    def _eval_families_pooled(self, jobs: Sequence,
                              groups: Sequence[Sequence[int]], workers: int,
                              family_fn: Callable = evaluate_family,
                              pool_fn: Callable = _execute_model_family,
                              ) -> List[Tuple[List[Optional[object]],
                                              List[Optional[Exception]],
                                              float]]:
        """One pool task per family; any failed task (a died worker, a
        bad configuration) falls back to in-process evaluation of that
        family, so pooled evaluation can only add speed, not failure
        modes."""
        tracer = get_tracer()
        evaluated = []
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = []
            fam_spans: List[Optional[object]] = []
            for group in groups:
                members = tuple(jobs[i] for i in group)
                if tracer.enabled:
                    span = tracer.begin(f"grid-family x{len(group)}",
                                        track="engine",
                                        size=str(len(group)))
                    fam_spans.append(span)
                    futures.append(pool.submit(
                        _traced_call,
                        (tracer.trace_id, span.span_id, time.time()),
                        pool_fn, members))
                else:
                    fam_spans.append(None)
                    futures.append(pool.submit(pool_fn, members))
            for group, future, span in zip(groups, futures, fam_spans):
                try:
                    out = future.result()
                    if span is not None:
                        out, spans = out
                        tracer.merge(spans)
                    results, elapsed = out
                except Exception as exc:  # noqa: BLE001 - incl. broken pool
                    self._log.warning(
                        "engine.model_family_retry", size=len(group),
                        reason=f"{type(exc).__name__}: {exc}")
                    evaluated.append(
                        self._eval_family_inprocess(jobs, group, family_fn))
                    continue
                finally:
                    if span is not None:
                        tracer.finish(span)
                evaluated.append((list(results), [None] * len(group),
                                  elapsed))
        finally:
            self._kill_pool(pool)
        return evaluated

    def _record_model_batch(self,
                            outcomes: Sequence[Optional[ModelEvalOutcome]],
                            chunked: int) -> None:
        """Mirror one model-eval batch's outcomes into telemetry."""
        registry = get_registry()
        if not registry.enabled:
            return
        for outcome in outcomes:
            if outcome is None:
                continue
            registry.counter(
                "engine_jobs_total",
                cached=str(outcome.cached).lower()).inc()
            if outcome.error is not None:
                registry.counter("engine_failed_jobs_total").inc()
        if chunked:
            registry.counter("engine_jobs_chunked_total").inc(chunked)

    # ----- miss execution (serial / pooled, with retries) --------------------

    def _run_serial(self, miss_jobs: Sequence,
                    execute_fn: Optional[Callable] = None,
                    ) -> Tuple[List[tuple], List[int]]:
        """Execute misses in-process, retrying unexpected exceptions.

        Returns ``(tagged results, attempt counts)`` aligned with
        ``miss_jobs``.  OOM never retries (it comes back as a tagged
        value, not an exception); anything else gets ``max_retries``
        fresh attempts with exponential backoff before degrading to an
        ``("error", ...)`` tag.
        """
        if execute_fn is None:
            # Resolved at call time so tests can monkeypatch the
            # module-level _execute_job.
            execute_fn = _execute_job
        tracer = get_tracer()
        tagged: List[tuple] = []
        attempt_counts: List[int] = []
        for job in miss_jobs:
            attempt = 1
            job_span = None
            if tracer.enabled:
                job_span = tracer.begin(_payload_label(job), track="engine")
            while True:
                try:
                    if job_span is not None:
                        result, spans = _traced_call(
                            (tracer.trace_id, job_span.span_id,
                             time.time()),
                            execute_fn, job)
                        tracer.merge(spans)
                    else:
                        result = execute_fn(job)
                    break
                except Exception as exc:  # noqa: BLE001 - retried below
                    reason = f"{type(exc).__name__}: {exc}"
                    if attempt > self.max_retries:
                        self.failures += 1
                        self._log.warning("engine.job_failed",
                                          job=job.describe(),
                                          attempts=attempt, reason=reason)
                        result = ("error", reason, 0.0, time.time())
                        break
                    self.retries += 1
                    self._log.warning("engine.job_retry",
                                      job=job.describe(),
                                      attempt=attempt, reason=reason)
                    time.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
                    attempt += 1
            tagged.append(result)
            attempt_counts.append(attempt)
            if job_span is not None:
                tracer.finish(job_span, attempts=str(attempt),
                              outcome=result[0])
        return tagged, attempt_counts

    def _chunk_size(self, n_misses: int, workers: int) -> int:
        """How many consecutive misses one pool submission should carry.

        Targets ~4 chunks per worker (enough slack for load balancing)
        and degrades to 1 — no chunking — for small batches, when
        chunking is disabled, or under a per-job timeout (whose budget
        accounting is per submission and must keep meaning per job).
        """
        if not self.chunking or self.job_timeout_s is not None:
            return 1
        return max(1, math.ceil(n_misses / (workers * 4)))

    def _run_chunked(self, miss_jobs: Sequence[SimJob], workers: int,
                     chunk_size: int) -> Tuple[List[tuple], List[int]]:
        """Pool path for large batches: submit misses in chunks.

        Retry/failure machinery operates on whole chunks (a crashed
        worker retries its chunk's jobs together; a chunk that exhausts
        the retry budget degrades every member to an error outcome).
        Per-job tags come back exactly as on the unchunked path, in
        order.
        """
        chunks = [_JobChunk(tuple(miss_jobs[i:i + chunk_size]))
                  for i in range(0, len(miss_jobs), chunk_size)]
        chunk_tags, chunk_attempts = self._run_parallel(
            chunks, workers, execute_fn=_execute_job_chunk)
        tagged: List[tuple] = []
        attempt_counts: List[int] = []
        for chunk, tag, attempts in zip(chunks, chunk_tags, chunk_attempts):
            if tag[0] == "chunk":
                tagged.extend(tag[1])
            else:  # whole-chunk failure: members share the error tag
                tagged.extend([tag] * len(chunk.jobs))
            attempt_counts.extend([attempts] * len(chunk.jobs))
        self.jobs_chunked += len(miss_jobs)
        registry = get_registry()
        if registry.enabled:
            registry.counter("engine_jobs_chunked_total").inc(len(miss_jobs))
        return tagged, attempt_counts

    def _run_parallel(self, miss_jobs: Sequence, workers: int,
                      execute_fn: Optional[Callable] = None,
                      ) -> Tuple[List[tuple], List[int]]:
        """Execute misses on a process pool that survives dying workers.

        Jobs are submitted in waves; a wave's survivors that failed
        (``BrokenProcessPool``, an exception, or a blown
        ``job_timeout_s`` deadline) are retried in the next wave after
        exponential backoff, until their attempt budget runs out.  A
        broken or deadlocked pool is killed and rebuilt between waves,
        and jobs that were merely queued behind a hung one are
        resubmitted without it counting against their budget.  Results
        come back aligned with ``miss_jobs`` regardless of completion
        order.
        """
        if execute_fn is None:
            # Resolved at call time so tests can monkeypatch the
            # module-level _execute_job.
            execute_fn = _execute_job
        tracer = get_tracer()
        tagged: List[Optional[tuple]] = [None] * len(miss_jobs)
        attempt_counts = [0] * len(miss_jobs)
        # One open job span per item while traced; a retried item keeps
        # its span (attempts land as sibling children under it), and the
        # span closes at the moment its tag becomes final.
        job_spans: List[Optional[object]] = [None] * len(miss_jobs)

        def _close_span(idx: int) -> None:
            span = job_spans[idx]
            if span is not None and tagged[idx] is not None:
                tracer.finish(span, attempts=str(attempt_counts[idx]),
                              outcome=tagged[idx][0])
                job_spans[idx] = None

        pending = list(range(len(miss_jobs)))
        wave = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while pending:
                if wave:
                    time.sleep(self.retry_backoff_s * 2 ** (wave - 1))
                wave += 1
                future_to_idx = {}
                deadlines: Dict[object, float] = {}
                now = time.monotonic()
                for k, idx in enumerate(pending):
                    attempt_counts[idx] += 1
                    if tracer.enabled:
                        if job_spans[idx] is None:
                            job_spans[idx] = tracer.begin(
                                _payload_label(miss_jobs[idx]),
                                track="engine")
                        future = pool.submit(
                            _traced_call,
                            (tracer.trace_id, job_spans[idx].span_id,
                             time.time()),
                            execute_fn, miss_jobs[idx])
                    else:
                        future = pool.submit(execute_fn, miss_jobs[idx])
                    future_to_idx[future] = idx
                    if self.job_timeout_s is not None:
                        # Queue position k lands ~(k // workers) jobs
                        # deep on its worker; grant a budget per slot so
                        # queue wait is not charged against the job.
                        deadlines[future] = now + self.job_timeout_s * (
                            k // workers + 1)
                retry: List[int] = []
                not_done = set(future_to_idx)
                rebuild = False
                while not_done:
                    timeout = None
                    if deadlines:
                        next_deadline = min(deadlines[f] for f in not_done)
                        timeout = max(0.0, next_deadline - time.monotonic())
                    done, not_done = wait(not_done, timeout=timeout,
                                          return_when=FIRST_COMPLETED)
                    broken = False
                    for future in done:
                        idx = future_to_idx[future]
                        try:
                            result = future.result()
                            if tracer.enabled:
                                result, spans = result
                                tracer.merge(spans)
                            tagged[idx] = result
                        except BrokenProcessPool:
                            broken = True
                            self._register_failure(
                                idx, attempt_counts, miss_jobs, tagged,
                                retry, "a pool worker died")
                        except Exception as exc:  # noqa: BLE001
                            self._register_failure(
                                idx, attempt_counts, miss_jobs, tagged,
                                retry, f"{type(exc).__name__}: {exc}")
                        _close_span(idx)
                    if broken:
                        # The pool is unusable; every in-flight future is
                        # lost with it.  Fail them over to the next wave.
                        for future in not_done:
                            self._register_failure(
                                future_to_idx[future], attempt_counts,
                                miss_jobs, tagged, retry,
                                "a pool worker died")
                            _close_span(future_to_idx[future])
                        not_done = set()
                        rebuild = True
                    elif not done and not_done:
                        # wait() timed out: at least one deadline blew.
                        now = time.monotonic()
                        for future in list(not_done):
                            if deadlines.get(future, float("inf")) <= now:
                                idx = future_to_idx[future]
                                self.timeouts += 1
                                self._register_failure(
                                    idx, attempt_counts, miss_jobs,
                                    tagged, retry,
                                    f"timed out after "
                                    f"{self.job_timeout_s:g} s")
                                _close_span(idx)
                                not_done.discard(future)
                        # The hung worker still holds its process; only a
                        # pool teardown reclaims it.  Collateral jobs are
                        # resubmitted for free.
                        for future in not_done:
                            idx = future_to_idx[future]
                            attempt_counts[idx] -= 1
                            retry.append(idx)
                        not_done = set()
                        rebuild = True
                if rebuild:
                    self._kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
                pending = sorted(retry)
        finally:
            self._kill_pool(pool)
            if tracer.enabled:
                # Safety net for abnormal exits: no span stays open.
                for idx in range(len(miss_jobs)):
                    _close_span(idx)
        return tagged, attempt_counts  # type: ignore[return-value]

    def _register_failure(self, idx: int, attempt_counts: List[int],
                          miss_jobs: Sequence,
                          tagged: List[Optional[tuple]],
                          retry: List[int], reason: str) -> None:
        """Route one failed execution: resubmit it, or give up and
        degrade it to an ``("error", ...)`` outcome."""
        job = miss_jobs[idx]
        if attempt_counts[idx] > self.max_retries:
            self.failures += 1
            self._log.warning("engine.job_failed", job=job.describe(),
                              attempts=attempt_counts[idx], reason=reason)
            tagged[idx] = ("error", reason, 0.0, time.time())
        else:
            self.retries += 1
            self._log.warning("engine.job_retry", job=job.describe(),
                              attempt=attempt_counts[idx], reason=reason)
            retry.append(idx)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            if proc.is_alive():
                proc.terminate()

    def _record_batch(self, outcomes: Sequence[Optional[JobOutcome]],
                      retries_delta: int = 0,
                      timeouts_delta: int = 0) -> None:
        """Mirror one batch's outcomes into the telemetry registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        for outcome in outcomes:
            if outcome is None:
                continue
            registry.counter(
                "engine_jobs_total",
                cached=str(outcome.cached).lower()).inc()
            if outcome.oom is not None:
                registry.counter("engine_oom_outcomes_total").inc()
            if outcome.failed:
                registry.counter("engine_failed_jobs_total").inc()
            if not outcome.cached:
                registry.histogram("engine_job_exec_s").observe(
                    outcome.exec_s)
                registry.histogram("engine_queue_wait_s").observe(
                    outcome.queue_wait_s)
        if retries_delta:
            registry.counter("engine_retries_total").inc(retries_delta)
        if timeouts_delta:
            registry.counter("engine_timeouts_total").inc(timeouts_delta)
        registry.gauge("engine_pool_utilization").set(
            self.stats().pool_utilization)

    def run(self, job: SimJob) -> TimingResult:
        """Run one job; raises the stored OOM like the raw simulator."""
        return self.run_outcomes([job])[0].unwrap()

    # ----- statistics --------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """The cache's counters (zeros when no cache is attached)."""
        return (self.cache.stats if self.cache is not None
                else CacheStats())

    def stats(self) -> EngineStats:
        """A structured snapshot of every engine counter."""
        return EngineStats(
            cache=self.cache_stats.snapshot(),
            executed=self.executed,
            jobs_completed=self.jobs_completed,
            busy_s=self.busy_s,
            exec_s_total=self.exec_s_total,
            queue_wait_s_total=self.queue_wait_s_total,
            worker_s_total=self.worker_s_total,
            retries=self.retries,
            failures=self.failures,
            timeouts=self.timeouts,
            jobs_chunked=self.jobs_chunked,
            jobs_batched=self.jobs_batched,
        )
