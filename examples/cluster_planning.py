#!/usr/bin/env python
"""Cluster planning: scale a training job, accounting for compression.

A systems-engineer workflow on top of the simulator: for a chosen model,
sweep cluster sizes and aggregation methods, report per-iteration time,
weak-scaling efficiency and where methods stop working (the BERT OOM
cliff), and pick the cheapest configuration that meets a throughput goal.

Run:  python examples/cluster_planning.py [model] [batch]
"""

import sys

from repro.compression import (
    FP16Scheme,
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.errors import OutOfMemoryError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPSimulator

SCHEMES = (SyncSGDScheme(), FP16Scheme(), PowerSGDScheme(4),
           TopKScheme(0.01), SignSGDScheme())
GPU_COUNTS = (8, 16, 32, 64, 96)


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "bert-base"
    model = get_model(model_name)
    batch = (int(sys.argv[2]) if len(sys.argv) > 2
             else model.default_batch_size)

    print(f"scaling plan: {model.name}, per-GPU batch {batch}, "
          f"p3.8xlarge nodes\n")

    # Per-iteration time per (scheme, scale).
    header = f"{'GPUs':>5} " + "".join(f"{s.label:>18}" for s in SCHEMES)
    print(header)
    print("-" * len(header))
    times = {}
    solo = DDPSimulator(model, cluster_for_gpus(4)).run(
        batch, iterations=20, warmup=4).mean
    for gpus in GPU_COUNTS:
        cells = [f"{gpus:>5}"]
        for scheme in SCHEMES:
            sim = DDPSimulator(model, cluster_for_gpus(gpus),
                               scheme=scheme)
            try:
                mean = sim.run(batch, iterations=20, warmup=4).mean
                times[(scheme.label, gpus)] = mean
                cells.append(f"{mean * 1e3:>15.0f} ms")
            except OutOfMemoryError:
                cells.append(f"{'OOM':>18}")
        print("".join(cells))

    # Weak-scaling efficiency: throughput per GPU vs the 4-GPU run.
    print("\nweak-scaling efficiency (samples/s per GPU vs one node):")
    for scheme in SCHEMES:
        row = [f"  {scheme.label:<18}"]
        for gpus in GPU_COUNTS:
            mean = times.get((scheme.label, gpus))
            if mean is None:
                row.append("   OOM")
            else:
                row.append(f"{solo / mean:>6.0%}")
        print("".join(row))

    # Recommendation: highest total throughput that is not OOM.
    best = max(
        ((label, gpus, gpus * batch / mean)
         for (label, gpus), mean in times.items()),
        key=lambda item: item[2])
    print(f"\nhighest throughput: {best[0]} at {best[1]} GPUs "
          f"({best[2]:,.0f} samples/s)")
    print("note how the recommendation is almost never an aggressive "
          "compressor — the paper's conclusion as a planning tool.")


if __name__ == "__main__":
    main()
