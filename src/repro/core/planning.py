"""Training-run planning on top of the performance model (§7).

The paper suggests extending its approach to other training decisions,
naming batch-size choice explicitly.  This module provides:

* **epoch-time accounting** — per-iteration predictions turned into
  epoch/wall-clock estimates for a dataset of a given size;
* **batch-size planning** — sweep per-GPU batch sizes under weak
  scaling: bigger batches hide communication better *and* communicate
  less often per epoch, the double effect behind Figure 7;
* **strong scaling** — fix the *global* batch and split it across more
  workers, the regime where per-GPU compute shrinks with scale and
  communication bottlenecks bite hardest (§7's "workload trends").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compression.kernel_cost import KernelProfile
from ..compression.schemes import Scheme, SyncSGDScheme
from ..compute import ComputeModel
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from .perf_model import PerfModelInputs, predict


@dataclass(frozen=True)
class EpochEstimate:
    """Wall-clock estimate for one epoch of training."""

    model: str
    scheme: str
    world_size: int
    per_gpu_batch: int
    iterations: int
    iteration_s: float

    @property
    def epoch_s(self) -> float:
        return self.iterations * self.iteration_s

    @property
    def samples_per_s(self) -> float:
        return (self.world_size * self.per_gpu_batch) / self.iteration_s


def epoch_time(model: ModelSpec, scheme: Scheme, inputs: PerfModelInputs,
               dataset_samples: int, gpu: GPUSpec = V100,
               include_forward: bool = True,
               profile: Optional[KernelProfile] = None) -> EpochEstimate:
    """Estimate one epoch's wall time under weak scaling.

    The perf model predicts the backward+sync window (the paper's
    metric); ``include_forward`` adds the forward pass and optimizer so
    the estimate is an actual epoch time.
    """
    if dataset_samples < 1:
        raise ConfigurationError(
            f"dataset_samples must be >= 1, got {dataset_samples}")
    bs = inputs.batch_size or model.default_batch_size
    global_batch = bs * inputs.world_size
    iterations = math.ceil(dataset_samples / global_batch)
    iteration = predict(model, scheme, inputs, gpu, profile).total
    if include_forward:
        compute = ComputeModel(model, gpu)
        iteration += compute.forward_time(bs) + compute.optimizer_time()
    return EpochEstimate(
        model=model.name,
        scheme=scheme.label if not isinstance(scheme, SyncSGDScheme)
        else "syncsgd",
        world_size=inputs.world_size,
        per_gpu_batch=bs,
        iterations=iterations,
        iteration_s=iteration,
    )


def batch_size_plan(model: ModelSpec, scheme: Scheme,
                    inputs: PerfModelInputs, dataset_samples: int,
                    batch_sizes: Sequence[int], gpu: GPUSpec = V100,
                    ) -> Tuple[EpochEstimate, ...]:
    """Epoch estimates across per-GPU batch sizes (Figure-7 planning)."""
    if not batch_sizes:
        raise ConfigurationError("batch_sizes must be non-empty")
    estimates: List[EpochEstimate] = []
    for bs in batch_sizes:
        if bs < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {bs}")
        swept = PerfModelInputs(
            world_size=inputs.world_size,
            bandwidth_bytes_per_s=inputs.bandwidth_bytes_per_s,
            alpha_s=inputs.alpha_s, gamma=inputs.gamma, batch_size=bs,
            bucket_cap_bytes=inputs.bucket_cap_bytes)
        estimates.append(epoch_time(model, scheme, swept, dataset_samples,
                                    gpu))
    return tuple(estimates)


@dataclass(frozen=True)
class CostEstimate:
    """Dollar cost of a training run on a priced cluster."""

    epochs: int
    wall_clock_s: float
    node_hours: float
    total_usd: float

    def render(self) -> str:
        return (f"{self.epochs} epochs in "
                f"{self.wall_clock_s / 3600:.2f} h wall clock = "
                f"{self.node_hours:.1f} node-hours = "
                f"${self.total_usd:,.0f}")


def training_cost(estimate: EpochEstimate, cluster: "ClusterConfig",
                  epochs: int) -> CostEstimate:
    """Price a run: epoch estimate x epochs x the cluster's node price.

    Useful for the advisor's bottom line: a compression scheme that is
    10% slower per iteration is 10% more expensive in dollars, not just
    in time — and an OOM-driven cap at 32 GPUs has a throughput cost
    money cannot fix.
    """
    from ..hardware import ClusterConfig  # noqa: F811  (typing only)

    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    if cluster.instance.hourly_usd <= 0:
        raise ConfigurationError(
            f"{cluster.instance.name} has no hourly price configured")
    if cluster.world_size != estimate.world_size:
        raise ConfigurationError(
            f"estimate was made for {estimate.world_size} GPUs but the "
            f"cluster has {cluster.world_size}")
    wall = estimate.epoch_s * epochs
    node_hours = wall / 3600.0 * cluster.num_nodes
    return CostEstimate(
        epochs=epochs,
        wall_clock_s=wall,
        node_hours=node_hours,
        total_usd=node_hours * cluster.instance.hourly_usd,
    )


@dataclass(frozen=True)
class StrongScalingPoint:
    """One point of a strong-scaling sweep (fixed global batch)."""

    world_size: int
    per_gpu_batch: int
    iteration_s: float
    speedup_vs_min_world: float


def strong_scaling_sweep(model: ModelSpec, scheme: Scheme,
                         base_inputs: PerfModelInputs, global_batch: int,
                         world_sizes: Sequence[int], gpu: GPUSpec = V100,
                         ) -> Tuple[StrongScalingPoint, ...]:
    """Fix the global batch, split across more workers.

    Under strong scaling the per-GPU batch shrinks with the worker
    count, so compute stops hiding communication — the regime the paper
    (§7 "workload trends") predicts compression becomes useful in.
    World sizes must divide the global batch.
    """
    if global_batch < 1:
        raise ConfigurationError(
            f"global_batch must be >= 1, got {global_batch}")
    ordered = sorted(set(world_sizes))
    if not ordered:
        raise ConfigurationError("world_sizes must be non-empty")
    times: List[Tuple[int, int, float]] = []
    for p in ordered:
        if p < 1 or global_batch % p != 0:
            raise ConfigurationError(
                f"world size {p} does not divide global batch "
                f"{global_batch}")
        bs = global_batch // p
        inputs = PerfModelInputs(
            world_size=p,
            bandwidth_bytes_per_s=base_inputs.bandwidth_bytes_per_s,
            alpha_s=base_inputs.alpha_s, gamma=base_inputs.gamma,
            batch_size=bs, bucket_cap_bytes=base_inputs.bucket_cap_bytes)
        times.append((p, bs, predict(model, scheme, inputs, gpu).total))
    base_time = times[0][2]
    return tuple(
        StrongScalingPoint(world_size=p, per_gpu_batch=bs,
                           iteration_s=t,
                           speedup_vs_min_world=base_time / t)
        for p, bs, t in times)
