"""Ideal-scaling analysis (§5: Figures 9 and 10).

**Figure 9 — how much compression is actually needed.**  Under weak
scaling, per-iteration time stays flat iff communication hides entirely
under computation.  With the §5 simplifications (whole gradient in one
overlappable bucket, all-reduce-compatible compression, encode cost
ignored), the threshold is ``T_comp = T_comm(ĝ, p, BW)``; solving for the
communicable size ``ĝ`` gives the *required* compression ratio
``g / ĝ`` — which comes out small (< 7x at 10 Gbit/s even for small
batches, < 2x for BERT), the paper's "no utility in overcompressing"
finding.

**Figure 10 — the headroom available to compression.**  The gap between
the syncSGD model's prediction and the ideal ``T_comp`` bounds how much
time an encode/decode step may spend before it cannot win at all: ~50 ms
for ResNet-50, ~100 ms for ResNet-101, ~200 ms for BERT at 10 Gbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compute import ComputeModel
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from .perf_model import PerfModelInputs, syncsgd_time


@dataclass(frozen=True)
class RequiredCompression:
    """Figure-9 style result for one configuration."""

    model: str
    batch_size: int
    world_size: int
    bandwidth_bytes_per_s: float
    compute_time_s: float
    communicable_bytes: float
    required_ratio: float


def communicable_bytes(t_comp: float, world_size: int,
                       bandwidth_bytes_per_s: float,
                       alpha_s: float = 10e-6) -> float:
    """Solve ``ring_allreduce_time(g, p, BW) == t_comp`` for ``g``.

    Inverts Equation (1): ``t = 2α(p-1) + 2g(p-1)/(p·BW)``.  Returns 0
    when latency alone already exceeds the compute time (no amount of
    compression achieves linear scaling there).
    """
    if t_comp <= 0:
        raise ConfigurationError(f"t_comp must be > 0, got {t_comp}")
    if world_size < 2:
        return float("inf")  # a single worker communicates nothing
    p = world_size
    budget = t_comp - 2.0 * alpha_s * (p - 1)
    if budget <= 0:
        return 0.0
    return budget * p * bandwidth_bytes_per_s / (2.0 * (p - 1))


def required_compression(model: ModelSpec, batch_size: int,
                         world_size: int, bandwidth_bytes_per_s: float,
                         gpu: GPUSpec = V100,
                         alpha_s: float = 10e-6) -> RequiredCompression:
    """Figure 9: the compression ratio needed for near-linear scaling."""
    compute = ComputeModel(model, gpu)
    t_comp = compute.backward_time(batch_size)
    g_hat = communicable_bytes(t_comp, world_size, bandwidth_bytes_per_s,
                               alpha_s)
    if g_hat == 0.0:
        ratio = float("inf")
    elif g_hat == float("inf") or g_hat >= model.grad_bytes:
        ratio = 1.0  # no compression needed at all
    else:
        ratio = model.grad_bytes / g_hat
    return RequiredCompression(
        model=model.name,
        batch_size=batch_size,
        world_size=world_size,
        bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        compute_time_s=t_comp,
        communicable_bytes=g_hat,
        required_ratio=ratio,
    )


@dataclass(frozen=True)
class HeadroomPoint:
    """Figure-10 style result: syncSGD's gap to ideal at one scale."""

    world_size: int
    ideal_s: float
    syncsgd_s: float

    @property
    def headroom_s(self) -> float:
        """Seconds a compression scheme may spend (encode + decode +
        compressed comm) and still beat syncSGD."""
        return max(0.0, self.syncsgd_s - self.ideal_s)


def headroom_curve(model: ModelSpec, world_sizes: Sequence[int],
                   bandwidth_bytes_per_s: float,
                   batch_size: Optional[int] = None,
                   gpu: GPUSpec = V100, alpha_s: float = 10e-6,
                   gamma: float = 1.10) -> Tuple[HeadroomPoint, ...]:
    """Figure 10: gap between optimized syncSGD and ideal scaling.

    Ideal weak scaling keeps per-iteration sync time at the standalone
    backward time ``T_comp``; the gap to the §4.1 prediction is the
    encode/decode budget available to any compression scheme.
    """
    compute = ComputeModel(model, gpu)
    bs = batch_size if batch_size is not None else model.default_batch_size
    ideal = compute.backward_time(bs)
    points: List[HeadroomPoint] = []
    for p in world_sizes:
        inputs = PerfModelInputs(
            world_size=p, bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            alpha_s=alpha_s, gamma=gamma, batch_size=bs)
        predicted = syncsgd_time(model, inputs, gpu).total
        points.append(HeadroomPoint(
            world_size=p, ideal_s=ideal, syncsgd_s=predicted))
    return tuple(points)
