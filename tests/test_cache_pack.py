"""Pack tier: append-only segments, offset index, crash tolerance."""

import json
import os

import pytest

from repro.engine import PackStore
from repro.engine.pack import (
    DEFAULT_SEGMENT_BYTES,
    INDEX_FILENAME,
    segment_name,
)
from repro.errors import ConfigurationError


def _payload(i):
    return {"kind": "predicted", "total": float(i), "compute": 0.5,
            "encode_decode": 0.1, "comm_exposed": 0.4}


def _keys(n):
    return [f"{i:064x}" for i in range(n)]


class TestAppendAndLookup:
    def test_roundtrip(self, tmp_path):
        store = PackStore(str(tmp_path))
        keys = _keys(5)
        written = store.append_many(
            (k, _payload(i)) for i, k in enumerate(keys))
        assert len(written) == 5
        for i, key in enumerate(keys):
            assert store.lookup(key) == _payload(i)
        assert store.lookup("f" * 64) is None
        store.close()

    def test_reopen_serves_same_entries(self, tmp_path):
        store = PackStore(str(tmp_path))
        keys = _keys(3)
        store.append_many((k, _payload(i)) for i, k in enumerate(keys))
        store.close()
        reopened = PackStore(str(tmp_path))
        assert len(reopened) == 3
        assert reopened.lookup(keys[1]) == _payload(1)
        reopened.close()

    def test_rewrite_newest_wins(self, tmp_path):
        store = PackStore(str(tmp_path))
        key = "a" * 64
        store.append_many([(key, _payload(1))])
        store.append_many([(key, _payload(2))])
        assert store.lookup(key) == _payload(2)
        store.close()
        reopened = PackStore(str(tmp_path))
        assert reopened.lookup(key) == _payload(2)
        reopened.close()

    def test_deterministic_layout_for_a_batch(self, tmp_path):
        keys = _keys(6)
        entries = [(k, _payload(i)) for i, k in enumerate(keys)]
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        a_dir.mkdir(), b_dir.mkdir()
        a = PackStore(str(a_dir))
        a.append_many(entries)
        a.close()
        b = PackStore(str(b_dir))
        b.append_many(reversed(entries))  # same set, reversed order
        b.close()
        name = segment_name(1)
        assert (a_dir / name).read_bytes() == (b_dir / name).read_bytes()

    def test_segment_rolls_past_size_limit(self, tmp_path):
        store = PackStore(str(tmp_path), segment_bytes=256)
        for i, key in enumerate(_keys(10)):
            store.append_many([(key, _payload(i))])
        store.close()
        segments = [n for n in os.listdir(tmp_path)
                    if n.startswith("pack-") and n != INDEX_FILENAME]
        assert len(segments) > 1
        reopened = PackStore(str(tmp_path), segment_bytes=256)
        assert len(reopened) == 10
        reopened.close()

    def test_invalid_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PackStore(str(tmp_path), segment_bytes=0)

    def test_default_segment_size_is_sane(self):
        assert DEFAULT_SEGMENT_BYTES >= 1 << 20


class TestCrashTolerance:
    def _populate(self, tmp_path, n=4):
        store = PackStore(str(tmp_path))
        store.append_many(
            (k, _payload(i)) for i, k in enumerate(_keys(n)))
        store.close()

    def test_truncated_segment_detected_at_load(self, tmp_path):
        self._populate(tmp_path)
        seg = tmp_path / segment_name(1)
        raw = seg.read_bytes()
        seg.write_bytes(raw[:len(raw) // 2])  # kill mid flush
        store = PackStore(str(tmp_path))
        assert store.truncated > 0
        # Undamaged prefix records still serve.
        served = sum(1 for k in _keys(4) if store.lookup(k) is not None)
        assert 0 < served < 4
        report = store.verify()
        assert report["truncated"] > 0
        assert report["corrupt"] == 0
        store.close()

    def test_torn_index_tail_dropped(self, tmp_path):
        self._populate(tmp_path)
        index = tmp_path / INDEX_FILENAME
        with open(index, "ab") as handle:
            handle.write(b'{"k": "abc", "s"')  # torn mid write
        store = PackStore(str(tmp_path))
        assert store.truncated == 1
        assert len(store) == 4  # healthy entries unaffected
        store.close()

    def test_overwritten_record_becomes_a_miss(self, tmp_path):
        self._populate(tmp_path, n=2)
        seg = tmp_path / segment_name(1)
        raw = seg.read_bytes()
        first_len = raw.index(b"\n") + 1
        seg.write_bytes(b"x" * first_len + raw[first_len:])
        store = PackStore(str(tmp_path))
        key0, key1 = _keys(2)
        assert store.lookup(key0) is None  # corrupt bytes never served
        assert store.truncated == 1
        assert key0 not in store  # dropped from the index
        assert store.lookup(key1) == _payload(1)
        store.close()

    def test_missing_segment_is_all_misses(self, tmp_path):
        self._populate(tmp_path)
        os.unlink(tmp_path / segment_name(1))
        store = PackStore(str(tmp_path))
        assert len(store) == 0
        assert store.truncated == 4
        store.close()

    def test_scan_stops_at_torn_tail(self, tmp_path):
        self._populate(tmp_path)
        seg = tmp_path / segment_name(1)
        raw = seg.read_bytes()
        seg.write_bytes(raw[:-3])  # tear the final record
        store = PackStore(str(tmp_path))
        recovered = dict(store.scan())
        assert len(recovered) == 3
        assert all(json.dumps(p) for p in recovered.values())
        store.close()


class TestVerify:
    def test_healthy_store_verifies_clean(self, tmp_path):
        store = PackStore(str(tmp_path))
        store.append_many(
            (k, _payload(i)) for i, k in enumerate(_keys(3)))
        report = store.verify()
        assert report == {"entries": 3, "ok": 3, "corrupt": 0,
                          "truncated": 0}
        store.close()

    def test_verify_reports_without_mutating(self, tmp_path):
        store = PackStore(str(tmp_path))
        store.append_many([("a" * 64, _payload(1))])
        store.close()
        seg = tmp_path / segment_name(1)
        raw = seg.read_bytes()
        seg.write_bytes(b"X" + raw[1:])  # same length, broken JSON
        reopened = PackStore(str(tmp_path))
        report = reopened.verify()
        assert report["corrupt"] == 1
        assert "a" * 64 in reopened  # verify itself drops nothing
        reopened.close()
