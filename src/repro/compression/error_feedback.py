"""Error feedback (EF) memory [35, 56].

Biased compressors (Top-K, signSGD variants, PowerSGD) drop part of the
gradient every step.  Error feedback accumulates what was dropped and adds
it back before the next compression, which restores convergence for a
large class of biased methods.  The paper notes EF as one of the costs of
compression ("loss that can only be mitigated with more iterations or
additional computation"); our training substrate uses it so the
convergence tests exercise the same algorithm the compression papers
propose.

One :class:`ErrorFeedback` instance holds the residual memories of *all*
workers for one tensor slot.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import CompressionError


class ErrorFeedback:
    """Per-worker residual memory for one tensor position.

    Usage per round, for each worker ``rank``::

        corrected = ef.corrected(rank, grad)   # grad + carried residual
        ...compress corrected, build decoded approximation...
        ef.store(rank, corrected - approximation)
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise CompressionError(
                f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self._memory: Dict[int, np.ndarray] = {}

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_workers:
            raise CompressionError(
                f"rank {rank} out of range for {self.num_workers} workers")

    def corrected(self, rank: int, grad: np.ndarray) -> np.ndarray:
        """Gradient plus the residual carried from previous rounds."""
        self._check_rank(rank)
        arr = np.asarray(grad, dtype=np.float64)
        mem = self._memory.get(rank)
        if mem is None:
            return arr.copy()
        if mem.shape != arr.shape:
            raise CompressionError(
                f"rank {rank}: residual shape {mem.shape} does not match "
                f"gradient shape {arr.shape}")
        return arr + mem

    def store(self, rank: int, residual: np.ndarray) -> None:
        """Record what compression dropped this round."""
        self._check_rank(rank)
        self._memory[rank] = np.asarray(residual, dtype=np.float64).copy()

    def residual_norm(self, rank: int) -> float:
        """L2 norm of a worker's carried residual (0 before first store)."""
        self._check_rank(rank)
        mem = self._memory.get(rank)
        return 0.0 if mem is None else float(np.linalg.norm(mem))

    def reset(self) -> None:
        """Drop all residual memories (e.g. between training runs)."""
        self._memory.clear()
