"""LayerSpec / ModelSpec descriptors."""

import pytest

from repro.errors import ConfigurationError
from repro.models import LayerSpec, ModelSpec
from repro.units import MIB


class TestLayerSpec:
    def test_num_params_includes_extras(self):
        layer = LayerSpec(name="l", kind="linear", param_shape=(10, 4),
                          matrix_shape=(10, 4), extra_params=10)
        assert layer.num_params == 50

    def test_grad_bytes_is_fp32(self):
        layer = LayerSpec(name="l", kind="linear", param_shape=(3, 3),
                          matrix_shape=(3, 3))
        assert layer.grad_bytes == 36

    def test_compute_only_layer_has_no_matrix(self):
        layer = LayerSpec(name="pool", kind="pool")
        assert not layer.has_matrix
        assert layer.num_params == 0

    def test_matrix_shape_must_cover_params(self):
        with pytest.raises(ConfigurationError, match="does not cover"):
            LayerSpec(name="bad", kind="conv", param_shape=(4, 4, 3, 3),
                      matrix_shape=(4, 4))

    def test_conv_reshape_is_valid(self):
        layer = LayerSpec(name="c", kind="conv", param_shape=(64, 3, 7, 7),
                          matrix_shape=(64, 147))
        assert layer.has_matrix

    def test_backward_flops_double_forward(self):
        layer = LayerSpec(name="l", kind="linear", param_shape=(2, 2),
                          matrix_shape=(2, 2), fwd_flops_per_sample=100.0)
        assert layer.bwd_flops_per_sample() == pytest.approx(200.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerSpec(name="", kind="linear")


class TestModelSpec:
    def test_aggregates(self, tiny_model):
        # fc1: 32+8, act: 0, fc2: 16+2
        assert tiny_model.num_params == 58
        assert tiny_model.grad_bytes == 58 * 4
        assert len(tiny_model.trainable_layers) == 2
        assert len(tiny_model.matrix_layers) == 2

    def test_flops_scale_with_batch(self, tiny_model):
        assert tiny_model.fwd_flops(4) == pytest.approx(
            4 * tiny_model.fwd_flops(1))
        assert tiny_model.bwd_flops(2) == pytest.approx(
            2 * tiny_model.fwd_flops(2))

    def test_backward_layers_reversed(self, tiny_model):
        names = [l.name for l in tiny_model.backward_layers()]
        assert names == ["fc2", "act", "fc1"]

    def test_duplicate_layer_names_rejected(self):
        layer = LayerSpec(name="same", kind="linear", param_shape=(2, 2),
                          matrix_shape=(2, 2))
        with pytest.raises(ConfigurationError, match="duplicate"):
            ModelSpec(name="dup", layers=(layer, layer))

    def test_layer_named(self, tiny_model):
        assert tiny_model.layer_named("fc2").param_shape == (2, 8)
        with pytest.raises(ConfigurationError):
            tiny_model.layer_named("missing")

    def test_invalid_batch_rejected(self, tiny_model):
        with pytest.raises(ConfigurationError):
            tiny_model.fwd_flops(0)

    def test_invalid_gather_granularity(self, tiny_model):
        with pytest.raises(ConfigurationError):
            ModelSpec(name="bad", layers=tiny_model.layers,
                      gather_granularity="tensor")

    def test_largest_layer_grad_bytes(self, tiny_model):
        assert tiny_model.largest_layer_grad_bytes == 40 * 4

    def test_summary_mentions_name(self, tiny_model):
        assert "tiny" in tiny_model.summary()

    def test_iteration_and_len(self, tiny_model):
        assert len(tiny_model) == 3
        assert [l.name for l in tiny_model] == ["fc1", "act", "fc2"]


class TestGradientBuckets:
    def test_buckets_fill_in_backward_order(self, tiny_model):
        buckets = tiny_model.gradient_buckets(bucket_cap_bytes=1e9)
        assert len(buckets) == 1
        assert [l.name for l in buckets[0]] == ["fc2", "fc1"]

    def test_small_cap_splits(self, tiny_model):
        buckets = tiny_model.gradient_buckets(bucket_cap_bytes=100)
        assert len(buckets) == 2
        assert [l.name for l in buckets[0]] == ["fc2"]
        assert [l.name for l in buckets[1]] == ["fc1"]

    def test_oversized_gradient_gets_own_bucket(self, bert_base):
        # The 93 MB word-embedding tensor exceeds the 25 MiB cap.
        sizes = bert_base.bucket_sizes_bytes(25 * MIB)
        assert max(sizes) > 25 * MIB

    def test_bucket_sizes_sum_to_grad_bytes(self, resnet50):
        assert sum(resnet50.bucket_sizes_bytes()) == pytest.approx(
            resnet50.grad_bytes)

    def test_no_bucket_except_singletons_exceeds_cap(self, resnet50):
        cap = 25 * MIB
        for bucket in resnet50.gradient_buckets(cap):
            size = sum(l.grad_bytes for l in bucket)
            if len(bucket) > 1:
                assert size <= cap

    def test_invalid_cap_rejected(self, tiny_model):
        with pytest.raises(ConfigurationError):
            tiny_model.gradient_buckets(0)
