"""Figure 13: trading encode/decode time against compression ratio.

Hypothetical schemes derived from PowerSGD rank-4: encode/decode time
divided by ``k`` (1..4), payload multiplied by ``l*k`` (l in 1..3).  The
paper's conclusion, asserted by the benchmark: *any* reduction in encode
time helps, even when it costs substantially more communication — i.e.
compression research should optimize encode speed, not ratio.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..compression.schemes import PowerSGDScheme
from ..core import PerfModelInputs, encode_tradeoff_grid
from ..models import get_model
from ..units import gbps_to_bytes_per_s
from .runner import ExperimentResult

#: The k (encode-time divisor) and l (size penalty) grids of the figure.
FIG13_KS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)
FIG13_LS: Tuple[float, ...] = (1.0, 2.0, 3.0)

#: (model, batch) pairs shown.
FIG13_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_fig13(num_gpus: int = 64, rank: int = 4,
              bandwidth_gbps: float = 10.0,
              ks: Sequence[float] = FIG13_KS,
              ls: Sequence[float] = FIG13_LS,
              workloads: Sequence[Tuple[str, int]] = FIG13_WORKLOADS,
              engine=None) -> ExperimentResult:
    """Encode-time/ratio trade-off grid, per workload.

    Grid-kernel evaluated; an ``engine`` adds per-point caching and
    family chunking with byte-identical rows.
    """
    rows: List[Dict[str, Any]] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        inputs = PerfModelInputs(
            world_size=num_gpus,
            bandwidth_bytes_per_s=gbps_to_bytes_per_s(bandwidth_gbps),
            batch_size=batch_size)
        for point in encode_tradeoff_grid(
                model, PowerSGDScheme(rank=rank), ks, ls, inputs,
                engine=engine):
            rows.append({
                "model": model_name,
                "k": point.k,
                "l": point.l,
                "predicted_ms": point.predicted_s * 1e3,
                "syncsgd_ms": point.syncsgd_s * 1e3,
                "speedup": point.speedup,
            })
    return ExperimentResult(
        experiment_id="fig13",
        title=(f"Encode-time vs compression-ratio trade-off "
               f"(PowerSGD rank-{rank} base, {num_gpus} GPUs, "
               f"{bandwidth_gbps:g} Gbit/s)"),
        columns=("model", "k", "l", "predicted_ms", "syncsgd_ms",
                 "speedup"),
        rows=tuple(rows),
    )
