"""Shared scaling-sweep harness for Figures 4, 5 and 6.

All three figures have the same shape: per-iteration time (gradient
computation + synchronization) of one or more compressed variants against
the syncSGD baseline, for ResNet-50 / ResNet-101 / BERT_BASE, as the GPU
count grows.  This module builds that grid as a batch of
:class:`~repro.engine.SimJob` and hands it to an
:class:`~repro.engine.ExperimentEngine`, which fans it out over worker
processes and serves repeats from its result cache — the syncSGD
baseline, identical across the three figures, simulates once.  OOM
configurations are marked the way the paper's plot notes do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compression.schemes import Scheme, SyncSGDScheme
from ..engine import ExperimentEngine, SimJob
from ..models import get_model
from ..telemetry.metrics import get_registry
from .runner import PAPER_GPU_SWEEP, ExperimentResult, scaling_clusters

#: (model name, per-GPU batch size) triples the paper evaluates.
PAPER_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet101", 64),
    ("bert-base", 12),
)


def run_scaling_sweep(experiment_id: str, title: str,
                      schemes: Sequence[Scheme],
                      workloads: Sequence[Tuple[str, int]] = PAPER_WORKLOADS,
                      gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
                      iterations: int = 40, warmup: int = 5,
                      seed: int = 0,
                      engine: Optional[ExperimentEngine] = None,
                      ) -> ExperimentResult:
    """Run syncSGD plus each scheme across the sweep.

    Rows contain mean/std per-iteration sync time in milliseconds; OOM
    points appear as rows with ``oom=True`` and NaN times, so downstream
    consumers see exactly where a method stopped scaling.  Passing an
    ``engine`` enables multiprocess fan-out and result caching; the
    default runs serially in-process, exactly like the historical
    nested-loop implementation (and produces identical rows either way,
    since every job carries its own seed).
    """
    eng = engine if engine is not None else ExperimentEngine()
    all_schemes: List[Scheme] = [SyncSGDScheme(), *schemes]
    jobs: List[SimJob] = []
    for model_name, batch_size in workloads:
        model = get_model(model_name)
        for cluster in scaling_clusters(gpu_counts):
            for scheme in all_schemes:
                jobs.append(SimJob(
                    model=model, cluster=cluster, scheme=scheme,
                    batch_size=batch_size, iterations=iterations,
                    warmup=warmup, seed=seed))

    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    oom_rows = 0
    for outcome in eng.run_outcomes(jobs):
        job = outcome.job
        scheme_label = job.scheme.label if job.scheme else "syncsgd"
        if outcome.failed:
            # The engine gave up on this job (crashed workers through
            # every retry, a timeout): report a degraded row rather
            # than losing the whole sweep.
            rows.append({
                "model": job.model.name,
                "scheme": scheme_label,
                "gpus": job.cluster.world_size,
                "batch_size": job.batch_size,
                "mean_ms": float("nan"),
                "std_ms": float("nan"),
                "oom": False,
            })
            notes.append(
                f"failed: {job.model.name}/{scheme_label} at "
                f"{job.cluster.world_size} GPUs after "
                f"{outcome.attempts} attempt(s): {outcome.error}")
            continue
        if outcome.oom is not None:
            oom_rows += 1
            rows.append({
                "model": job.model.name,
                "scheme": scheme_label,
                "gpus": job.cluster.world_size,
                "batch_size": job.batch_size,
                "mean_ms": float("nan"),
                "std_ms": float("nan"),
                "oom": True,
            })
            notes.append(
                f"{job.model.name}/{scheme_label} OOM at "
                f"{job.cluster.world_size} GPUs "
                f"({outcome.oom.required_bytes / 1e9:.1f} GB needed)")
            continue
        result = outcome.unwrap()
        rows.append({
            "model": job.model.name,
            "scheme": scheme_label,
            "gpus": job.cluster.world_size,
            "batch_size": job.batch_size,
            "mean_ms": result.mean * 1e3,
            "std_ms": result.std * 1e3,
            "oom": False,
        })
    registry = get_registry()
    if registry.enabled:
        registry.counter("experiment_rows_total",
                         experiment_id=experiment_id).inc(len(rows))
        registry.counter("experiment_oom_rows_total",
                         experiment_id=experiment_id).inc(oom_rows)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=("model", "scheme", "gpus", "batch_size", "mean_ms",
                 "std_ms", "oom"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
