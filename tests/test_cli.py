"""Command-line interface."""

import pytest

from repro.cli import _parse_scheme, build_parser, main


class TestSchemeParsing:
    def test_bare_name(self):
        assert _parse_scheme("signsgd").name == "signsgd"

    def test_int_param(self):
        scheme = _parse_scheme("powersgd:rank=8")
        assert scheme.rank == 8

    def test_float_param(self):
        scheme = _parse_scheme("topk:fraction=0.05")
        assert scheme.fraction == pytest.approx(0.05)

    def test_multiple_params(self):
        scheme = _parse_scheme("gradiveq:block=128,dims=16")
        assert scheme.block == 128 and scheme.dims == 16

    def test_bad_param_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            _parse_scheme("powersgd:rank")


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("experiment", "recommend", "whatif", "simulate"):
            args = parser.parse_args(
                [cmd] + (["table1"] if cmd == "experiment" else []))
            assert args.command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "powersgd" in out and "all_reduce" in out

    def test_experiment_markdown(self, capsys):
        assert main(["experiment", "table2", "--markdown"]) == 0
        assert "| method |" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert main(["recommend", "--model", "resnet50", "--gpus", "16",
                     "--batch", "64"]) == 0
        assert "recommendation" in capsys.readouterr().out

    def test_recommend_custom_bandwidth(self, capsys):
        assert main(["recommend", "--model", "resnet50", "--gpus", "16",
                     "--batch", "64", "--bandwidth", "1"]) == 0
        out = capsys.readouterr().out
        # at 1 Gbit/s compression wins
        assert "powersgd" in out

    def test_whatif(self, capsys):
        assert main(["whatif", "--model", "resnet50", "--gpus", "32",
                     "--batch", "64", "--scheme", "powersgd:rank=4"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth sweep" in out and "compute sweep" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--iterations", "15"]) == 0
        out = capsys.readouterr().out
        assert "sync time" in out and "compute" in out

    def test_simulate_with_scheme(self, capsys):
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--scheme", "signsgd",
                     "--iterations", "15"]) == 0
        assert "signsgd" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        assert main(["whatif", "--model", "resnet50",
                     "--scheme", "nosuch"]) == 2
        assert "error:" in capsys.readouterr().err
