"""What-if analysis for users (§7): pick a compression scheme for a setup.

The paper argues its model's real value is letting a data scientist
answer "will method X speed up *my* job?" without renting a cluster.
This module packages that workflow: given a model, a cluster (or raw
calibrated inputs) and a candidate list, it prices every candidate,
checks memory feasibility of the gather-based ones, and returns a ranked
recommendation with the reasons spelled out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.registry import available_schemes, make_scheme
from ..compression.schemes import Scheme, SyncSGDScheme
from ..compute import ComputeModel
from ..errors import ConfigurationError
from ..hardware import ClusterConfig, GPUSpec, V100
from ..models import ModelSpec
from ..network import Fabric
from .calibration import calibrate
from .perf_model import PerfModelInputs, predict, syncsgd_time

#: The curated menu, as (registry name, constructor params) pairs.  Its
#: order is the order verdicts are priced and rendered in, so it is part
#: of the ``repro recommend`` byte-stable output contract — append, do
#: not reorder.
_MENU: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("syncsgd", {}),
    ("fp16", {}),
    ("powersgd", {"rank": 4}),
    ("powersgd", {"rank": 8}),
    ("topk", {"fraction": 0.01}),
    ("signsgd", {}),
)

#: Registry names already considered (curated in or deliberately left
#: out of ``_MENU``) when the menu was last reviewed.  A scheme
#: registered after this snapshot is appended automatically with its
#: default parameters, so new registrations surface in ``repro
#: recommend`` without touching this module.
_KNOWN_SCHEMES = frozenset({
    "syncsgd", "fp16", "powersgd", "topk", "signsgd", "qsgd", "terngrad",
    "onebit", "atomo", "randomk", "dgc", "gradiveq", "natural",
    "efsignsgd", "hybrid-powersgd",
})


def default_candidates() -> List[Scheme]:
    """The menu a practitioner realistically chooses from.

    Built from the compression registry: the curated ``_MENU`` entries
    first (byte-stable order), then any scheme registered since the
    menu's last review, with default parameters.  Registering a scheme
    in :mod:`repro.compression.registry` is therefore all it takes for
    it to appear here and in ``repro recommend``.
    """
    menu = [make_scheme(name, **params) for name, params in _MENU]
    menu.extend(make_scheme(name) for name in available_schemes()
                if name not in _KNOWN_SCHEMES)
    return menu


@dataclass(frozen=True)
class CandidateVerdict:
    """One candidate's predicted standing for the user's setup."""

    scheme_label: str
    predicted_s: float
    speedup_vs_syncsgd: float
    feasible: bool
    note: str

    def to_dict(self) -> dict:
        """JSON-safe view (infeasible sentinels become ``None``)."""
        return {
            "scheme": self.scheme_label,
            "predicted_s": (self.predicted_s
                            if math.isfinite(self.predicted_s) else None),
            "speedup_vs_syncsgd": (self.speedup_vs_syncsgd
                                   if math.isfinite(self.speedup_vs_syncsgd)
                                   else None),
            "feasible": self.feasible,
            "note": self.note,
        }


@dataclass(frozen=True)
class Recommendation:
    """Ranked verdicts plus the chosen scheme."""

    model: str
    world_size: int
    bandwidth_gbps: float
    verdicts: Tuple[CandidateVerdict, ...]

    @property
    def best(self) -> CandidateVerdict:
        """Fastest feasible candidate."""
        feasible = [v for v in self.verdicts if v.feasible]
        if not feasible:
            raise ConfigurationError("no feasible candidate")
        return min(feasible, key=lambda v: v.predicted_s)

    def render(self) -> str:
        """Human-readable ranking."""
        lines = [
            f"recommendation for {self.model} at {self.world_size} GPUs, "
            f"{self.bandwidth_gbps:.1f} Gbit/s:"
        ]
        for v in sorted(self.verdicts,
                        key=lambda v: (not v.feasible, v.predicted_s)):
            marker = "->" if v.scheme_label == self.best.scheme_label else "  "
            status = (f"{v.predicted_s * 1e3:7.1f} ms "
                      f"({v.speedup_vs_syncsgd:+.1%})"
                      if v.feasible else "infeasible")
            lines.append(f" {marker} {v.scheme_label:<18} {status}  {v.note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe view, verdicts in the ranking ``render`` prints."""
        ranked = sorted(self.verdicts,
                        key=lambda v: (not v.feasible, v.predicted_s))
        try:
            best = self.best.scheme_label
        except ConfigurationError:
            best = None
        return {
            "model": self.model,
            "world_size": self.world_size,
            "bandwidth_gbps": self.bandwidth_gbps,
            "best": best,
            "verdicts": [v.to_dict() for v in ranked],
        }


#: Prices ``[None] + feasible_schemes`` (``None`` = sync-SGD baseline)
#: and returns the predicted iteration seconds for each, in order.
PriceFn = Callable[[Sequence[Optional[Scheme]]], Sequence[float]]


def feasible_candidates(model: ModelSpec, inputs: PerfModelInputs,
                        candidates: Optional[Sequence[Scheme]] = None,
                        gpu: GPUSpec = V100,
                        profile: Optional[KernelProfile] = None,
                        ) -> List[Optional[Scheme]]:
    """The exact pricing list :func:`recommend_with` hands its pricer.

    ``[None] + candidates that pass the memory screen`` — callers that
    price out-of-band (the serving scheduler batches every request's
    entries through one engine call) use this to build jobs whose
    results line up one-to-one with the pricer invocation.
    """
    schemes = list(candidates) if candidates is not None \
        else default_candidates()
    prof = profile if profile is not None else v100_kernel_profile()
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    p = inputs.world_size
    entries: List[Optional[Scheme]] = [None]
    for scheme in schemes:
        cost = scheme.cost(model, p, prof)
        fits, _ = compute.fits_in_memory(bs, cost.aggregation_working_set(p))
        if fits:
            entries.append(scheme)
    return entries


def recommend_with(model: ModelSpec, inputs: PerfModelInputs,
                   price: PriceFn,
                   candidates: Optional[Sequence[Scheme]] = None,
                   gpu: GPUSpec = V100,
                   profile: Optional[KernelProfile] = None,
                   ) -> Recommendation:
    """Rank candidates with an injected pricing function.

    The advisor keeps the feasibility screen and the verdict notes; the
    caller supplies *how* predictions are produced.  ``price`` receives
    ``[None] + feasible_schemes`` — ``None`` meaning the sync-SGD
    baseline — and returns one predicted iteration time (seconds) per
    entry.  The serving scheduler routes this through the engine's grid
    kernels so concurrent requests coalesce; the offline path prices
    analytically.  Both produce bit-identical numbers (PR-5 contract),
    so rendered output is byte-stable across entrypoints.
    """
    schemes = list(candidates) if candidates is not None \
        else default_candidates()
    if not schemes:
        raise ConfigurationError("candidate list is empty")
    prof = profile if profile is not None else v100_kernel_profile()
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    p = inputs.world_size

    costs = [scheme.cost(model, p, prof) for scheme in schemes]
    required_bytes: List[Optional[int]] = []
    feasible: List[Scheme] = []
    for scheme, cost in zip(schemes, costs):
        fits, required = compute.fits_in_memory(
            bs, cost.aggregation_working_set(p))
        required_bytes.append(None if fits else required)
        if fits:
            feasible.append(scheme)
    times = list(price([None, *feasible]))
    if len(times) != 1 + len(feasible):
        raise ConfigurationError(
            f"pricer returned {len(times)} times for "
            f"{1 + len(feasible)} schemes")
    baseline = times[0]
    predicted_iter = iter(times[1:])

    verdicts: List[CandidateVerdict] = []
    for scheme, cost, required in zip(schemes, costs, required_bytes):
        if required is not None:
            verdicts.append(CandidateVerdict(
                scheme_label=scheme.label, predicted_s=float("inf"),
                speedup_vs_syncsgd=float("-inf"), feasible=False,
                note=(f"gather working set needs "
                      f"{required / 1e9:.0f} GB > "
                      f"{gpu.memory_bytes / 1e9:.0f} GB GPU")))
            continue
        predicted = next(predicted_iter)
        speedup = (baseline - predicted) / baseline
        if isinstance(scheme, SyncSGDScheme):
            note = "baseline"
        elif speedup > 0.05:
            note = "worth it"
        elif speedup > -0.02:
            note = "a wash"
        else:
            note = ("encode cost exceeds headroom"
                    if cost.encode_decode_s > max(0.0, baseline - compute.
                                                  backward_time(bs))
                    else "communication savings too small")
        verdicts.append(CandidateVerdict(
            scheme_label=scheme.label, predicted_s=predicted,
            speedup_vs_syncsgd=speedup, feasible=True, note=note))
    return Recommendation(
        model=model.name,
        world_size=p,
        bandwidth_gbps=inputs.bandwidth_bytes_per_s * 8 / 1e9,
        verdicts=tuple(verdicts),
    )


def recommend_for_inputs(model: ModelSpec, inputs: PerfModelInputs,
                         candidates: Optional[Sequence[Scheme]] = None,
                         gpu: GPUSpec = V100,
                         profile: Optional[KernelProfile] = None,
                         ) -> Recommendation:
    """Rank candidates for already-calibrated inputs."""
    prof = profile if profile is not None else v100_kernel_profile()

    def _price(entries: Sequence[Optional[Scheme]]) -> List[float]:
        return [
            syncsgd_time(model, inputs, gpu).total if scheme is None
            else predict(model, scheme, inputs, gpu, prof).total
            for scheme in entries
        ]

    return recommend_with(model, inputs, _price, candidates=candidates,
                          gpu=gpu, profile=prof)


def recommend(model: ModelSpec, cluster: ClusterConfig,
              batch_size: Optional[int] = None,
              candidates: Optional[Sequence[Scheme]] = None,
              fabric: Optional[Fabric] = None) -> Recommendation:
    """Full §7 workflow: calibrate against the cluster, then rank.

    Uses the same pre-run measurements the paper's methodology collects
    (iperf bandwidth minimum, α, γ).
    """
    report = calibrate(model, cluster, batch_size=batch_size,
                       fabric=fabric)
    return recommend_for_inputs(model, report.inputs,
                                candidates=candidates, gpu=cluster.gpu)
