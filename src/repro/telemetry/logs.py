"""Structured logging: one event, explicit fields, two renderings.

The CLI's error paths (and any library code that wants to narrate) log
through here instead of bare ``print``.  Text mode writes
``level: event key=value ...`` to stderr — the historical ``error: ...``
shape, so scripts that grep for it keep working.  JSONL mode
(``--log-json``) writes one JSON object per line with stable keys
(``ts``, ``level``, ``logger``, ``event``, plus the event's fields),
which downstream tooling can parse without regexes.

A single process-wide configuration (level threshold, rendering, output
stream) keeps the CLI wiring to one ``configure()`` call; loggers are
cheap named handles.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, Optional, TextIO

from ..errors import ConfigurationError

#: Log levels, lowest to highest severity.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}


class _LogConfig:
    """Process-wide sink configuration (module-private singleton)."""

    __slots__ = ("threshold", "json_mode", "stream")

    def __init__(self) -> None:
        self.threshold = LEVELS["warning"]
        self.json_mode = False
        self.stream: Optional[TextIO] = None  # None -> current sys.stderr

    def target(self) -> TextIO:
        return self.stream if self.stream is not None else sys.stderr


_CONFIG = _LogConfig()


def configure(level: str = "warning", json_mode: bool = False,
              stream: Optional[TextIO] = None) -> None:
    """Set the process-wide logging behaviour.

    Args:
        level: Minimum severity emitted (``debug``/``info``/``warning``/
            ``error``).
        json_mode: Emit JSONL instead of human text.
        stream: Output stream; ``None`` follows ``sys.stderr`` (so
            pytest's capture and shell redirection both behave).
    """
    if level not in LEVELS:
        raise ConfigurationError(
            f"unknown log level {level!r} (have {sorted(LEVELS)})")
    _CONFIG.threshold = LEVELS[level]
    _CONFIG.json_mode = json_mode
    _CONFIG.stream = stream


def _render_text(level: str, logger: str, event: str,
                 fields: Dict[str, Any]) -> str:
    parts = [f"{level}: {event}"]
    parts.extend(f"{key}={value}" for key, value in fields.items())
    return " ".join(parts)


def _render_json(level: str, logger: str, event: str,
                 fields: Dict[str, Any]) -> str:
    record: Dict[str, Any] = {
        "ts": round(time.time(), 6),
        "level": level,
        "logger": logger,
        "event": event,
    }
    for key, value in fields.items():
        if key in record:
            key = f"field_{key}"
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            value = repr(value)
        record[key] = value
    return json.dumps(record)


class StructuredLogger:
    """Named handle emitting events through the process-wide sink."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("logger name must be non-empty")
        self.name = name

    def log(self, level: str, event: str, **fields: Any) -> None:
        self._emit(level, event, fields)

    def _emit(self, level: str, event: str,
              fields: Dict[str, Any]) -> None:
        severity = LEVELS.get(level)
        if severity is None:
            raise ConfigurationError(f"unknown log level {level!r}")
        if severity < _CONFIG.threshold:
            return
        render = _render_json if _CONFIG.json_mode else _render_text
        line = render(level, self.name, event, fields)
        stream = _CONFIG.target()
        stream.write(line + "\n")
        try:
            stream.flush()
        except (OSError, ValueError):
            pass  # a closed redirection target must not mask the event

    # The per-level helpers route through ``_emit`` with the fields as a
    # dict, so a field legitimately named ``level`` or ``event`` (e.g.
    # ``info("cache", level="L2")``) cannot collide with the positional
    # parameters of ``log``.

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


_LOGGERS: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """The (cached) logger for ``name``."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
