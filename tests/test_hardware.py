"""Hardware catalog: GPUs, instances, clusters."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    P3_8XLARGE,
    V100,
    ClusterConfig,
    GPUSpec,
    InstanceType,
    available_gpus,
    available_instances,
    cluster_for_gpus,
    get_gpu,
    get_instance,
    gpu_scaling_sweep,
)


class TestGPUSpec:
    def test_v100_effective_flops(self):
        assert V100.effective_training_flops == pytest.approx(
            15.7e12 * V100.training_efficiency)

    def test_scaled_speeds_up_compute(self):
        fast = V100.scaled(2.0)
        assert fast.peak_fp32_flops == pytest.approx(2 * V100.peak_fp32_flops)
        assert fast.memcpy_bytes_per_s == pytest.approx(
            2 * V100.memcpy_bytes_per_s)
        assert fast.kernel_launch_overhead_s == pytest.approx(
            V100.kernel_launch_overhead_s / 2)

    def test_scaled_keeps_memory(self):
        assert V100.scaled(4.0).memory_bytes == V100.memory_bytes

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            V100.scaled(0.0)
        with pytest.raises(ConfigurationError):
            V100.scaled(-1.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(name="bad", peak_fp32_flops=1e12,
                    training_efficiency=1.5, memcpy_bytes_per_s=1e9,
                    memory_bytes=1e9, kernel_launch_overhead_s=1e-6)

    def test_registry_lookup(self):
        assert get_gpu("V100-SXM2-16GB") is V100

    def test_registry_unknown_name(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_gpu("H100")

    def test_registry_copy_is_safe(self):
        gpus = available_gpus()
        gpus.clear()
        assert available_gpus()


class TestInstanceType:
    def test_p3_8xlarge_matches_paper(self):
        assert P3_8XLARGE.gpus_per_node == 4
        assert P3_8XLARGE.gpu is V100
        # ~10 Gbit/s network.
        assert P3_8XLARGE.network_bytes_per_s == pytest.approx(1.25e9)

    def test_with_network_gbps(self):
        fast = P3_8XLARGE.with_network_gbps(100)
        assert fast.network_bytes_per_s == pytest.approx(12.5e9)
        assert fast.gpus_per_node == 4

    def test_with_gpu(self):
        other = P3_8XLARGE.with_gpu(get_gpu("A100-SXM4-40GB"))
        assert other.gpu.name == "A100-SXM4-40GB"

    def test_unknown_instance(self):
        with pytest.raises(ConfigurationError):
            get_instance("p5.whatever")

    def test_available_instances(self):
        assert "p3.8xlarge" in available_instances()


class TestClusterConfig:
    def test_world_size(self):
        assert ClusterConfig(num_nodes=24).world_size == 96

    def test_node_of(self):
        cluster = ClusterConfig(num_nodes=3)
        assert cluster.node_of(0) == 0
        assert cluster.node_of(3) == 0
        assert cluster.node_of(4) == 1
        assert cluster.node_of(11) == 2

    def test_node_of_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=2).node_of(8)

    def test_ranks_on_node(self):
        cluster = ClusterConfig(num_nodes=2)
        assert cluster.ranks_on_node(1) == [4, 5, 6, 7]

    def test_same_node(self):
        cluster = ClusterConfig(num_nodes=2)
        assert cluster.same_node(0, 3)
        assert not cluster.same_node(3, 4)

    def test_with_nodes(self):
        assert ClusterConfig(num_nodes=2).with_nodes(5).num_nodes == 5

    def test_describe_mentions_gpus(self):
        assert "96 GPUs" in ClusterConfig(num_nodes=24).describe()

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=0)


class TestClusterForGpus:
    def test_exact_multiple(self):
        assert cluster_for_gpus(96).num_nodes == 24

    def test_non_multiple_rejected(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            cluster_for_gpus(10)

    def test_sweep_doubles_and_caps(self):
        sweep = gpu_scaling_sweep(96)
        sizes = [c.world_size for c in sweep]
        assert sizes[0] == 4
        assert sizes[-1] == 96
        assert sorted(sizes) == sizes

    def test_sweep_too_small(self):
        with pytest.raises(ConfigurationError):
            gpu_scaling_sweep(2)
