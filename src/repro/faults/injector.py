"""Resolving a :class:`FaultSchedule` into per-iteration fault state.

The :class:`~repro.simulator.DDPSimulator` asks the injector one
question per iteration — :meth:`FaultInjector.faults_for` — and gets
back an :class:`IterationFaults`: the compute stretch the slowest
straggler imposes, the effective bandwidth scale after every active
link/NIC fault is applied to the fabric's matrix, the surviving world
size under elastic recovery, any recovery stall, and the active
retransmit policy.

Determinism rules:

* the injector owns its own RNG space — retransmit draws come from a
  generator seeded by ``(schedule seed, iteration, transfer index)``,
  never from the simulator's jitter stream, so attaching faults does
  not perturb jitter and parallel sweeps replay identically;
* everything else is a pure function of the schedule and the iteration
  index, memoized per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..hardware import ClusterConfig
from ..network import Fabric
from ..telemetry.metrics import get_registry
from .schedule import FaultSchedule, RetransmitFault

#: Stream name for fault-window spans in iteration traces; the Perfetto
#: exporter allocates it a track automatically, so fault windows show up
#: as a third timeline row next to ``compute`` and ``comm``.
FAULT_STREAM = "faults"


@dataclass(frozen=True)
class IterationFaults:
    """The resolved fault state of one simulated iteration.

    Attributes:
        iteration: The 0-based absolute iteration index.
        compute_slowdown: Compute stretch factor (>= 1); lockstep
            training runs at the slowest straggler's pace.
        bandwidth_scale: Multiplier (<= 1) on the fabric's pairwise
            minimum bandwidth after active link/NIC faults.
        world_size: Workers actually participating (reduced by elastic
            crash recovery; never below 1).
        stall_s: Recovery stall charged at the start of the iteration
            (crash restart / elastic reconfiguration).
        stall_label: Trace label for the stall span (``None`` = none).
        retransmit: The active retransmit policy, if any.
        active: Labels of every active fault, for trace fault-window
            spans and telemetry (sorted, low cardinality).
    """

    iteration: int
    compute_slowdown: float
    bandwidth_scale: float
    world_size: int
    stall_s: float
    stall_label: Optional[str]
    retransmit: Optional[RetransmitFault]
    active: Tuple[str, ...]

    @property
    def degraded(self) -> bool:
        """Whether anything at all is wrong this iteration."""
        return bool(self.active) or self.stall_s > 0


@dataclass(frozen=True)
class ResolvedFaults:
    """A contiguous range of iterations' fault state, as arrays.

    The batch simulation fast path consumes fault state as masks and
    broadcasts rather than one :class:`IterationFaults` at a time; this
    is the array form :meth:`FaultInjector.resolve_range` returns.  The
    arrays are parallel over iterations ``start .. start + n - 1`` and
    each element is exactly the corresponding scalar field of
    :meth:`FaultInjector.faults_for` — same memoized resolution, just
    packed.

    Attributes:
        start: First (0-based absolute) iteration of the range.
        states: The per-iteration :class:`IterationFaults` records (for
            retransmit policies and telemetry mirroring).
        compute_slowdown: ``(n,)`` compute stretch factors (>= 1).
        bandwidth_scale: ``(n,)`` min-bandwidth multipliers (<= 1).
        world_size: ``(n,)`` surviving world sizes (int).
        stall_s: ``(n,)`` start-of-iteration recovery stalls.
    """

    start: int
    states: Tuple[IterationFaults, ...]
    compute_slowdown: np.ndarray
    bandwidth_scale: np.ndarray
    world_size: np.ndarray
    stall_s: np.ndarray

    def __len__(self) -> int:
        return len(self.states)

    @property
    def has_retransmits(self) -> bool:
        """Whether any iteration in the range can drop transfers."""
        return any(s.retransmit is not None and s.retransmit.drop_rate > 0
                   for s in self.states)


class FaultInjector:
    """Binds a :class:`FaultSchedule` to one cluster + fabric.

    Construction validates the schedule against the topology (a
    straggler on worker 12 of an 8-GPU job is a spec error, not a
    silent no-op) and snapshots the fault-free minimum bandwidth so
    per-iteration scales are computed against the true baseline.
    """

    def __init__(self, schedule: FaultSchedule, cluster: ClusterConfig,
                 fabric: Fabric):
        """Validate ``schedule`` against the topology and bind it."""
        self.schedule = schedule
        self.cluster = cluster
        self.fabric = fabric
        self._validate_topology()
        self._base_min_bw = fabric.min_bandwidth()
        self._cache: Dict[int, IterationFaults] = {}
        self._bw_cache: Dict[tuple, float] = {}
        #: Counters the CLI prints after a faulted run; mirrored into
        #: telemetry when a registry is enabled.  They describe the most
        #: recent run: :meth:`reset_run_counters` zeroes them at the
        #: start of every :meth:`DDPSimulator.run
        #: <repro.simulator.ddp.DDPSimulator.run>`.
        self.retransmits_injected = 0
        self.retransmit_delay_s = 0.0

    def reset_run_counters(self) -> None:
        """Zero the per-run retransmit counters.

        The simulator calls this at the start of every run; without it,
        repeated ``run()`` calls on one simulator accumulate and the
        post-run :meth:`summary` overcounts on reruns.
        """
        self.retransmits_injected = 0
        self.retransmit_delay_s = 0.0

    def _validate_topology(self) -> None:
        """Reject faults referencing workers/nodes the cluster lacks."""
        p = self.cluster.world_size
        n = self.cluster.num_nodes
        for s in self.schedule.stragglers:
            if s.worker >= p:
                raise ConfigurationError(
                    f"straggler worker {s.worker} out of range for "
                    f"{p} workers")
        for c in self.schedule.crashes:
            if c.worker >= p:
                raise ConfigurationError(
                    f"crash worker {c.worker} out of range for "
                    f"{p} workers")
        for link in self.schedule.links:
            if link.node_a >= n or link.node_b >= n:
                raise ConfigurationError(
                    f"link fault ({link.node_a}, {link.node_b}) out of "
                    f"range for {n} nodes")
            # Defense in depth: LinkFault's constructor rejects these
            # too, but a self-link that slips through (hand-built or
            # deserialized records) would have its factor applied to the
            # same matrix cell twice (factor²) in _bandwidth_scale.
            if link.node_a == link.node_b:
                raise ConfigurationError(
                    f"link fault endpoints must differ, got node "
                    f"{link.node_a} twice")
            if link.factor <= 0:
                raise ConfigurationError(
                    f"link factor must be > 0, got {link.factor}")
        for node in self.schedule.nodes:
            if node.node >= n:
                raise ConfigurationError(
                    f"node fault {node.node} out of range for {n} nodes")
            if node.factor <= 0:
                raise ConfigurationError(
                    f"node factor must be > 0, got {node.factor}")

    # ----- per-iteration resolution ----------------------------------------

    def faults_for(self, iteration: int) -> IterationFaults:
        """The resolved fault state of ``iteration`` (memoized)."""
        state = self._cache.get(iteration)
        if state is None:
            state = self._resolve(iteration)
            self._cache[iteration] = state
        return state

    def resolve_range(self, start: int, stop: int) -> ResolvedFaults:
        """Resolve iterations ``[start, stop)`` into parallel arrays.

        The array API of :meth:`faults_for`: one pass over the memoized
        per-iteration resolution, packed into the :class:`ResolvedFaults`
        form the batch fast path applies as masks and broadcasts.
        """
        if stop < start:
            raise ConfigurationError(
                f"resolve_range: stop ({stop}) must be >= start ({start})")
        states = tuple(self.faults_for(i) for i in range(start, stop))
        return ResolvedFaults(
            start=start,
            states=states,
            compute_slowdown=np.array(
                [s.compute_slowdown for s in states], dtype=float),
            bandwidth_scale=np.array(
                [s.bandwidth_scale for s in states], dtype=float),
            world_size=np.array(
                [s.world_size for s in states], dtype=np.int64),
            stall_s=np.array([s.stall_s for s in states], dtype=float),
        )

    def _resolve(self, iteration: int) -> IterationFaults:
        """Compute one iteration's fault state from the schedule."""
        active = []

        slowdown = 1.0
        for s in self.schedule.stragglers:
            if s.active(iteration) and not self._crashed_out(
                    s.worker, iteration):
                slowdown = max(slowdown, s.slowdown)
                active.append("straggler")

        bw_scale = self._bandwidth_scale(iteration)
        if bw_scale < 1.0:
            active.append("degraded-link")

        world = self.cluster.world_size
        stall_s = 0.0
        stall_label = None
        elastic_gone: set = set()
        for c in self.schedule.crashes:
            if (c.recovery == "elastic" and iteration >= c.at_iteration
                    and c.worker not in elastic_gone):
                # Decrement once per *departed worker*, not per entry:
                # the schedule validates against duplicate elastic
                # crashes, but a hand-built duplicate must not shrink
                # the world twice for one physical departure.
                elastic_gone.add(c.worker)
                world -= 1
            if iteration == c.at_iteration:
                stall_s += c.stall_s
                stall_label = f"crash-{c.recovery}"
                active.append(f"crash-{c.recovery}")
        world = max(1, world)

        retransmit = None
        for r in self.schedule.retransmits:
            if r.active(iteration):
                # With several overlapping policies the harshest wins —
                # modelling independent loss processes would need a
                # combined rate anyway, and one policy is the 99% case.
                if retransmit is None or r.drop_rate > retransmit.drop_rate:
                    retransmit = r
        if retransmit is not None:
            active.append("retransmit-risk")

        return IterationFaults(
            iteration=iteration,
            compute_slowdown=slowdown,
            bandwidth_scale=bw_scale,
            world_size=world,
            stall_s=stall_s,
            stall_label=stall_label,
            retransmit=retransmit,
            active=tuple(sorted(set(active))),
        )

    def _crashed_out(self, worker: int, iteration: int) -> bool:
        """Whether ``worker`` has been elastically dropped by now (a
        dropped straggler stops straggling — the silver lining)."""
        return any(c.worker == worker and c.recovery == "elastic"
                   and iteration >= c.at_iteration
                   for c in self.schedule.crashes)

    def _bandwidth_scale(self, iteration: int) -> float:
        """Effective min-bandwidth multiplier after active link faults.

        Applies every active link/NIC factor to a copy of the fabric's
        pairwise matrix and re-takes the minimum — exactly the paper's
        probe-and-take-minimum methodology, run against the degraded
        fabric.  Clusters are small (<= a few dozen nodes), so the
        O(n^2) copy per *distinct* fault pattern is negligible — the
        scale is memoized by active-fault pattern, since a schedule
        spends whole windows in the same handful of patterns.
        """
        n = self.cluster.num_nodes
        if n <= 1:
            return 1.0
        active_links = tuple(f for f in self.schedule.links
                             if f.active(iteration))
        active_nodes = tuple(f for f in self.schedule.nodes
                             if f.active(iteration))
        if not active_links and not active_nodes:
            return 1.0
        pattern = (active_links, active_nodes)
        cached = self._bw_cache.get(pattern)
        if cached is not None:
            return cached
        matrix = np.array(
            [[self.fabric.pair_bandwidth(a, b) if a != b else np.inf
              for b in range(n)] for a in range(n)])
        for link in active_links:
            matrix[link.node_a, link.node_b] *= link.factor
            matrix[link.node_b, link.node_a] *= link.factor
        for node in active_nodes:
            for other in range(n):
                if other != node.node:
                    matrix[node.node, other] *= node.factor
                    matrix[other, node.node] *= node.factor
        scale = float(matrix.min()) / self._base_min_bw
        self._bw_cache[pattern] = scale
        return scale

    # ----- retransmits ------------------------------------------------------

    def retransmit_delay(self, iteration: int, transfer_index: int,
                         base_duration_s: float) -> Tuple[float, int]:
        """Extra seconds a transfer pays to loss this iteration.

        Returns ``(delay_s, replays)``.  Each attempt drops with the
        policy's ``drop_rate``; attempt *k*'s failure costs a timeout of
        ``timeout_s * backoff**(k-1)`` plus a full replay of the
        transfer (the α+β cost again).  After ``max_retries`` failures
        the transfer is forced through.  The draw stream is seeded by
        ``(schedule seed, iteration, transfer_index)``, so it is
        reproducible and independent of the jitter RNG.
        """
        state = self.faults_for(iteration)
        policy = state.retransmit
        if policy is None or policy.drop_rate == 0.0:
            return 0.0, 0
        rng = np.random.default_rng(
            (self.schedule.seed, iteration, transfer_index))
        delay = 0.0
        replays = 0
        while replays < policy.max_retries:
            if rng.random() >= policy.drop_rate:
                break
            delay += (policy.timeout_s * policy.backoff ** replays
                      + base_duration_s)
            replays += 1
        if replays:
            self.retransmits_injected += replays
            self.retransmit_delay_s += delay
            registry = get_registry()
            if registry.enabled:
                registry.counter("sim_fault_retransmits_total").inc(replays)
                registry.histogram("sim_fault_retransmit_delay_s").observe(
                    delay)
        return delay, replays

    def retransmit_delay_range(self, start: int, stop: int,
                               transfer_index: int,
                               base_durations_s: np.ndarray,
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`retransmit_delay` over ``[start, stop)``
        for one transfer index.

        Returns ``(delay_s, replays)`` arrays of length ``stop - start``
        whose elements are bit-identical to the scalar call: each
        iteration's draws come from the same
        ``(schedule seed, iteration, transfer_index)``-seeded generator
        (batched draws consume the stream in the same order as the
        scalar loop's sequential ones), and the per-retry delay terms
        accumulate in the scalar loop's order.

        Unlike the scalar method this is *pure*: the run counters and
        telemetry are untouched — the batch path mirrors them itself
        after assembling every transfer, preserving the event path's
        accumulation order.
        """
        n = stop - start
        durs = np.asarray(base_durations_s, dtype=float)
        delays = np.zeros(n)
        replays = np.zeros(n, dtype=np.int64)
        # Group rows by active policy: draws vectorize per policy (its
        # drop rate and retry schedule are shared), while each row keeps
        # its own seeded stream.
        groups: Dict[RetransmitFault, list] = {}
        for row in range(n):
            policy = self.faults_for(start + row).retransmit
            # The event path never rolls the dice for an idle policy or
            # a zero-length transfer (duration <= 0 skips retransmits).
            if policy is None or policy.drop_rate == 0.0 or durs[row] <= 0:
                continue
            groups.setdefault(policy, []).append(row)
        for policy, rows in groups.items():
            draws = np.stack([
                np.random.default_rng(
                    (self.schedule.seed, start + row, transfer_index)
                ).random(policy.max_retries)
                for row in rows])
            delivered = draws >= policy.drop_rate
            reps = np.where(delivered.any(axis=1),
                            delivered.argmax(axis=1), policy.max_retries)
            row_durs = durs[rows]
            delay = np.zeros(len(rows))
            for k in range(int(reps.max()) if len(reps) else 0):
                # Same association as the scalar loop: timeout term
                # (python-float scalar) plus the replayed transfer,
                # added onto the running delay.
                term = policy.timeout_s * policy.backoff ** k
                delay = np.where(reps > k, delay + (term + row_durs),
                                 delay)
            delays[rows] = delay
            replays[rows] = reps
        return delays, replays

    # ----- reporting --------------------------------------------------------

    def record_iteration(self, state: IterationFaults) -> None:
        """Mirror one iteration's fault state into telemetry (enabled
        registries only; pure counter writes, no RNG interaction)."""
        registry = get_registry()
        if not registry.enabled or not state.degraded:
            return
        registry.counter("sim_fault_degraded_iterations_total").inc()
        for label in state.active:
            # "crash-restart" -> "crash": keep label cardinality tiny.
            kind = label.split("-")[0]
            registry.counter("sim_faults_active_total", kind=kind).inc()
        if state.stall_s > 0:
            registry.counter("sim_fault_stall_s_total").inc(state.stall_s)

    def summary(self) -> str:
        """One-line post-run summary for the CLI."""
        return (f"faults: {self.schedule.describe()}; "
                f"{self.retransmits_injected} retransmits "
                f"(+{self.retransmit_delay_s * 1e3:.1f} ms)")
