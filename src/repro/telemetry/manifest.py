"""Run manifests: what ran, with which configuration, producing what.

A manifest is the provenance record written beside results
(``manifest.json``): the full configuration and its content fingerprint
(the same SHA-256 canonical-JSON digest :mod:`repro.engine.fingerprint`
uses for the simulation cache, so cache entries and manifests are
cross-checkable), the package version, the platform, wall time, and a
metrics snapshot.  ``verify_manifest`` recomputes the fingerprint so a
tampered or hand-edited config is detectable.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from typing import Any, Dict, Optional

from ..errors import ConfigurationError

#: Bump on incompatible manifest layout changes.
MANIFEST_VERSION = 1

#: Default file name, written beside results.
MANIFEST_FILENAME = "manifest.json"


def _config_fingerprint(config: Dict[str, Any]) -> str:
    # Imported lazily: engine pulls in the simulator stack, and telemetry
    # must stay importable from anywhere in the package without cycles.
    from ..engine.fingerprint import digest
    return digest(config)


def build_manifest(command: str, config: Dict[str, Any],
                   wall_time_s: float,
                   metrics: Optional[Dict[str, Any]] = None,
                   results: Optional[Dict[str, Any]] = None,
                   trace: Optional[Dict[str, Any]] = None,
                   ) -> Dict[str, Any]:
    """Assemble a manifest dict.

    Args:
        command: What ran (e.g. ``"experiment all"``).
        config: The full, JSON-serializable configuration that determined
            the run; its canonical digest becomes ``fingerprint``.
        wall_time_s: End-to-end wall time of the run.
        metrics: A registry ``snapshot()`` (optional).
        results: Per-result provenance, e.g. row counts and content
            digests of each regenerated exhibit (optional).
        trace: Trace-export provenance when the run was traced
            (optional): resolved trace mode (``"event"`` vs.
            ``"reconstructed-batch"``), span/byte totals and the export
            path, so traces are auditable from the manifest.
    """
    from .. import __version__
    if wall_time_s < 0:
        raise ConfigurationError(
            f"wall_time_s must be >= 0, got {wall_time_s}")
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "command": command,
        "config": config,
        "fingerprint": _config_fingerprint(config),
        "package": {"name": "repro", "version": __version__},
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "created_unix_s": round(time.time(), 3),
        "wall_time_s": wall_time_s,
        "metrics": metrics if metrics is not None else {},
        "results": results if results is not None else {},
    }
    if trace is not None:
        manifest["trace"] = trace
    return manifest


def verify_manifest(manifest: Dict[str, Any]) -> bool:
    """Whether ``fingerprint`` matches a recomputed config digest."""
    try:
        return (_config_fingerprint(manifest["config"])
                == manifest["fingerprint"])
    except (KeyError, TypeError, ValueError):
        return False


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Write atomically (temp file + rename), like the result cache."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def read_manifest(path: str) -> Dict[str, Any]:
    """Load a manifest; raises :class:`ConfigurationError` on bad JSON."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read manifest {path!r}: {exc}")
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"manifest {path!r} is not a JSON object")
    return payload
