"""Terminal and markdown rendering of telemetry metric snapshots.

A snapshot (``repro.telemetry.MetricsRegistry.snapshot()``) is a plain
dict of counters, gauges and histogram summaries; these renderers turn
it into the ``--metrics`` CLI report and a paste-ready markdown table.
Duck-typed on the dict shape so reporting does not import telemetry.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import ConfigurationError

_SECTIONS = ("counters", "gauges", "histograms")


def _check_snapshot(snapshot: Dict[str, Any]) -> None:
    missing = [s for s in _SECTIONS if s not in snapshot]
    if missing:
        raise ConfigurationError(
            f"not a metrics snapshot: missing sections {missing}")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Plain-text metrics report, one metric per line, sorted."""
    _check_snapshot(snapshot)
    lines = ["metrics:"]
    for name, value in sorted(snapshot["counters"].items()):
        lines.append(f"  {name} = {_fmt(value)}")
    for name, value in sorted(snapshot["gauges"].items()):
        lines.append(f"  {name} = {_fmt(value)}")
    for name, summary in sorted(snapshot["histograms"].items()):
        lines.append(
            f"  {name}: count={summary['count']} "
            f"mean={summary['mean']:.6g} p50={summary['p50']:.6g} "
            f"p99={summary['p99']:.6g} max={summary['max']:.6g}")
    if len(lines) == 1:
        lines.append("  (none recorded)")
    return "\n".join(lines)


def metrics_to_markdown(snapshot: Dict[str, Any]) -> str:
    """Markdown tables (scalars, then histogram summaries)."""
    _check_snapshot(snapshot)
    scalars = {**snapshot["counters"], **snapshot["gauges"]}
    lines = []
    if scalars:
        lines += ["| metric | value |", "|---|---|"]
        lines += [f"| `{name}` | {_fmt(value)} |"
                  for name, value in sorted(scalars.items())]
    if snapshot["histograms"]:
        if lines:
            lines.append("")
        lines += ["| histogram | count | mean | p50 | p90 | p99 | max |",
                  "|---|---|---|---|---|---|---|"]
        for name, s in sorted(snapshot["histograms"].items()):
            lines.append(
                f"| `{name}` | {s['count']} | {s['mean']:.6g} | "
                f"{s['p50']:.6g} | {s['p90']:.6g} | {s['p99']:.6g} | "
                f"{s['max']:.6g} |")
    return "\n".join(lines) if lines else "*(no metrics recorded)*"
