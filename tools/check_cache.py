#!/usr/bin/env python
"""End-to-end smoke check of the tiered simulation cache.

``make cache-smoke`` (and the CI job of the same name) runs this tool,
which drives the compact → verify → re-serve roundtrip on a real cache
directory:

* a cold ``repro experiment`` run populates a cache (pack tier) and
  records its exhibit digest in the manifest;
* the same entries are rewritten as a **legacy-era directory** (one
  JSON file per key, no packs) — exactly what a pre-pack checkout
  would have left behind;
* a warm run over the legacy directory must be all cache hits (zero
  re-simulation) with the *identical* exhibit digest;
* ``repro cache compact`` packs the legacy files, ``repro cache
  verify`` must report every entry healthy, and no per-key files may
  remain;
* a second warm run over the now-packed directory must again be all
  hits with the same digest — compaction changed the layout, not one
  byte of any outcome;
* finally a real ``repro serve --cache-preload --cache-mem-mb`` boots
  over the packed directory and its ``/healthz`` must show the hot
  tier warm before any request arrived.

Exits non-zero with one problem per line on stderr, so the make target
fails loudly and the CI log says exactly which guarantee broke.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import urllib.request
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.engine import SimulationCache  # noqa: E402

#: The exhibit the smoke run sweeps: small but simulator-backed, so the
#: cache actually carries outcomes (analytic exhibits would cache
#: nothing).
EXHIBIT = "fig7"

ENV = {**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")}


def _repro(*args: str, timeout: int = 300) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=ENV)


def _manifest(cache_dir: str) -> Dict:
    with open(os.path.join(cache_dir, "manifest.json"),
              encoding="utf-8") as handle:
        return json.load(handle)


def _run_exhibit(cache_dir: str, problems: List[str],
                 label: str) -> Optional[Dict]:
    """One ``repro experiment`` run; returns its manifest."""
    proc = _repro("experiment", EXHIBIT, "--cache", cache_dir)
    if proc.returncode != 0:
        problems.append(f"{label}: experiment exited "
                        f"{proc.returncode}: {proc.stderr.strip()}")
        return None
    return _manifest(cache_dir)


def check_roundtrip(workdir: str) -> List[str]:
    """Drive the compact → verify → re-serve assertions."""
    problems: List[str] = []

    # --- 1. cold run: the ground-truth digest
    cold_dir = os.path.join(workdir, "cold")
    cold = _run_exhibit(cold_dir, problems, "cold run")
    if cold is None:
        return problems
    digest = cold["results"]["exhibits"][EXHIBIT]["digest"]
    if cold["results"]["cache"]["pack"]["entries"] == 0:
        problems.append("cold run packed no entries")

    # --- 2. rebuild those entries as a legacy-era directory
    legacy_dir = os.path.join(workdir, "legacy")
    source = SimulationCache(cold_dir)
    legacy_keys = 0
    os.makedirs(legacy_dir, exist_ok=True)
    for key, payload in source.packs.scan():
        with open(os.path.join(legacy_dir, f"{key}.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(payload, handle)
        legacy_keys += 1
    source.close()
    if legacy_keys == 0:
        problems.append("no pack entries to rebuild as legacy files")
        return problems

    # --- 3. warm run over the legacy layout: all hits, same digest
    warm = _run_exhibit(legacy_dir, problems, "legacy warm run")
    if warm is not None:
        stats = warm["results"]["engine"]
        if stats["cache_misses"] != 0 or stats["cache_hits"] == 0:
            problems.append(
                f"legacy warm run re-simulated: {stats['cache_hits']} "
                f"hits / {stats['cache_misses']} misses")
        warm_digest = warm["results"]["exhibits"][EXHIBIT]["digest"]
        if warm_digest != digest:
            problems.append(
                f"legacy warm digest {warm_digest} != cold {digest}")

    # --- 4. compact, then verify reports everything healthy
    proc = _repro("cache", "compact", "--cache", legacy_dir)
    if proc.returncode != 0:
        problems.append(f"cache compact exited {proc.returncode}: "
                        f"{proc.stderr.strip()}")
    proc = _repro("cache", "verify", "--cache", legacy_dir)
    if proc.returncode != 0:
        problems.append(f"cache verify exited {proc.returncode}:\n"
                        f"{proc.stdout.strip()}")
    leftovers = [n for n in os.listdir(legacy_dir)
                 if n.endswith(".json")
                 and len(n) == 69]  # 64-hex + ".json"
    if leftovers:
        problems.append(f"compact left {len(leftovers)} per-key files")

    # --- 5. re-serve from the packed directory: all hits, same digest
    packed = _run_exhibit(legacy_dir, problems, "packed re-serve run")
    if packed is not None:
        stats = packed["results"]["engine"]
        if stats["cache_misses"] != 0 or stats["cache_pack_hits"] == 0:
            problems.append(
                f"packed re-serve did not hit the pack tier: "
                f"{stats['cache_pack_hits']} pack hits / "
                f"{stats['cache_misses']} misses")
        packed_digest = packed["results"]["exhibits"][EXHIBIT]["digest"]
        if packed_digest != digest:
            problems.append(
                f"post-compaction digest {packed_digest} != "
                f"cold {digest}")

    # --- 6. a real preloaded server boots warm over the packed dir
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache", legacy_dir, "--cache-mem-mb", "16",
         "--cache-preload"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=ENV)
    try:
        base = None
        for _ in range(2):  # preload line, then the listening line
            line = server.stdout.readline()
            if "listening on" in line:
                base = line.strip().rsplit(" ", 1)[-1]
                break
        if base is None:
            problems.append("preloaded server never started listening")
        else:
            with urllib.request.urlopen(base + "/healthz",
                                        timeout=60) as resp:
                health = json.loads(resp.read())
            memory = (health.get("cache") or {}).get("memory") or {}
            if not memory.get("entries"):
                problems.append(
                    f"preloaded server booted with a cold hot tier: "
                    f"{memory}")
    finally:
        server.terminate()
        server.wait(timeout=10)
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 0 when the roundtrip checks out."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch cache directories "
                             "(default: delete them)")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="cache-smoke-")
    try:
        problems = check_roundtrip(workdir)
    finally:
        if args.keep:
            print(f"scratch kept at {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"cache ok: legacy compatibility, compact, verify and a "
              f"preloaded re-serve all byte-stable on {EXHIBIT}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
