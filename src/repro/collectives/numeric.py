"""Numeric collective implementations.

These operate on a list of numpy arrays, one per (simulated) worker, and
execute the *actual step structure* of each algorithm — chunking, ring
neighbours, tree pairings — rather than calling ``np.sum`` and declaring
victory.  That makes them slow but honest: the unit and property tests
verify that ring all-reduce really is step-for-step equivalent to a sum,
and that a non-associative "reduction" (e.g. majority vote) produces
rank-dependent garbage if you force it through a ring — the paper's
Table 1 criterion, demonstrated in code.

The distributed training substrate (:mod:`repro.training`) uses these to
aggregate genuinely compressed gradients.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..errors import CollectiveError

#: Binary reduction operator applied elementwise to two arrays.
ReduceOp = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _check_inputs(arrays: Sequence[np.ndarray]) -> None:
    if len(arrays) == 0:
        raise CollectiveError("collective requires at least one worker")
    shape, dtype = arrays[0].shape, arrays[0].dtype
    for rank, arr in enumerate(arrays):
        if arr.shape != shape:
            raise CollectiveError(
                f"rank {rank} has shape {arr.shape}, rank 0 has {shape}")
        if arr.dtype != dtype:
            raise CollectiveError(
                f"rank {rank} has dtype {arr.dtype}, rank 0 has {dtype}")


def _add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def ring_allreduce(arrays: Sequence[np.ndarray],
                   op: ReduceOp = _add) -> List[np.ndarray]:
    """Ring all-reduce: reduce-scatter then all-gather over a ring.

    Each worker's flat buffer is split into ``p`` chunks.  During
    reduce-scatter step ``s``, rank ``r`` sends chunk ``(r - s) mod p`` to
    rank ``r+1`` and reduces the chunk arriving from ``r-1`` into its own
    buffer.  After ``p-1`` steps each rank owns the fully reduced chunk
    ``(r + 1) mod p``; the all-gather phase circulates those.

    Args:
        arrays: One array per rank (all same shape/dtype).
        op: Binary elementwise reduction; **must be associative and
            commutative** for the result to be rank-independent.  The
            default is addition.  Passing a non-associative op is allowed
            (tests use it to demonstrate why such ops are incompatible
            with all-reduce) but produces order-dependent output.

    Returns:
        One fully reduced array per rank (all equal for associative ops).
    """
    _check_inputs(arrays)
    p = len(arrays)
    if p == 1:
        return [arrays[0].copy()]

    shape = arrays[0].shape
    flats = [np.array(a, copy=True).reshape(-1) for a in arrays]
    n = flats[0].size
    bounds = np.linspace(0, n, p + 1).astype(int)

    def chunk(rank: int, idx: int) -> np.ndarray:
        return flats[rank][bounds[idx]:bounds[idx + 1]]

    # Reduce-scatter: p-1 pipelined steps around the ring.
    for step in range(p - 1):
        # All sends in a step are logically simultaneous; buffer them
        # before applying so rank order cannot leak into the result.
        sends = [(rank, (rank - step) % p, chunk(rank, (rank - step) % p).copy())
                 for rank in range(p)]
        for src, idx, payload in sends:
            dst = (src + 1) % p
            seg = chunk(dst, idx)
            seg[:] = op(seg, payload)

    # All-gather: rank r owns reduced chunk (r + 1) mod p; circulate.
    for step in range(p - 1):
        sends = [(rank, (rank + 1 - step) % p, chunk(rank, (rank + 1 - step) % p).copy())
                 for rank in range(p)]
        for src, idx, payload in sends:
            dst = (src + 1) % p
            chunk(dst, idx)[:] = payload

    return [f.reshape(shape) for f in flats]


def tree_allreduce(arrays: Sequence[np.ndarray],
                   op: ReduceOp = _add) -> List[np.ndarray]:
    """Binary-tree all-reduce: recursive-halving reduce to rank 0, then a
    binomial broadcast.  Works for any world size (odd ranks fold in)."""
    _check_inputs(arrays)
    p = len(arrays)
    buffers = [np.array(a, copy=True) for a in arrays]
    # Reduce phase: pair ranks at stride 1, 2, 4, ...
    stride = 1
    while stride < p:
        for dst in range(0, p, 2 * stride):
            src = dst + stride
            if src < p:
                buffers[dst] = op(buffers[dst], buffers[src])
        stride *= 2
    # Broadcast phase.
    result = buffers[0]
    return [result.copy() for _ in range(p)]


def allgather(arrays: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
    """All-gather: every rank receives every rank's buffer, in rank order.

    Unlike all-reduce, per-rank received volume grows linearly with the
    world size — the scalability cliff of non-all-reducible compressors.
    Buffers may have *different shapes* (Top-K selects different indices
    per rank), which is precisely why these methods cannot use all-reduce.
    """
    if len(arrays) == 0:
        raise CollectiveError("collective requires at least one worker")
    gathered = [np.array(a, copy=True) for a in arrays]
    return [[g.copy() for g in gathered] for _ in range(len(arrays))]


def reduce_scatter(arrays: Sequence[np.ndarray],
                   op: ReduceOp = _add) -> List[np.ndarray]:
    """Reduce-scatter: rank ``r`` ends up with the reduced ``r``-th chunk."""
    _check_inputs(arrays)
    p = len(arrays)
    n = arrays[0].reshape(-1).size
    bounds = np.linspace(0, n, p + 1).astype(int)
    flats = [np.array(a, copy=True).reshape(-1) for a in arrays]
    out: List[np.ndarray] = []
    for rank in range(p):
        lo, hi = bounds[rank], bounds[rank + 1]
        acc = flats[0][lo:hi].copy()
        for other in range(1, p):
            acc = op(acc, flats[other][lo:hi])
        out.append(acc)
    return out


def broadcast(arrays: Sequence[np.ndarray], root: int = 0) -> List[np.ndarray]:
    """Broadcast the root's buffer to every rank."""
    _check_inputs(arrays)
    if not 0 <= root < len(arrays):
        raise CollectiveError(
            f"root {root} out of range for {len(arrays)} ranks")
    return [arrays[root].copy() for _ in arrays]


def parameter_server_reduce(arrays: Sequence[np.ndarray],
                            op: ReduceOp = _add) -> List[np.ndarray]:
    """Parameter-server aggregation: reduce sequentially at a central
    server (rank 0), then send the result back to everyone."""
    _check_inputs(arrays)
    acc = np.array(arrays[0], copy=True)
    for a in arrays[1:]:
        acc = op(acc, a)
    return [acc.copy() for _ in arrays]


def is_allreduce_safe(op: ReduceOp, probe: Sequence[np.ndarray],
                      atol: float = 1e-6) -> bool:
    """Empirically check whether ``op`` commutes with ring restructuring.

    Runs the op through ring, tree and sequential reductions of the probe
    arrays and checks all three agree.  Associative+commutative ops pass;
    majority-vote style ops generally fail — the executable version of the
    paper's Table 1 column.
    """
    ring = ring_allreduce(probe, op)[0]
    tree = tree_allreduce(probe, op)[0]
    seq = parameter_server_reduce(probe, op)[0]
    return (np.allclose(ring, tree, atol=atol)
            and np.allclose(ring, seq, atol=atol))
