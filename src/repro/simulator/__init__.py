"""Discrete-event cluster training simulator (the paper's testbed stand-in).

Two execution schemes produce identical results: the per-iteration
event-queue path (:mod:`.ddp`) and the vectorized batch fast path
(:mod:`.batch`); ``DDPSimulator.run(mode=...)`` selects between them.
"""

from .ddp import (
    FALLBACK_REASONS,
    SIM_MODES,
    DDPConfig,
    DDPSimulator,
    TimingResult,
)
from .events import EventQueue

# batch.py pulls repro.core (for the pipeline recurrence), which in turn
# imports this package; importing it after the ddp names above are bound
# keeps that cycle harmless in either entry order.
from .batch import run_batch  # noqa: E402
from .export import (
    allocate_track_ids,
    events_to_chrome_json,
    run_to_events,
    trace_to_chrome_json,
    trace_to_events,
    tracer_spans_to_events,
    traces_to_events,
    write_chrome_trace,
    write_run_trace,
    write_trace_spans,
)
from .reconstruct import reconstruct_traces
from .trace import (
    COMM_STREAM,
    COMPUTE_STREAM,
    IterationTrace,
    Span,
    estimate_gamma,
)

__all__ = [
    "EventQueue", "Span", "IterationTrace", "estimate_gamma",
    "COMPUTE_STREAM", "COMM_STREAM",
    "DDPConfig", "DDPSimulator", "TimingResult",
    "SIM_MODES", "FALLBACK_REASONS", "run_batch",
    "trace_to_events", "traces_to_events", "run_to_events",
    "allocate_track_ids", "events_to_chrome_json",
    "trace_to_chrome_json", "write_chrome_trace", "write_run_trace",
    "tracer_spans_to_events", "write_trace_spans", "reconstruct_traces",
]
