"""The advisor's vectorized Pareto sweep against a brute-force oracle.

:func:`repro.analysis.pareto_mask` is one lexsort plus grouped prefix
minima; the oracle here is the O(n²) definition applied literally.
Randomized inputs cover ties, duplicates, and degenerate shapes, and
the shard-merge property (``Pareto(S₁ ∪ S₂) = Pareto(Pareto(S₁) ∪
Pareto(S₂))``) is exercised over random partitions — that identity is
what makes the sharded sweep's merged frontier exact.
"""

import numpy as np
import pytest

from repro.analysis import merge_frontiers, pareto_mask
from repro.errors import ConfigurationError


def brute_force_mask(times, errors):
    """The O(n²) definition: a point survives iff nothing dominates it.

    ``a`` dominates ``b`` iff both coordinates are <= and at least one
    is strict — exact duplicates never dominate each other.
    """
    t = np.asarray(times, dtype=float)
    e = np.asarray(errors, dtype=float)
    n = t.size
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if t[j] <= t[i] and e[j] <= e[i] \
                    and (t[j] < t[i] or e[j] < e[i]):
                mask[i] = False
                break
    return mask


class TestParetoMask:
    def test_empty(self):
        mask = pareto_mask(np.zeros(0), np.zeros(0))
        assert mask.shape == (0,)
        assert mask.dtype == bool

    def test_single_point_survives(self):
        assert pareto_mask(np.array([3.0]), np.array([0.5])).tolist() \
            == [True]

    def test_all_dominated_by_one(self):
        t = np.array([1.0, 2.0, 3.0, 4.0])
        e = np.array([0.0, 0.1, 0.2, 0.3])
        mask = pareto_mask(t, e)
        # (1.0, 0.0) dominates everything else.
        assert mask.tolist() == [True, False, False, False]

    def test_chain_no_domination(self):
        # Strictly decreasing error as time grows: nothing dominated.
        t = np.array([1.0, 2.0, 3.0])
        e = np.array([0.9, 0.5, 0.1])
        assert pareto_mask(t, e).all()

    def test_duplicates_all_survive(self):
        t = np.array([1.0, 1.0, 1.0, 2.0])
        e = np.array([0.2, 0.2, 0.2, 0.1])
        mask = pareto_mask(t, e)
        assert mask.tolist() == [True, True, True, True]

    def test_duplicates_all_dominated_together(self):
        t = np.array([2.0, 2.0, 1.0])
        e = np.array([0.5, 0.5, 0.1])
        mask = pareto_mask(t, e)
        assert mask.tolist() == [False, False, True]

    def test_tie_on_one_axis_only(self):
        # Same time, different error: only the lower error survives.
        t = np.array([1.0, 1.0])
        e = np.array([0.3, 0.2])
        assert pareto_mask(t, e).tolist() == [False, True]
        # Same error, different time: only the faster survives.
        t = np.array([2.0, 1.0])
        e = np.array([0.3, 0.3])
        assert pareto_mask(t, e).tolist() == [False, True]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_mask(np.zeros(3), np.zeros(4))
        with pytest.raises(ConfigurationError):
            pareto_mask(np.zeros((2, 2)), np.zeros((2, 2)))

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        t = rng.uniform(0, 10, size=n)
        e = rng.uniform(0, 1, size=n)
        assert (pareto_mask(t, e) == brute_force_mask(t, e)).all()

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_with_heavy_ties(self, seed):
        # Quantized coordinates force many exact ties and duplicates.
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(1, 150))
        t = rng.integers(0, 6, size=n).astype(float)
        e = rng.integers(0, 6, size=n).astype(float)
        assert (pareto_mask(t, e) == brute_force_mask(t, e)).all()


class TestMergeFrontiers:
    def test_empty_input(self):
        assert merge_frontiers([]).shape == (0,)

    @pytest.mark.parametrize("seed", range(8))
    def test_shard_merge_equals_global(self, seed):
        """Per-shard Pareto then merge == one global sweep, for random
        partitions into random shard counts."""
        rng = np.random.default_rng(2000 + seed)
        n = int(rng.integers(2, 300))
        t = rng.integers(0, 20, size=n).astype(float) / 4
        e = rng.integers(0, 20, size=n).astype(float) / 4
        global_mask = pareto_mask(t, e)
        global_front = sorted(zip(t[global_mask], e[global_mask]))

        shards = int(rng.integers(1, 8))
        assignment = rng.integers(0, shards, size=n)
        reduced = []
        for s in range(shards):
            idx = np.flatnonzero(assignment == s)
            if idx.size == 0:
                continue
            keep = pareto_mask(t[idx], e[idx])
            reduced.append((t[idx][keep], e[idx][keep]))
        merged_mask = merge_frontiers(reduced)
        mt = np.concatenate([r[0] for r in reduced])
        me = np.concatenate([r[1] for r in reduced])
        merged_front = sorted(zip(mt[merged_mask], me[merged_mask]))
        assert merged_front == global_front

    def test_merge_keeps_cross_shard_duplicates(self):
        # The same frontier point in two shards survives twice.
        a = (np.array([1.0]), np.array([0.5]))
        b = (np.array([1.0]), np.array([0.5]))
        assert merge_frontiers([a, b]).tolist() == [True, True]
