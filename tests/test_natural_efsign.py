"""Natural compression and EF-signSGD."""

import numpy as np
import pytest

from repro.compression import (
    EFSignCompressor,
    EFSignScheme,
    NaturalCompressor,
    NaturalScheme,
    make_aggregator,
)
from repro.models import get_model


class TestNaturalCompression:
    def test_decoded_values_are_signed_powers_of_two(self, rng):
        codec = NaturalCompressor(seed=0)
        g = rng.normal(size=200)
        decoded = codec.decode(codec.encode(g))
        nonzero = decoded[decoded != 0]
        exponents = np.log2(np.abs(nonzero))
        np.testing.assert_allclose(exponents, np.round(exponents),
                                   atol=1e-12)

    def test_unbiased(self, rng):
        codec = NaturalCompressor(seed=0)
        g = rng.normal(size=64)
        mean = np.mean([codec.decode(codec.encode(g))
                        for _ in range(500)], axis=0)
        np.testing.assert_allclose(mean, g, atol=0.2)

    def test_within_factor_two(self, rng):
        # Rounding to a neighbouring power of two never changes the
        # magnitude by more than 2x.
        codec = NaturalCompressor(seed=0)
        g = rng.normal(size=500)
        decoded = codec.decode(codec.encode(g))
        nz = g != 0
        ratio = np.abs(decoded[nz]) / np.abs(g[nz])
        assert np.all(ratio <= 2.0 + 1e-9)
        assert np.all(ratio >= 0.5 - 1e-9)

    def test_zeros_preserved(self):
        codec = NaturalCompressor()
        g = np.array([0.0, 1.0, 0.0, -2.0])
        decoded = codec.decode(codec.encode(g))
        assert decoded[0] == 0.0 and decoded[2] == 0.0

    def test_sign_preserved(self, rng):
        codec = NaturalCompressor(seed=0)
        g = rng.normal(size=100)
        decoded = codec.decode(codec.encode(g))
        nz = g != 0
        np.testing.assert_array_equal(np.sign(decoded[nz]), np.sign(g[nz]))

    def test_ratio_about_3_5x(self, rng):
        ratio = NaturalCompressor().compression_ratio(rng.normal(size=800))
        assert ratio == pytest.approx(32 / 9, rel=0.01)

    def test_scheme_cost(self):
        rn50 = get_model("resnet50")
        cost = NaturalScheme().cost(rn50, 16)
        assert cost.compression_ratio(rn50) == pytest.approx(32 / 9,
                                                             rel=0.01)
        assert not cost.all_reducible


class TestEFSign:
    def test_decode_is_scaled_signs(self, rng):
        codec = EFSignCompressor()
        g = rng.normal(size=300)
        decoded = codec.decode(codec.encode(g))
        scale = np.abs(g).mean()
        assert set(np.round(np.unique(np.abs(decoded)) / scale, 9)) == {1.0}
        np.testing.assert_array_equal(np.sign(decoded),
                                      np.where(g >= 0, 1.0, -1.0))

    def test_aggregator_has_error_feedback(self, rng):
        agg = make_aggregator("efsignsgd", 3)
        assert agg.error_feedback is not None
        grads = [rng.normal(size=(6, 6)) for _ in range(3)]
        result = agg.step(grads)
        assert result.collective == "allgather"

    def test_ef_recovers_mean_over_time(self, rng):
        # Scaled signs + EF: cumulative updates track the true gradient
        # (the EF-signSGD convergence mechanism), unlike raw signSGD.
        agg = make_aggregator("efsignsgd", 2)
        target = rng.normal(size=(5, 5))
        total = np.zeros_like(target)
        steps = 300
        for _ in range(steps):
            total += agg.step([target, target]).update
        np.testing.assert_allclose(total / steps, target, rtol=0.25,
                                   atol=0.15)

    def test_trains(self):
        from repro.training import gaussian_blobs, train_with_method
        ds = gaussian_blobs(256, 8, 3, seed=6)
        history = train_with_method(ds, "efsignsgd", num_workers=4,
                                    steps=120, lr=0.1, seed=6)
        assert history.final_accuracy > 0.9

    def test_scheme_wire_matches_signsgd_plus_scale(self):
        rn50 = get_model("resnet50")
        from repro.compression import SignSGDScheme
        ef = EFSignScheme().cost(rn50, 16).wire_bytes
        sign = SignSGDScheme().cost(rn50, 16).wire_bytes
        assert ef == pytest.approx(sign + 4)
