"""ResNet model specs (He et al., 2016), built layer-by-layer.

The builders mirror the torchvision bottleneck ResNets for 224x224
ImageNet inputs: a 7x7 stem, four stages of bottleneck blocks (stride-2 at
the entry of stages 2-4, applied at the 3x3 convolution), and a final
1000-way classifier.  Parameter counts come out at 25.6 M for ResNet-50
(97 MB fp32) and 44.5 M for ResNet-101 (170 MB) — the sizes the paper
quotes.

Only metadata is produced (see :mod:`repro.models.layers`); nothing here
allocates weights.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import FLOAT32_BYTES
from .flops import conv2d_flops, linear_flops, norm_flops, pool_flops
from .layers import LayerSpec, ModelSpec

#: Bottleneck expansion factor (output channels = 4x bottleneck width).
EXPANSION = 4

#: Stage configurations: blocks per stage for each published depth.
STAGE_BLOCKS = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}


def _conv(name: str, cin: int, cout: int, kernel: int,
          out_hw: int) -> LayerSpec:
    """A conv layer: weight ``(cout, cin, k, k)``, matrix view
    ``(cout, cin*k*k)`` — the reshape the paper describes for low-rank
    compression of 4D kernels."""
    return LayerSpec(
        name=name,
        kind="conv",
        param_shape=(cout, cin, kernel, kernel),
        matrix_shape=(cout, cin * kernel * kernel),
        fwd_flops_per_sample=conv2d_flops(cin, cout, kernel, out_hw, out_hw),
        activation_bytes_per_sample=cout * out_hw * out_hw * FLOAT32_BYTES,
    )


def _bn(name: str, channels: int, out_hw: int) -> LayerSpec:
    """BatchNorm: 2*C affine parameters, no low-rank matrix view."""
    return LayerSpec(
        name=name,
        kind="norm",
        extra_params=2 * channels,
        fwd_flops_per_sample=norm_flops(channels, out_hw * out_hw),
        activation_bytes_per_sample=channels * out_hw * out_hw * FLOAT32_BYTES,
    )


def _bottleneck(prefix: str, cin: int, width: int, stride: int,
                in_hw: int) -> Tuple[List[LayerSpec], int, int]:
    """Build one bottleneck block.

    Returns the block's layers, its output channel count and output
    spatial size.  The stride is applied at the 3x3 convolution
    (torchvision convention).
    """
    out_hw = in_hw // stride
    cout = width * EXPANSION
    layers = [
        _conv(f"{prefix}.conv1", cin, width, 1, in_hw),
        _bn(f"{prefix}.bn1", width, in_hw),
        _conv(f"{prefix}.conv2", width, width, 3, out_hw),
        _bn(f"{prefix}.bn2", width, out_hw),
        _conv(f"{prefix}.conv3", width, cout, 1, out_hw),
        _bn(f"{prefix}.bn3", cout, out_hw),
    ]
    if stride != 1 or cin != cout:
        layers.append(_conv(f"{prefix}.downsample.conv", cin, cout, 1, out_hw))
        layers.append(_bn(f"{prefix}.downsample.bn", cout, out_hw))
    return layers, cout, out_hw


def build_resnet(depth: int, num_classes: int = 1000,
                 input_hw: int = 224) -> ModelSpec:
    """Build a bottleneck ResNet spec of the given published depth.

    Args:
        depth: 50, 101 or 152.
        num_classes: Classifier width (1000 for ImageNet).
        input_hw: Input spatial resolution; must be divisible by 32.

    Raises:
        ConfigurationError: on unsupported depth or resolution.
    """
    if depth not in STAGE_BLOCKS:
        raise ConfigurationError(
            f"unsupported ResNet depth {depth}; choose from "
            f"{sorted(STAGE_BLOCKS)}")
    if input_hw % 32 != 0 or input_hw <= 0:
        raise ConfigurationError(
            f"input_hw must be a positive multiple of 32, got {input_hw}")

    layers: List[LayerSpec] = []
    hw = input_hw // 2  # stem conv is stride 2
    layers.append(_conv("conv1", 3, 64, 7, hw))
    layers.append(_bn("bn1", 64, hw))
    hw //= 2  # 3x3 max-pool, stride 2
    layers.append(LayerSpec(
        name="maxpool", kind="pool",
        fwd_flops_per_sample=pool_flops(64, hw, hw, 3),
        activation_bytes_per_sample=64 * hw * hw * FLOAT32_BYTES,
    ))

    cin = 64
    for stage_idx, num_blocks in enumerate(STAGE_BLOCKS[depth]):
        width = 64 * (2 ** stage_idx)
        for block_idx in range(num_blocks):
            stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
            block, cin, hw = _bottleneck(
                f"layer{stage_idx + 1}.{block_idx}", cin, width, stride, hw)
            layers.extend(block)

    layers.append(LayerSpec(
        name="avgpool", kind="pool",
        fwd_flops_per_sample=pool_flops(cin, 1, 1, hw),
        activation_bytes_per_sample=cin * FLOAT32_BYTES,
    ))
    layers.append(LayerSpec(
        name="fc", kind="linear",
        param_shape=(num_classes, cin),
        matrix_shape=(num_classes, cin),
        extra_params=num_classes,
        fwd_flops_per_sample=linear_flops(cin, num_classes),
        activation_bytes_per_sample=num_classes * FLOAT32_BYTES,
    ))

    return ModelSpec(
        name=f"resnet{depth}",
        layers=tuple(layers),
        default_batch_size=64,
        sample_description=f"{input_hw}x{input_hw} RGB image (ImageNet)",
        # Calibrated against the paper's V100 measurements: ResNet-50
        # backward at per-GPU batch 64 is ~122 ms (Table 2 discussion).
        compute_efficiency=1.0,
        batch_half_saturation=16.0,
        gather_granularity="layer",
    )


def resnet50(**kwargs) -> ModelSpec:
    """ResNet-50: 25.6 M parameters, 97 MB fp32 gradient."""
    return build_resnet(50, **kwargs)


def resnet101(**kwargs) -> ModelSpec:
    """ResNet-101: 44.5 M parameters, 170 MB fp32 gradient."""
    return build_resnet(101, **kwargs)


def resnet152(**kwargs) -> ModelSpec:
    """ResNet-152: 60.2 M parameters, 230 MB fp32 gradient."""
    return build_resnet(152, **kwargs)
