"""Extension experiment: wall-clock to accuracy, end to end.

The paper's analysis stops at per-iteration time and flags accuracy as
future work (§7).  This experiment closes the loop *within one
consistent workload*: the numeric training substrate trains an MLP
data-parallel through the real compressors, while the performance model
prices each iteration of **the same MLP architecture** (via
:func:`repro.models.mlp_model`) on a simulated cluster.  Multiplying the
two yields loss-vs-wall-clock trajectories, from which we read the time
each method needs to reach a target loss.

The synthesis of the whole paper falls out of it:

* on a **slow network** (~1 Gbit/s), compression wins wall-clock-to-
  accuracy despite needing a few extra iterations;
* on a **datacenter network** (>= 10 Gbit/s), dense syncSGD (or fp16)
  wins — the per-iteration savings no longer cover the encode cost and
  the statistical penalty;
* signSGD has the cheapest iterations of all but *plateaus above the
  target loss* — the accuracy cost the paper says its timing analysis is
  generous about.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression import make_scheme
from ..core.accuracy import steps_to_loss
from ..core.perf_model import PerfModelInputs, predict
from ..errors import ConfigurationError
from ..models import ModelSpec, mlp_model
from ..training import gaussian_blobs, train_with_method
from ..units import gbps_to_bytes_per_s
from .runner import ExperimentResult

#: (method, aggregator params, scheme params, learning rate).
EXT_TTA_METHODS: Tuple[Tuple[str, Dict, Dict, float], ...] = (
    ("syncsgd", {}, {}, 0.2),
    ("fp16", {}, {}, 0.2),
    ("powersgd", {"rank": 2}, {"rank": 2}, 0.2),
    ("topk", {"fraction": 0.05}, {"fraction": 0.05}, 0.2),
    ("signsgd", {}, {}, 0.01),
)

#: MLP sized so communication is non-trivial but the numeric pure-Python
#: collectives still run in seconds.
EXT_TTA_HIDDEN: Tuple[int, ...] = (256, 256)
EXT_TTA_FEATURES = 128
EXT_TTA_CLASSES = 8


def _workload_spec() -> ModelSpec:
    """ModelSpec matching the trained MLP architecture exactly."""
    return mlp_model("ext-tta-mlp", EXT_TTA_FEATURES, EXT_TTA_HIDDEN,
                     EXT_TTA_CLASSES, default_batch_size=32)


def run_ext_tta(bandwidths_gbps: Sequence[float] = (1.0, 10.0),
                num_workers: int = 8, steps: int = 120,
                batch_size: int = 32, target_loss: float = 0.2,
                seed: int = 0) -> ExperimentResult:
    """Wall-clock-to-target-loss per method and bandwidth.

    The trained MLP uses ``num_workers`` logical workers; the simulated
    cluster prices the same worker count (the nearest 4-GPU-node
    multiple).
    """
    if steps < 10:
        raise ConfigurationError(f"steps must be >= 10, got {steps}")
    spec = _workload_spec()
    dataset = gaussian_blobs(
        num_samples=2048, num_features=EXT_TTA_FEATURES,
        num_classes=EXT_TTA_CLASSES, spread=1.2, seed=seed)

    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    for method, agg_params, scheme_params, lr in EXT_TTA_METHODS:
        agg_name = "fp32" if method == "syncsgd" else method
        history = train_with_method(
            dataset, agg_name, agg_params or None,
            hidden_dims=EXT_TTA_HIDDEN, num_workers=num_workers,
            steps=steps, batch_size=batch_size, lr=lr, seed=seed)
        reached = steps_to_loss(history.losses, target_loss)
        # "Reaching" a target means getting there and *staying*: a method
        # that touches the target transiently and then diverges (signSGD's
        # fixed-magnitude updates oscillate near optima) has not reached it.
        end_loss = float(np.mean(history.losses[-10:]))
        if reached is not None and end_loss > target_loss:
            notes.append(
                f"{method} touched loss {target_loss} at step {reached} "
                f"but diverged (end-of-run loss {end_loss:.2f})")
            reached = None
        elif reached is None:
            notes.append(
                f"{method} did not reach loss {target_loss} in "
                f"{steps} steps")
        scheme = make_scheme(method if method != "syncsgd" else "syncsgd",
                             **scheme_params)
        for gbps in bandwidths_gbps:
            inputs = PerfModelInputs(
                world_size=num_workers,
                bandwidth_bytes_per_s=gbps_to_bytes_per_s(gbps),
                batch_size=batch_size)
            iteration_s = predict(spec, scheme, inputs).total
            rows.append({
                "method": method,
                "bandwidth_gbps": gbps,
                "iteration_ms": iteration_s * 1e3,
                "steps_to_target": (reached if reached is not None
                                    else float("nan")),
                "wallclock_to_target_s": (
                    reached * iteration_s if reached is not None
                    else float("inf")),
                "final_accuracy": history.final_accuracy,
            })
    return ExperimentResult(
        experiment_id="ext-tta",
        title=(f"Wall-clock to loss {target_loss} "
               f"({num_workers} workers, MLP "
               f"{EXT_TTA_FEATURES}-{'-'.join(map(str, EXT_TTA_HIDDEN))}"
               f"-{EXT_TTA_CLASSES})"),
        columns=("method", "bandwidth_gbps", "iteration_ms",
                 "steps_to_target", "wallclock_to_target_s",
                 "final_accuracy"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
