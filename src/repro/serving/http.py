"""Stdlib HTTP+JSON front end for the serving scheduler.

One ``ThreadingHTTPServer`` (a thread per connection — fine, because
request threads only parse, enqueue, and wait; all engine work happens
on the scheduler's single batch thread) exposing:

* ``POST /v1/whatif``   — price a cluster config (ranked advisor
  recommendation; synchronous by default);
* ``POST /v1/advise``   — the auto-advisor's sharded Pareto sweep
  (synchronous by default; serving-sized grid unless the client asks
  for more);
* ``POST /v1/simulate`` — run simulations (asynchronous by default,
  ``202`` + job id);
* ``GET /v1/jobs/<id>`` — poll a submitted request (``?wait_s=N``
  long-polls until terminal or the wait expires);
* ``GET /metrics``      — Prometheus text exposition 0.0.4 of the
  process registry (scheduler + engine + cache series);
* ``GET /healthz``      — liveness plus scheduler counters.

Errors are structured JSON — ``{"error": {"code", "message"}}`` — with
the HTTP status carrying the class (400 bad request, 404 unknown job,
413 oversized body, 429 over quota with a ``Retry-After`` header, 503
queue full).  No dependency beyond the standard library.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigurationError, ReproError
from ..telemetry.logs import get_logger
from ..telemetry.metrics import get_registry, render_prometheus
from .quota import AdmissionError
from .requests import parse_request
from .scheduler import ServingScheduler

#: Largest accepted request body; anything bigger is rejected 413.
MAX_BODY_BYTES = 1 << 20

#: Request state -> HTTP status for synchronous (waited) responses.
_STATE_STATUS = {"done": 200, "failed": 500, "expired": 504,
                 "queued": 202, "running": 202}


class ServingHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's scheduler."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def scheduler(self) -> ServingScheduler:
        """The scheduler attached by :func:`make_server`."""
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route per-request access logs to the structured logger at
        debug level instead of BaseHTTPRequestHandler's raw stderr."""
        get_logger("serving.http").debug(format % args)

    # ----- responses ---------------------------------------------------------

    def _send_json(self, status: int, body: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        payload = (json.dumps(body, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, status: int, code: str, message: str,
                         retry_after_s: Optional[float] = None) -> None:
        error: Dict[str, Any] = {"code": code, "message": message}
        headers = {}
        if retry_after_s is not None:
            error["retry_after_s"] = retry_after_s
            headers["Retry-After"] = str(max(1, int(round(retry_after_s))))
        self._send_json(status, {"error": error}, headers=headers)

    # ----- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """``/healthz``, ``/metrics``, and ``/v1/jobs/<id>``."""
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._send_json(200, {"status": "ok",
                                      **self.scheduler.stats()})
            elif parsed.path == "/metrics":
                text = render_prometheus(get_registry().snapshot())
                payload = text.encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
            elif parsed.path.startswith("/v1/jobs/"):
                self._get_job(parsed)
            else:
                self._send_error_json(404, "not_found",
                                      f"no route {parsed.path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, "internal",
                                  f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """``/v1/whatif``, ``/v1/advise``, and ``/v1/simulate``
        submissions."""
        parsed = urlparse(self.path)
        routes = {"/v1/whatif": "whatif", "/v1/simulate": "simulate",
                  "/v1/advise": "advise"}
        try:
            kind = routes.get(parsed.path)
            if kind is None:
                self._send_error_json(404, "not_found",
                                      f"no route {parsed.path!r}")
                return
            body, error = self._read_json_body()
            if error is not None:
                return
            self._submit(kind, body)
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, "internal",
                                  f"{type(exc).__name__}: {exc}")

    # ----- handlers ----------------------------------------------------------

    def _read_json_body(self) -> Tuple[Any, Optional[str]]:
        """Read and decode the request body, emitting the error response
        itself (returning ``(None, reason)``) when it is unusable."""
        length = self.headers.get("Content-Length")
        try:
            n = int(length) if length is not None else 0
        except ValueError:
            self._send_error_json(400, "bad_request",
                                  f"bad Content-Length {length!r}")
            return None, "bad length"
        if n > MAX_BODY_BYTES:
            # Drain (bounded) so a client mid-write sees the 413
            # instead of a connection reset; anything truly huge gets
            # the reset, and either way this connection is done.
            remaining = min(n, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._send_error_json(
                413, "too_large",
                f"body of {n} bytes exceeds {MAX_BODY_BYTES}")
            return None, "too large"
        raw = self.rfile.read(n) if n else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}"), None
        except (UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, "bad_request",
                                  f"body is not valid JSON: {exc}")
            return None, "bad json"

    def _submit(self, kind: str, body: Any) -> None:
        tenant = self.headers.get("X-Tenant", "default")
        try:
            request = parse_request(kind, body)
        except ConfigurationError as exc:
            self._send_error_json(400, "bad_request", str(exc))
            return
        try:
            state = self.scheduler.submit(request, tenant=tenant)
        except AdmissionError as exc:
            self._send_error_json(exc.status, exc.reason, str(exc),
                                  retry_after_s=exc.retry_after_s)
            return
        if request.wait:
            state = self.scheduler.wait(state.id,
                                        timeout_s=request.timeout_s or
                                        self.scheduler.default_timeout_s)
        self._send_json(_STATE_STATUS.get(state.status, 200),
                        state.to_dict())

    def _get_job(self, parsed: Any) -> None:
        job_id = parsed.path[len("/v1/jobs/"):]
        query = parse_qs(parsed.query)
        state = self.scheduler.get(job_id)
        if state is None:
            self._send_error_json(404, "not_found",
                                  f"unknown job {job_id!r}")
            return
        wait_values = query.get("wait_s")
        if wait_values:
            try:
                wait_s = min(float(wait_values[0]), 300.0)
            except ValueError:
                self._send_error_json(400, "bad_request",
                                      f"bad wait_s {wait_values[0]!r}")
                return
            state = self.scheduler.wait(job_id, timeout_s=wait_s)
        self._send_json(200, state.to_dict())


class ServingHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying its scheduler.

    ``daemon_threads`` so in-flight connections never block process
    exit; ``allow_reuse_address`` for fast restarts behind a load
    balancer's health checks.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 scheduler: ServingScheduler):
        """Bind to ``address`` and attach ``scheduler`` for handlers."""
        super().__init__(address, ServingHandler)
        self.scheduler = scheduler


def make_server(scheduler: ServingScheduler, host: str = "127.0.0.1",
                port: int = 0) -> ServingHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port; read the
    actual one from ``server.server_address``)."""
    try:
        return ServingHTTPServer((host, port), scheduler)
    except OSError as exc:
        raise ReproError(f"cannot bind {host}:{port}: {exc}")
