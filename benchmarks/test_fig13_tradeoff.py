"""Figure 13: cutting encode time beats raising compression ratio."""

from repro.experiments import run_fig13


def test_fig13_encode_tradeoff(run_once, show):
    result = run_once(run_fig13)
    show(result, "{:.3f}")

    for model in ("resnet50", "resnet101", "bert-base"):
        rows = result.select(model=model)
        by_kl = {(r["k"], r["l"]): r["predicted_ms"] for r in rows}

        # The figure's conclusion: at every size penalty l, any encode
        # cut (k > 1) helps relative to no cut, even though the payload
        # grows by l*k.
        for l in (1.0, 2.0, 3.0):
            for k in (2.0, 3.0, 4.0):
                assert by_kl[(k, l)] < by_kl[(1.0, l)], (model, k, l)

        # And deeper cuts keep helping at fixed l = 1.
        assert by_kl[(4.0, 1.0)] < by_kl[(2.0, 1.0)] < by_kl[(1.0, 1.0)]
