"""What-if analyses (§6: Figures 11, 12, 13).

The performance model makes hardware hypotheticals cheap: sweep the
network bandwidth (Figure 11), scale the compute (Figure 12) — which
shrinks both the backward pass *and* the encode/decode time, the paper's
key observation about why faster GPUs favour compression — or trade
encode time against compression ratio for a hypothetical scheme
(Figure 13).

Two evaluation strategies produce byte-identical points:

* the **grid path** (default): the whole sweep goes through one
  broadcasted kernel call in :mod:`repro.core.grid`;
* the **scalar path** (``use_grid=False``): the original one-point-per-
  Python-call loops, kept verbatim as the reference the equivalence
  tests compare against.

Passing ``engine=`` routes the sweep through
:meth:`repro.engine.ExperimentEngine.run_model_outcomes`, which adds
per-point caching and family chunking on top of the same grid kernel —
still byte-identical points.

Crossover estimation comes in two flavours: the historical
:func:`find_crossover_gbps` (linear interpolation between swept points,
bit-compatible with its original output, now built on
:func:`sweep_crossings` so multiple sign changes are detected instead of
silently ignored) and :func:`solve_crossover`, which root-finds the
closed-form model itself with Brent's method — exact to solver
tolerance rather than to the sweep's grid step.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives import allgather_time, ring_allreduce_time
from ..compute import ComputeModel
from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..units import gbps_to_bytes_per_s
from .grid import compressed_time_grid, syncsgd_time_grid, tradeoff_time_grid
from .perf_model import PerfModelInputs, compressed_time, syncsgd_time


@dataclass(frozen=True)
class WhatIfPoint:
    """One sweep point: baseline vs compressed prediction."""

    x: float                   # the swept quantity (Gbit/s, factor, k...)
    syncsgd_s: float
    compressed_s: float

    @property
    def speedup(self) -> float:
        """Fractional speedup of compression (+ helps, - hurts)."""
        return (self.syncsgd_s - self.compressed_s) / self.syncsgd_s


def _engine_sweep(model: ModelSpec, scheme: Scheme, xs: Sequence[float],
                  engine, make_inputs, gpu: GPUSpec,
                  profile: Optional[KernelProfile],
                  compute_factors=None) -> Tuple[WhatIfPoint, ...]:
    """Run a sweep's baseline + compressed evaluations through the
    engine's model-eval path (cached, family-chunked, grid-backed)."""
    from ..engine.modeljobs import ModelEvalJob
    jobs = []
    for i, x in enumerate(xs):
        factor = compute_factors[i] if compute_factors is not None else 1.0
        swept = make_inputs(x)
        jobs.append(ModelEvalJob(model=model, scheme=None, inputs=swept,
                                 gpu=gpu, profile=profile,
                                 compute_factor=factor))
        jobs.append(ModelEvalJob(model=model, scheme=scheme, inputs=swept,
                                 gpu=gpu, profile=profile,
                                 compute_factor=factor))
    outcomes = engine.run_model_outcomes(jobs)
    points: List[WhatIfPoint] = []
    for i, x in enumerate(xs):
        base, comp = outcomes[2 * i], outcomes[2 * i + 1]
        for outcome in (base, comp):
            if outcome.error is not None:
                raise outcome.error
        points.append(WhatIfPoint(x=x, syncsgd_s=base.result.total,
                                  compressed_s=comp.result.total))
    return tuple(points)


def bandwidth_sweep(model: ModelSpec, scheme: Scheme,
                    bandwidths_gbps: Sequence[float],
                    inputs: PerfModelInputs, gpu: GPUSpec = V100,
                    profile: Optional[KernelProfile] = None, *,
                    use_grid: bool = True, engine=None,
                    ) -> Tuple[WhatIfPoint, ...]:
    """Figure 11: vary the network from e.g. 1 to 30 Gbit/s."""
    if engine is not None:
        return _engine_sweep(
            model, scheme, list(bandwidths_gbps), engine,
            lambda g: inputs.with_bandwidth(gbps_to_bytes_per_s(g)),
            gpu, profile)
    if not use_grid:
        points: List[WhatIfPoint] = []
        for gbps in bandwidths_gbps:
            swept = inputs.with_bandwidth(gbps_to_bytes_per_s(gbps))
            base = syncsgd_time(model, swept, gpu).total
            comp = compressed_time(model, scheme, swept, gpu, profile).total
            points.append(WhatIfPoint(x=gbps, syncsgd_s=base,
                                      compressed_s=comp))
        return tuple(points)
    xs = list(bandwidths_gbps)
    bw = np.asarray([gbps_to_bytes_per_s(g) for g in xs], dtype=float)
    base = syncsgd_time_grid(model, inputs, gpu, bandwidth_bytes_per_s=bw)
    comp = compressed_time_grid(model, scheme, inputs, gpu, profile,
                                bandwidth_bytes_per_s=bw)
    return tuple(
        WhatIfPoint(x=gbps, syncsgd_s=float(base.total[i]),
                    compressed_s=float(comp.total[i]))
        for i, gbps in enumerate(xs))


def compute_sweep(model: ModelSpec, scheme: Scheme,
                  compute_factors: Sequence[float],
                  inputs: PerfModelInputs, gpu: GPUSpec = V100,
                  profile: Optional[KernelProfile] = None, *,
                  use_grid: bool = True, engine=None,
                  ) -> Tuple[WhatIfPoint, ...]:
    """Figure 12: scale GPU speed while the network stays fixed.

    Scaling the GPU scales the backward pass *and* the kernel profile, so
    encode/decode shrinks too — the two effects §6 credits for
    compression becoming attractive on faster hardware.
    """
    factors = list(compute_factors)
    for factor in factors:
        if factor <= 0:
            raise ConfigurationError(
                f"compute factors must be > 0, got {factor}")
    if engine is not None:
        return _engine_sweep(model, scheme, factors, engine,
                             lambda _: inputs, gpu, profile,
                             compute_factors=factors)
    if not use_grid:
        prof = profile if profile is not None else v100_kernel_profile()
        points: List[WhatIfPoint] = []
        for factor in factors:
            fast_gpu = gpu.scaled(factor)
            fast_prof = prof.scaled(factor)
            base = syncsgd_time(model, inputs, fast_gpu).total
            comp = compressed_time(model, scheme, inputs, fast_gpu,
                                   fast_prof).total
            points.append(WhatIfPoint(x=factor, syncsgd_s=base,
                                      compressed_s=comp))
        return tuple(points)
    f_arr = np.asarray(factors, dtype=float)
    base = syncsgd_time_grid(model, inputs, gpu, compute_factor=f_arr)
    comp = compressed_time_grid(model, scheme, inputs, gpu, profile,
                                compute_factor=f_arr)
    return tuple(
        WhatIfPoint(x=factor, syncsgd_s=float(base.total[i]),
                    compressed_s=float(comp.total[i]))
        for i, factor in enumerate(factors))


@dataclass(frozen=True)
class TradeoffPoint:
    """Figure-13 grid cell: hypothetical scheme with encode time /k and
    wire size *(l*k), relative to a real base scheme."""

    k: float
    l: float
    predicted_s: float
    syncsgd_s: float

    @property
    def speedup(self) -> float:
        return (self.syncsgd_s - self.predicted_s) / self.syncsgd_s


def tradeoff_time(model: ModelSpec, base_scheme: Scheme, k: float, l: float,
                  inputs: PerfModelInputs, gpu: GPUSpec = V100,
                  profile: Optional[KernelProfile] = None) -> float:
    """Scalar Figure-13 cell: predicted seconds for the hypothetical
    scheme at one ``(k, l)`` (the reference arithmetic the grid kernel
    reproduces; also the engine's per-point evaluation for tradeoff
    jobs)."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if l < 1:
        raise ConfigurationError(f"l must be >= 1, got {l}")
    prof = profile if profile is not None else v100_kernel_profile()
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    t_comp = compute.backward_time(bs)
    p = inputs.world_size
    base_cost = base_scheme.cost(model, p, prof)
    wire = min(base_cost.wire_bytes * l * k,
               float(model.grad_bytes))
    enc = base_cost.encode_decode_s / k
    if p == 1:
        comm = 0.0
    else:
        per_message = wire / base_cost.messages
        if base_cost.all_reducible:
            single = ring_allreduce_time(
                per_message, p, inputs.bandwidth_bytes_per_s,
                inputs.alpha_s)
        else:
            single = allgather_time(
                per_message, p, inputs.bandwidth_bytes_per_s,
                inputs.alpha_s)
        comm = single * base_cost.messages
    return t_comp + enc + comm


def encode_tradeoff_grid(model: ModelSpec, base_scheme: Scheme,
                         ks: Sequence[float], ls: Sequence[float],
                         inputs: PerfModelInputs, gpu: GPUSpec = V100,
                         profile: Optional[KernelProfile] = None, *,
                         use_grid: bool = True, engine=None,
                         ) -> Tuple[TradeoffPoint, ...]:
    """Figure 13: for each ``(k, l)``, price a hypothetical scheme whose
    encode/decode time is the base scheme's divided by ``k`` and whose
    payload is multiplied by ``l*k`` (the paper's example: k=2, l=2 means
    2x faster encode for 4x more data on the wire)."""
    # Replicate the historical validation order: the first bad k wins,
    # then — within the first good k — the first bad l.
    for k in ks:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        for l in ls:
            if l < 1:
                raise ConfigurationError(f"l must be >= 1, got {l}")

    baseline = syncsgd_time(model, inputs, gpu).total
    if engine is not None:
        from ..engine.modeljobs import ModelEvalJob
        jobs = [ModelEvalJob(model=model, scheme=base_scheme, inputs=inputs,
                             gpu=gpu, profile=profile,
                             tradeoff_k=float(k), tradeoff_l=float(l))
                for k in ks for l in ls]
        outcomes = engine.run_model_outcomes(jobs)
        points: List[TradeoffPoint] = []
        index = 0
        for k in ks:
            for l in ls:
                outcome = outcomes[index]
                index += 1
                if outcome.error is not None:
                    raise outcome.error
                points.append(TradeoffPoint(
                    k=k, l=l, predicted_s=outcome.result.total,
                    syncsgd_s=baseline))
        return tuple(points)
    if not use_grid:
        prof = profile if profile is not None else v100_kernel_profile()
        compute = ComputeModel(model, gpu)
        bs = inputs.batch_size or model.default_batch_size
        t_comp = compute.backward_time(bs)
        p = inputs.world_size
        base_cost = base_scheme.cost(model, p, prof)
        points = []
        for k in ks:
            for l in ls:
                wire = min(base_cost.wire_bytes * l * k,
                           float(model.grad_bytes))
                enc = base_cost.encode_decode_s / k
                if p == 1:
                    comm = 0.0
                else:
                    per_message = wire / base_cost.messages
                    if base_cost.all_reducible:
                        single = ring_allreduce_time(
                            per_message, p, inputs.bandwidth_bytes_per_s,
                            inputs.alpha_s)
                    else:
                        single = allgather_time(
                            per_message, p, inputs.bandwidth_bytes_per_s,
                            inputs.alpha_s)
                    comm = single * base_cost.messages
                points.append(TradeoffPoint(
                    k=k, l=l, predicted_s=t_comp + enc + comm,
                    syncsgd_s=baseline))
        return tuple(points)
    k_list, l_list = list(ks), list(ls)
    grid = tradeoff_time_grid(
        model, base_scheme,
        np.asarray(k_list, dtype=float)[:, None],
        np.asarray(l_list, dtype=float)[None, :],
        inputs, gpu, profile)
    return tuple(
        TradeoffPoint(k=k, l=l, predicted_s=float(grid.total[i, j]),
                      syncsgd_s=baseline)
        for i, k in enumerate(k_list) for j, l in enumerate(l_list))


# ----- crossover estimation --------------------------------------------------


@dataclass(frozen=True)
class Crossing:
    """One sign change of the compression speedup along a sweep.

    Attributes:
        x: The swept value at which the speedup crosses zero.
        direction: ``"down"`` when compression stops helping as ``x``
            grows (speedup goes positive → non-positive, the Figure-11
            crossover), ``"up"`` when it starts helping.
    """

    x: float
    direction: str


def sweep_crossings(points: Sequence[WhatIfPoint]) -> Tuple[Crossing, ...]:
    """Every zero crossing of the speedup over a sweep, in ``x`` order.

    Each crossing is located by linear interpolation between the
    neighbouring points (for ``"down"`` crossings, the exact historical
    :func:`find_crossover_gbps` arithmetic — bit-compatible).  A
    non-monotone sweep yields several crossings; the old API silently
    returned the first, this one reports all of them.
    """
    ordered = sorted(points, key=lambda pt: pt.x)
    crossings: List[Crossing] = []
    for prev, curr in zip(ordered, ordered[1:]):
        if prev.speedup > 0 >= curr.speedup:
            span = prev.speedup - curr.speedup
            if span <= 0:
                crossings.append(Crossing(x=curr.x, direction="down"))
                continue
            frac = prev.speedup / span
            crossings.append(Crossing(
                x=prev.x + frac * (curr.x - prev.x), direction="down"))
        elif prev.speedup <= 0 < curr.speedup:
            span = curr.speedup - prev.speedup
            frac = -prev.speedup / span
            crossings.append(Crossing(
                x=prev.x + frac * (curr.x - prev.x), direction="up"))
    return tuple(crossings)


def find_crossover_gbps(points: Sequence[WhatIfPoint]) -> Optional[float]:
    """Bandwidth at which compression stops helping: the first swept
    value where the speedup goes non-positive, linearly interpolated
    between neighbouring points.  ``None`` if compression helps (or
    hurts) across the whole sweep.

    Thin wrapper over :func:`sweep_crossings` preserving the historical
    return value bit for bit; a sweep with more than one sign change now
    raises a ``UserWarning`` instead of being silently truncated to its
    first crossing (use :func:`sweep_crossings` — or
    :func:`solve_crossover` on the model itself — to see all of them).
    """
    crossings = sweep_crossings(points)
    if len(crossings) > 1:
        warnings.warn(
            f"sweep has {len(crossings)} speedup sign changes; "
            f"find_crossover_gbps reports only the first downward one "
            f"(use sweep_crossings for all of them)",
            UserWarning, stacklevel=2)
    for crossing in crossings:
        if crossing.direction == "down":
            return crossing.x
    return None


def _brentq(func: Callable[[float], float], lo: float, hi: float,
            f_lo: float, f_hi: float, xtol: float = 1e-9,
            max_iter: int = 100) -> float:
    """Brent's method on a bracketing interval (classic inverse-quadratic
    / secant / bisection hybrid; ``f_lo`` and ``f_hi`` must have opposite
    signs)."""
    a, b = lo, hi
    fa, fb = f_lo, f_hi
    if abs(fa) < abs(fb):
        a, b, fa, fb = b, a, fb, fa
    c, fc = a, fa
    d = e = b - a
    for _ in range(max_iter):
        if fb == 0.0 or abs(b - a) < xtol:
            return b
        if fa != fc and fb != fc:
            # Inverse quadratic interpolation.
            s = (a * fb * fc / ((fa - fb) * (fa - fc))
                 + b * fa * fc / ((fb - fa) * (fb - fc))
                 + c * fa * fb / ((fc - fa) * (fc - fb)))
        else:
            s = b - fb * (b - a) / (fb - fa)  # secant
        midpoint = (a + b) / 2.0
        use_bisect = (
            not (min(b, midpoint) < s < max(b, midpoint))
            or abs(s - b) >= abs(e) / 2.0)
        if use_bisect:
            s = midpoint
            e = d = b - a
        else:
            e, d = d, s - b
        fs = func(s)
        c, fc = b, fb
        if fa * fs < 0:
            b, fb = s, fs
        else:
            a, fa = s, fs
        if abs(fa) < abs(fb):
            a, b, fa, fb = b, a, fb, fa
    return b


def solve_crossover(model: ModelSpec, scheme: Scheme,
                    inputs: PerfModelInputs,
                    lo_gbps: float, hi_gbps: float,
                    gpu: GPUSpec = V100,
                    profile: Optional[KernelProfile] = None,
                    samples: int = 256,
                    xtol: float = 1e-9) -> Tuple[Crossing, ...]:
    """Exact crossover bandwidths of ``scheme`` vs syncSGD on
    ``[lo_gbps, hi_gbps]``.

    Scans the closed-form speedup ``syncsgd.total - compressed.total``
    on a dense grid (one grid-kernel call over ``samples`` points) to
    bracket every sign change, then polishes each bracket with Brent's
    method on the scalar model — exact to ``xtol`` Gbit/s rather than
    to a sweep's grid step.  Returns all crossings in order; an empty
    tuple means compression helps (or hurts) across the whole range —
    the zero-sign-change case callers must handle explicitly.
    """
    if not lo_gbps < hi_gbps:
        raise ConfigurationError(
            f"need lo_gbps < hi_gbps, got [{lo_gbps}, {hi_gbps}]")
    if lo_gbps <= 0:
        raise ConfigurationError(f"lo_gbps must be > 0, got {lo_gbps}")
    if samples < 2:
        raise ConfigurationError(f"samples must be >= 2, got {samples}")

    def diff(gbps: float) -> float:
        swept = inputs.with_bandwidth(gbps_to_bytes_per_s(gbps))
        return (syncsgd_time(model, swept, gpu).total
                - compressed_time(model, scheme, swept, gpu, profile).total)

    xs = np.linspace(lo_gbps, hi_gbps, samples)
    bw = np.asarray([gbps_to_bytes_per_s(float(g)) for g in xs])
    base = syncsgd_time_grid(model, inputs, gpu, bandwidth_bytes_per_s=bw)
    comp = compressed_time_grid(model, scheme, inputs, gpu, profile,
                                bandwidth_bytes_per_s=bw)
    diffs = base.total - comp.total

    crossings: List[Crossing] = []
    for i in range(len(xs) - 1):
        f_lo, f_hi = float(diffs[i]), float(diffs[i + 1])
        if f_lo == 0.0:
            if i == 0 or float(diffs[i - 1]) != 0.0:
                direction = "down" if f_hi < 0 else "up"
                crossings.append(Crossing(x=float(xs[i]),
                                          direction=direction))
            continue
        if f_lo * f_hi < 0:
            root = _brentq(diff, float(xs[i]), float(xs[i + 1]),
                           f_lo, f_hi, xtol=xtol)
            direction = "down" if f_lo > 0 else "up"
            crossings.append(Crossing(x=root, direction=direction))
    if len(xs) >= 2 and float(diffs[-1]) == 0.0 and float(diffs[-2]) != 0.0:
        direction = "down" if float(diffs[-2]) > 0 else "up"
        crossings.append(Crossing(x=float(xs[-1]), direction=direction))
    return tuple(crossings)
