"""Scheduler-level serving tests: admission control, deadlines,
coalescing, and parity with the offline advisor."""

import threading

import pytest

from repro.core import recommend
from repro.engine import ExperimentEngine, SimulationCache
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.serving import (
    AdmissionError,
    ServingScheduler,
    SimulateRequest,
    TokenBucket,
    WhatIfRequest,
)
from repro.telemetry import metrics as telemetry_metrics


@pytest.fixture
def registry():
    """A live metrics registry for the duration of one test."""
    reg = telemetry_metrics.enable()
    yield reg
    telemetry_metrics.disable()


def make_scheduler(**kwargs):
    kwargs.setdefault("engine", ExperimentEngine())
    kwargs.setdefault("batch_window_s", 0.01)
    return ServingScheduler(**kwargs)


def simulate_request(seed=0, iterations=20, **extra):
    body = {"model": "resnet50", "gpus": 8, "iterations": iterations,
            "seed": seed}
    body.update(extra)
    return SimulateRequest.from_json(body)


class TestTokenBucket:
    def test_burst_then_reject(self):
        now = [0.0]
        bucket = TokenBucket(rate_per_s=1.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(rate_per_s=2.0, burst=1, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] = 0.5  # 2/s x 0.5s = 1 token back
        assert bucket.try_acquire()

    def test_retry_after_predicts_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate_per_s=0.5, burst=1, clock=lambda: now[0])
        bucket.try_acquire()
        assert bucket.retry_after_s() == pytest.approx(2.0)

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=1, burst=0)


class TestAdmission:
    def test_quota_rejection_carries_retry_after(self):
        sched = make_scheduler(quota_rps=0.001, quota_burst=1,
                               batch_window_s=0.2)
        try:
            sched.submit(simulate_request())
            with pytest.raises(AdmissionError) as excinfo:
                sched.submit(simulate_request(seed=1))
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "quota"
            assert excinfo.value.retry_after_s > 0
        finally:
            sched.close()

    def test_quota_is_per_tenant(self):
        sched = make_scheduler(quota_rps=0.001, quota_burst=1,
                               batch_window_s=0.2)
        try:
            sched.submit(simulate_request(), tenant="a")
            # tenant b has its own bucket, so it is not affected
            sched.submit(simulate_request(seed=1), tenant="b")
            with pytest.raises(AdmissionError):
                sched.submit(simulate_request(seed=2), tenant="a")
        finally:
            sched.close()

    def test_queue_depth_cap_rejects_503(self):
        sched = make_scheduler(queue_depth=1, batch_window_s=0.5)
        try:
            sched.submit(simulate_request())
            with pytest.raises(AdmissionError) as excinfo:
                sched.submit(simulate_request(seed=1))
            assert excinfo.value.status == 503
            assert excinfo.value.reason == "queue_full"
        finally:
            sched.close(timeout_s=1.0)

    def test_deadline_expires_queued_request(self, registry):
        # The deadline elapses during the batch window, so the request
        # is dropped at drain time without ever executing.
        sched = make_scheduler(batch_window_s=0.2)
        try:
            state = sched.submit(simulate_request(timeout_s=0.01))
            final = sched.wait(state.id, timeout_s=10.0)
            assert final.status == "expired"
            assert "deadline" in final.error
            assert sched.engine.jobs_completed == 0
            snap = registry.snapshot()
            assert snap["counters"][
                "serving_requests_expired_total"] == 1.0
        finally:
            sched.close()

    def test_closed_scheduler_rejects(self):
        sched = make_scheduler()
        sched.close()
        with pytest.raises(AdmissionError) as excinfo:
            sched.submit(simulate_request())
        assert excinfo.value.reason == "closed"


class TestCoalescing:
    def test_seed_varied_requests_share_one_kernel_call(self, registry):
        # Four requests differing only in seed land in one batch window;
        # the engine stacks them into one family execution.
        sched = make_scheduler(batch_window_s=0.2)
        try:
            states = [sched.submit(simulate_request(seed=s))
                      for s in range(4)]
            finals = [sched.wait(s.id, timeout_s=60.0) for s in states]
            assert [f.status for f in finals] == ["done"] * 4
            assert sched.batches == 1
            assert sched.requests_coalesced == 4
            assert sched.engine.jobs_batched == 4
            snap = registry.snapshot()
            assert snap["gauges"]["serving_batch_occupancy"] == 4.0
        finally:
            sched.close()

    def test_results_match_request_order(self):
        sched = make_scheduler(batch_window_s=0.2)
        try:
            a = sched.submit(simulate_request(seed=7))
            b = sched.submit(simulate_request(seed=8))
            fa = sched.wait(a.id, timeout_s=60.0)
            fb = sched.wait(b.id, timeout_s=60.0)
            assert fa.rows[0]["seed"] == 7
            assert fb.rows[0]["seed"] == 8
            assert fa.rows[0]["mean_s"] != fb.rows[0]["mean_s"]
        finally:
            sched.close()

    def test_concurrent_clients_share_cache(self, tmp_path):
        cache = SimulationCache(str(tmp_path / "cache"))
        sched = make_scheduler(engine=ExperimentEngine(cache=cache),
                               batch_window_s=0.05)
        try:
            results = {}

            def client(name, seed):
                state = sched.submit(simulate_request(seed=seed))
                results[name] = sched.wait(state.id, timeout_s=60.0)

            threads = [threading.Thread(target=client, args=(i, i % 2))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            rows = [results[i].rows[0] for i in range(4)]
            assert all(results[i].status == "done" for i in range(4))
            # equal seeds produced identical timings (shared cache or
            # same deterministic kernel — either way, one truth)
            by_seed = {}
            for row in rows:
                by_seed.setdefault(row["seed"], set()).add(row["mean_s"])
            assert all(len(v) == 1 for v in by_seed.values())
            # a later identical request is served from the shared cache
            state = sched.submit(simulate_request(seed=0))
            final = sched.wait(state.id, timeout_s=60.0)
            assert final.rows[0]["cached"] is True
            assert final.rows[0]["mean_s"] in by_seed[0]
        finally:
            sched.close()

    def test_stats_expose_cache_tiers(self, tmp_path):
        cache = SimulationCache(str(tmp_path / "cache"), memory_mb=8)
        sched = make_scheduler(engine=ExperimentEngine(cache=cache),
                               batch_window_s=0.02)
        try:
            for _ in range(2):  # second pass hits the hot tier
                state = sched.submit(simulate_request(seed=0))
                sched.wait(state.id, timeout_s=60.0)
            stats = sched.stats()
            assert stats["cache"]["memory"]["entries"] > 0
            assert stats["engine"]["cache_memory_hits"] > 0
        finally:
            sched.close()

    def test_stats_without_cache_have_no_cache_section(self):
        sched = make_scheduler()
        try:
            assert "cache" not in sched.stats()
        finally:
            sched.close()


class TestWhatIf:
    def test_matches_offline_recommendation(self):
        sched = make_scheduler()
        try:
            request = WhatIfRequest.from_json(
                {"model": "resnet50", "gpus": 8, "crossovers": False})
            state = sched.submit(request)
            final = sched.wait(state.id, timeout_s=60.0)
            assert final.status == "done"
            offline = recommend(get_model("resnet50"), cluster_for_gpus(8))
            assert final.result["rendered"] == offline.render()
            assert final.result["best"] == offline.best.scheme_label
        finally:
            sched.close()

    def test_crossovers_reported_per_compressed_scheme(self):
        sched = make_scheduler()
        try:
            request = WhatIfRequest.from_json(
                {"model": "resnet50", "gpus": 8})
            state = sched.submit(request)
            final = sched.wait(state.id, timeout_s=60.0)
            assert final.status == "done"
            crossovers = final.result["crossovers"]
            labels = {c["scheme"] for c in crossovers}
            assert "syncsgd" not in labels
            assert any(c["crossings"] for c in crossovers)
            for c in crossovers:
                for crossing in c["crossings"]:
                    assert 1.0 <= crossing["gbps"] <= 30.0
                    assert crossing["direction"] in ("down", "up")
        finally:
            sched.close()

    def test_verdict_rows_are_json_safe(self):
        import json

        sched = make_scheduler()
        try:
            state = sched.submit(WhatIfRequest.from_json(
                {"model": "vgg16", "gpus": 8, "crossovers": False}))
            final = sched.wait(state.id, timeout_s=60.0)
            assert final.status == "done"
            text = json.dumps(final.to_dict())  # strict JSON: no Infinity
            assert "Infinity" not in text
        finally:
            sched.close()


class TestRequestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            WhatIfRequest.from_json({"model": "resnet50", "gpu": 8})

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            WhatIfRequest.from_json({"model": "resnet9000"})

    def test_bad_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulateRequest.from_json({"scheme": "powersgd:rank=banana"})

    def test_seed_and_seeds_conflict(self):
        with pytest.raises(ConfigurationError):
            SimulateRequest.from_json({"seed": 0, "seeds": [1]})

    def test_seeds_capped(self):
        with pytest.raises(ConfigurationError):
            SimulateRequest.from_json({"seeds": list(range(1000))})

    def test_iterations_must_exceed_warmup(self):
        with pytest.raises(ConfigurationError):
            SimulateRequest.from_json({"iterations": 5})
