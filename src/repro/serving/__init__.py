"""Simulation-as-a-service: the engine behind a persistent scheduler.

``repro serve`` turns the one-shot experiment engine into a long-lived
HTTP service: an admission-controlled queue feeds a continuous-batching
scheduler that coalesces compatible requests into single grid-kernel
calls and streams results back per request.  See ``docs/serving.md``
for the API reference and operational semantics.
"""

from .http import MAX_BODY_BYTES, ServingHandler, ServingHTTPServer, make_server
from .quota import AdmissionError, TenantQuotas, TokenBucket
from .requests import (
    MAX_SEEDS_PER_REQUEST,
    AdviseRequest,
    SimulateRequest,
    WhatIfRequest,
    parse_request,
)
from .scheduler import TERMINAL_STATES, RequestState, ServingScheduler

__all__ = [
    "AdmissionError", "TokenBucket", "TenantQuotas",
    "WhatIfRequest", "SimulateRequest", "AdviseRequest", "parse_request",
    "MAX_SEEDS_PER_REQUEST",
    "RequestState", "ServingScheduler", "TERMINAL_STATES",
    "ServingHandler", "ServingHTTPServer", "make_server",
    "MAX_BODY_BYTES",
]
