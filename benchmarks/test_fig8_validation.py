"""Figure 8: performance model vs measured, across the sweep."""

from repro.experiments import median_errors, run_fig8


def test_fig8_model_validation(run_once, show):
    result = run_once(run_fig8, iterations=110, warmup=10)
    show(result, "{:.3f}")

    errors = median_errors(result)
    print(f"\nmedian relative errors: "
          + ", ".join(f"{k}={v:.1%}" for k, v in errors.items()))

    # The paper: syncSGD 1.8%, PowerSGD 1.37%, signSGD 14.2% (incast).
    # Assert the structure: all-reducible schemes tight, signSGD several
    # times worse because the model omits incast.
    assert errors["syncsgd"] < 0.08
    assert errors["powersgd(rank=4)"] < 0.05
    assert errors["signsgd"] > 1.5 * max(errors["syncsgd"],
                                         errors["powersgd(rank=4)"])

    # The signSGD error grows with scale (incast worsens with fan-in).
    sign_rows = sorted(result.select(model="resnet101", scheme="signsgd"),
                       key=lambda r: r["gpus"])
    assert sign_rows[-1]["rel_error"] > sign_rows[0]["rel_error"]

    # The model *under*-predicts signSGD (incast omission direction).
    big = sign_rows[-1]
    assert big["predicted_ms"] < big["measured_ms"]

    # BERT validation curves stop where the OOM stopped measurement.
    bert_sign = result.select(model="bert-base", scheme="signsgd")
    assert max(row["gpus"] for row in bert_sign) == 32
