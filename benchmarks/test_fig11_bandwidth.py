"""Figure 11: bandwidth what-if — compression helps only on slow nets."""

from repro.experiments import run_fig11
from repro.core import find_crossover_gbps
from repro.core.whatif import WhatIfPoint


def _points(result, model):
    return [WhatIfPoint(x=row["bandwidth_gbps"],
                        syncsgd_s=row["syncsgd_ms"],
                        compressed_s=row["powersgd_ms"])
            for row in result.select(model=model)]


def test_fig11_bandwidth_whatif(run_once, show):
    result = run_once(run_fig11)
    show(result, "{:.3f}")

    for model in ("resnet50", "resnet101", "bert-base"):
        points = _points(result, model)
        speedups = [p.speedup for p in sorted(points, key=lambda p: p.x)]
        # Speedup decreases monotonically with bandwidth.
        assert speedups == sorted(speedups, reverse=True), model
        # Compression is a large win at 1 Gbit/s...
        assert speedups[0] > 0.5, model
        # ...and no better than marginal at 30 Gbit/s.
        assert speedups[-1] < 0.10, model

    # ResNet crossovers near the paper's ~9 Gbit/s.
    for model in ("resnet50", "resnet101"):
        crossover = find_crossover_gbps(_points(result, model))
        assert crossover is not None, model
        assert 6 < crossover < 14, (model, crossover)

    # BERT's crossover sits far above the ResNets' (the paper reports
    # 15 Gbit/s; ours lands higher — see EXPERIMENTS.md — but the
    # ordering is preserved).
    bert_cross = find_crossover_gbps(_points(result, "bert-base"))
    rn50_cross = find_crossover_gbps(_points(result, "resnet50"))
    assert bert_cross is None or bert_cross > 1.5 * rn50_cross
