"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.hardware import ClusterConfig, cluster_for_gpus
from repro.models import LayerSpec, ModelSpec, get_model
from repro.network import Fabric


@pytest.fixture
def rng():
    """Deterministic random generator for numeric tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def resnet50():
    return get_model("resnet50")


@pytest.fixture(scope="session")
def resnet101():
    return get_model("resnet101")


@pytest.fixture(scope="session")
def bert_base():
    return get_model("bert-base")


@pytest.fixture
def tiny_model():
    """A hand-built 3-layer model small enough to reason about exactly."""
    layers = (
        LayerSpec(name="fc1", kind="linear", param_shape=(8, 4),
                  matrix_shape=(8, 4), extra_params=8,
                  fwd_flops_per_sample=2.0 * 8 * 4,
                  activation_bytes_per_sample=8 * 4),
        LayerSpec(name="act", kind="pool",
                  fwd_flops_per_sample=8.0,
                  activation_bytes_per_sample=8 * 4),
        LayerSpec(name="fc2", kind="linear", param_shape=(2, 8),
                  matrix_shape=(2, 8), extra_params=2,
                  fwd_flops_per_sample=2.0 * 2 * 8,
                  activation_bytes_per_sample=2 * 4),
    )
    return ModelSpec(name="tiny", layers=layers, default_batch_size=4)


@pytest.fixture
def small_cluster():
    """Two p3.8xlarge nodes = 8 GPUs."""
    return cluster_for_gpus(8)


@pytest.fixture
def small_fabric(small_cluster):
    return Fabric(small_cluster)
