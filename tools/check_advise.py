#!/usr/bin/env python
"""End-to-end smoke check of the auto-advisor.

``make advise-smoke`` (and the CI job of the same name) runs this tool,
which drives the advisor's acceptance criteria through the real entry
points:

* ``repro advise`` with the default grid prices **at least one million
  configurations** and prints a non-empty Pareto frontier containing
  the syncsgd baseline;
* the sharded-parallel run (``--jobs 2``) produces **byte-identical
  stdout** to the serial run;
* a real ``repro serve`` instance answers ``POST /v1/advise`` with
  ``status: done``, a frontier, and a rendered report **byte-identical
  to the offline CLI** for the same (serving-sized) grid.

Exits non-zero with one problem per line on stderr, so the make target
fails loudly and the CI log says exactly which guarantee broke.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Floor on the configurations a default ``repro advise`` run sweeps.
MIN_CONFIGS = 1_000_000

#: Serving-sized grid driven through both the CLI and ``/v1/advise``
#: for the byte-parity check (small enough for interactive latency).
PARITY_ARGS = {"model": "resnet50", "gpus": 32, "world_sizes": [8, 16],
               "bandwidth_points": 64, "shard_points": 32}

_ENV = {**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")}


def _run_advise(extra: List[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "advise"] + extra,
        capture_output=True, text=True, timeout=600, env=_ENV)


def _parity_argv(jobs: int) -> List[str]:
    return ["--model", PARITY_ARGS["model"],
            "--gpus", str(PARITY_ARGS["gpus"]),
            "--world-sizes",
            *[str(p) for p in PARITY_ARGS["world_sizes"]],
            "--bandwidth-points", str(PARITY_ARGS["bandwidth_points"]),
            "--shard-points", str(PARITY_ARGS["shard_points"]),
            "--jobs", str(jobs)]


def check_cli() -> Tuple[List[str], str]:
    """The offline acceptance criteria; returns (problems, serial out)."""
    problems: List[str] = []

    # --- the default grid crosses the million-config line
    full = _run_advise([])
    if full.returncode != 0:
        problems.append(f"default advise failed: {full.stderr}")
        return problems, ""
    configs = None
    for line in full.stdout.splitlines():
        if "= " in line and line.rstrip().endswith("configs"):
            configs = int(line.rsplit("= ", 1)[1].split()[0]
                          .replace(",", ""))
    if configs is None:
        problems.append("default advise printed no config count")
    elif configs < MIN_CONFIGS:
        problems.append(f"default advise swept only {configs:,} configs "
                        f"(< {MIN_CONFIGS:,})")
    if "Pareto frontier" not in full.stdout:
        problems.append("default advise printed no Pareto frontier")
    if "syncsgd" not in full.stdout:
        problems.append("default advise frontier lost the syncsgd "
                        "baseline")

    # --- sharded-parallel output is byte-identical to serial
    serial = _run_advise(_parity_argv(jobs=1))
    parallel = _run_advise(_parity_argv(jobs=2))
    if serial.returncode != 0 or parallel.returncode != 0:
        problems.append(f"parity advise failed: {serial.stderr} "
                        f"{parallel.stderr}")
    elif serial.stdout != parallel.stdout:
        problems.append(
            "sharded-parallel advise output differs from serial:\n"
            f"--- serial ---\n{serial.stdout}\n"
            f"--- parallel ---\n{parallel.stdout}")
    return problems, serial.stdout


def check_serving(base: str, offline_stdout: str) -> List[str]:
    """``POST /v1/advise`` parity against the offline CLI report."""
    problems: List[str] = []
    body = dict(PARITY_ARGS)
    request = urllib.request.Request(
        base + "/v1/advise", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=300) as resp:
        status, reply = resp.status, json.loads(resp.read())
    if status != 200 or reply.get("status") != "done":
        problems.append(f"/v1/advise: {status} "
                        f"status={reply.get('status')} "
                        f"error={reply.get('error')}")
        return problems
    result: Dict[str, Any] = reply["result"]
    if not result.get("frontier"):
        problems.append("/v1/advise returned an empty frontier")
    if result.get("rendered", "") + "\n" != offline_stdout:
        problems.append(
            "/v1/advise response does not match `repro advise` "
            f"byte-for-byte:\n--- served ---\n{result.get('rendered')}"
            f"\n--- offline ---\n{offline_stdout}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 0 when the advisor checks out."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", metavar="URL", default=None,
                        help="base URL of an already-running server "
                             "(default: spawn one on an ephemeral port)")
    args = parser.parse_args(argv)

    problems, offline_stdout = check_cli()

    server = None
    base = args.base
    if base is None:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_ENV)
        line = server.stdout.readline()
        if "listening on" not in line:
            print(f"server did not start: {line!r}", file=sys.stderr)
            return 1
        base = line.strip().rsplit(" ", 1)[-1]
    try:
        if offline_stdout:
            problems += check_serving(base, offline_stdout)
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=10)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"advise ok: {base} — million-config sweep, jobs parity, "
              f"/v1/advise parity all verified")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
