"""Experiment harness: result containers and quick runs of each module."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_fig3,
    run_fig7,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
    run_table2,
    scaling_clusters,
    speedup,
)


class TestExperimentResult:
    def test_column_extraction(self):
        result = ExperimentResult(
            experiment_id="t", title="x", columns=("a", "b"),
            rows=({"a": 1, "b": 2}, {"a": 3, "b": 4}))
        assert result.column("a") == [1, 3]

    def test_missing_column_rejected(self):
        result = ExperimentResult(
            experiment_id="t", title="x", columns=("a",),
            rows=({"a": 1},))
        with pytest.raises(ConfigurationError):
            result.column("z")

    def test_rows_must_cover_columns(self):
        with pytest.raises(ConfigurationError, match="missing"):
            ExperimentResult(experiment_id="t", title="x",
                             columns=("a", "b"), rows=({"a": 1},))

    def test_select_and_single(self):
        result = ExperimentResult(
            experiment_id="t", title="x", columns=("a", "b"),
            rows=({"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 9}))
        assert len(result.select(a=1)) == 2
        assert result.single(a=2)["b"] == 9
        with pytest.raises(ConfigurationError):
            result.single(a=1)

    def test_render_table_contains_data(self):
        result = ExperimentResult(
            experiment_id="t", title="demo", columns=("a",),
            rows=({"a": 1.2345},), notes=("skipped nothing",))
        text = result.render_table("{:.2f}")
        assert "demo" in text and "1.23" in text and "skipped" in text

    def test_speedup_helper(self):
        assert speedup(2.0, 1.0) == pytest.approx(0.5)
        assert speedup(1.0, 2.0) == pytest.approx(-1.0)
        with pytest.raises(ConfigurationError):
            speedup(0.0, 1.0)

    def test_scaling_clusters_world_sizes(self):
        assert [c.world_size for c in scaling_clusters((8, 96))] == [8, 96]


class TestRegistryCompleteness:
    def test_every_paper_exhibit_registered(self):
        expected = ({"table1", "table2", "ext-tta"}
                    | {f"fig{i}" for i in range(2, 14)})
        assert set(EXPERIMENTS) == expected

    def test_runners_are_callable(self):
        for runner in EXPERIMENTS.values():
            assert callable(runner)


class TestAnalyticExperiments:
    """The model-only experiments run in milliseconds; check full output."""

    def test_table1_matches_paper(self):
        result = run_table1()
        for row in result.rows:
            assert row["all_reduce"] == row["paper_all_reduce"]
            assert row["layerwise"] == row["paper_layerwise"]
            assert row["verified_all_reduce"] == row["all_reduce"]

    def test_table2_within_tolerance(self):
        result = run_table2()
        for row in result.rows:
            assert row["model_ms"] == pytest.approx(row["paper_ms"],
                                                    rel=0.07)

    def test_fig9_ratios_small(self):
        result = run_fig9()
        ratios = [r for r in result.column("required_ratio")
                  if math.isfinite(r)]
        assert ratios
        assert max(ratios) < 12.0

    def test_fig9_bandwidth_lowers_requirement(self):
        result = run_fig9()
        r10 = result.single(model="resnet50", bandwidth_gbps=10.0,
                            batch_size=32)["required_ratio"]
        r25 = result.single(model="resnet50", bandwidth_gbps=25.0,
                            batch_size=32)["required_ratio"]
        assert r25 <= r10

    def test_fig10_headroom_ordering(self):
        result = run_fig10()
        at_152 = {row["model"]: row["headroom_ms"]
                  for row in result.select(gpus=152)}
        assert (at_152["resnet50"] < at_152["resnet101"]
                < at_152["bert-base"])

    def test_fig11_resnet_crossovers_found(self):
        result = run_fig11()
        notes = " ".join(result.notes)
        assert "resnet50: crossover" in notes
        assert "resnet101: crossover" in notes

    def test_fig12_speedup_grows_with_compute(self):
        result = run_fig12()
        rows = result.select(model="resnet50")
        ratios = [r["speedup_ratio"] for r in rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1.75

    def test_fig13_encode_cuts_always_help(self):
        # The figure's claim: at any size penalty l, cutting encode time
        # (k > 1) beats not cutting it (k = 1).
        result = run_fig13()
        for model in ("resnet50", "bert-base"):
            for l in (1.0, 2.0, 3.0):
                base = result.single(model=model, k=1.0,
                                     l=l)["predicted_ms"]
                for k in (2.0, 3.0, 4.0):
                    faster = result.single(model=model, k=k,
                                           l=l)["predicted_ms"]
                    assert faster < base


class TestSimulatedExperimentsQuick:
    """Cut-down simulator experiments — shapes only, fast settings."""

    def test_fig3_overlap_always_slower(self):
        result = run_fig3(iterations=10, warmup=2)
        for row in result.rows:
            assert row["overlap_penalty"] > 0, row["scheme"]

    def test_fig2_last_bucket_not_hidden(self):
        from repro.experiments import run_fig2
        result = run_fig2()
        hidden = result.column("fully_hidden")
        # Most buckets hide under the backward pass; the last cannot.
        assert sum(hidden) >= len(hidden) - 2
        assert hidden[-1] is False
        assert "hidden under compute" in " ".join(result.notes)

    def test_fig7_speedup_decreases_with_batch(self):
        result = run_fig7(iterations=10, warmup=2,
                          sweeps=(("resnet101", 16, (16, 64)),))
        s16 = result.single(batch_size=16)["speedup"]
        s64 = result.single(batch_size=64)["speedup"]
        assert s16 > s64


class TestResultPersistence:
    def _demo(self):
        return ExperimentResult(
            experiment_id="t", title="x", columns=("a", "b"),
            rows=({"a": 1, "b": 2.5},
                  {"a": "oom", "b": float("nan")},
                  {"a": "never", "b": float("inf")}),
            notes=("hello",))

    def test_json_round_trip(self):
        original = self._demo()
        restored = ExperimentResult.from_json(original.to_json())
        assert restored.experiment_id == original.experiment_id
        assert restored.columns == original.columns
        assert restored.rows[0] == original.rows[0]
        assert restored.notes == original.notes

    def test_nonfinite_floats_survive(self):
        restored = ExperimentResult.from_json(self._demo().to_json())
        assert math.isnan(restored.rows[1]["b"])
        assert math.isinf(restored.rows[2]["b"])

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "result.json"
        self._demo().save(str(path))
        loaded = ExperimentResult.load(str(path))
        assert loaded.single(a=1)["b"] == 2.5

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid"):
            ExperimentResult.from_json("{nope")
        with pytest.raises(ConfigurationError, match="missing"):
            ExperimentResult.from_json('{"experiment_id": "x"}')

    def test_real_experiment_round_trips(self):
        from repro.experiments import run_fig9
        result = run_fig9()
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.rows == result.rows
