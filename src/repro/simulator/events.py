"""Minimal discrete-event engine.

The DDP simulator schedules compute-stream and communication-stream spans
as events on a shared virtual clock.  The engine is deliberately small: a
priority queue of timestamped callbacks with deterministic tie-breaking
(insertion order), which is all the timeline construction needs while
staying genuinely event-driven (bucket-ready events fire mid-backward and
enqueue communication work).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

#: An event callback receives the engine so it can schedule follow-ups.
Callback = Callable[["EventQueue"], None]


class EventQueue:
    """Priority queue of timestamped events with a virtual clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (not yet executed)."""
        return len(self._heap)

    def schedule(self, time: float, callback: Callback) -> None:
        """Enqueue ``callback`` to fire at absolute virtual ``time``.

        Scheduling into the past is an inconsistency, not a rounding
        issue, so it raises.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time:.9f}s; clock is already "
                f"at {self._now:.9f}s")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Enqueue ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, callback)

    def run(self, max_events: int = 1_000_000) -> float:
        """Drain the queue; returns the final clock value.

        ``max_events`` guards against accidental infinite event loops —
        a healthy iteration simulation is a few hundred events.  The
        budget applies to *this* invocation: a reused queue gets the
        full allowance on every ``run()``, while the lifetime total
        stays observable via :attr:`processed`.

        Exhausting the budget mid-drain raises a
        :class:`~repro.errors.SimulationError` rather than silently
        returning a truncated timeline: a partial drain would report a
        too-short iteration as if it were real data.  The error states
        how many events remain and where the clock stopped so the
        runaway callback can be found.
        """
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted: processed {max_events} "
                    f"events in one run() with {self.pending} still "
                    f"queued at virtual time {self._now:.6f}s — the "
                    f"timeline is incomplete.  This usually means a "
                    f"callback reschedules itself unconditionally; if "
                    f"the workload is legitimately this large, raise "
                    f"max_events.")
            time, _, callback = heapq.heappop(self._heap)
            self._now = time
            executed += 1
            self._processed += 1
            callback(self)
        return self._now

    def empty(self) -> bool:
        """Whether any events remain."""
        return not self._heap
