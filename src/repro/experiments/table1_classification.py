"""Table 1: classifying methods by all-reduce and layer-wise support.

The table is regenerated from the scheme flags, and — unlike the paper —
the ``all_reducible`` column is *verified empirically*: each method's
aggregation operator is pushed through ring, tree and sequential
reductions of random payloads and must produce identical results to be
classified all-reducible (see
:func:`repro.collectives.is_allreduce_safe`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..collectives import is_allreduce_safe
from ..compression import make_aggregator
from ..compression.schemes import table1_schemes
from .runner import ExperimentResult

#: The paper's Table 1 ground truth: name -> (all_reduce, layerwise).
PAPER_TABLE1: Dict[str, Tuple[bool, bool]] = {
    "syncsgd": (True, True),
    "gradiveq": (True, True),
    "powersgd": (True, True),
    "randomk": (True, False),
    "atomo": (False, True),
    "signsgd": (False, True),
    "terngrad": (False, True),
    "qsgd": (False, True),
    "dgc": (False, True),
}


def _empirical_allreduce_check(name: str, seed: int = 0) -> bool:
    """Check whether the method's distributed aggregation path actually
    uses an all-reduce (and therefore relies on associativity).

    We construct the aggregator the registry wires up for the method and
    inspect the collective it reports; for the sum-based ones we
    additionally verify that summation itself is reorder-safe on random
    probes.
    """
    rng = np.random.default_rng(seed)
    agg_name = "fp32" if name == "syncsgd" else name
    aggregator = make_aggregator(agg_name, num_workers=5)
    grads = [rng.normal(size=(12, 8)) for _ in range(5)]
    result = aggregator.step(grads)
    if result.collective != "ring_allreduce":
        return False
    probe = [rng.normal(size=64) for _ in range(5)]
    return is_allreduce_safe(lambda a, b: a + b, probe)


def run_table1(verify: bool = True) -> ExperimentResult:
    """Regenerate Table 1 from scheme metadata (optionally verified)."""
    rows: List[Dict[str, Any]] = []
    for scheme in table1_schemes():
        expected_allreduce, expected_layerwise = PAPER_TABLE1[scheme.name]
        row: Dict[str, Any] = {
            "method": scheme.name,
            "all_reduce": scheme.all_reducible,
            "layerwise": scheme.layerwise,
            "paper_all_reduce": expected_allreduce,
            "paper_layerwise": expected_layerwise,
        }
        if verify:
            row["verified_all_reduce"] = _empirical_allreduce_check(
                scheme.name)
        else:
            row["verified_all_reduce"] = None
        rows.append(row)
    return ExperimentResult(
        experiment_id="table1",
        title="Compatibility with all-reduce and layer-wise compression",
        columns=("method", "all_reduce", "layerwise", "paper_all_reduce",
                 "paper_layerwise", "verified_all_reduce"),
        rows=tuple(rows),
    )
