"""Analytic performance model (§4)."""

import pytest

from repro.compression import (
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.compute import ComputeModel
from repro.core import (
    PerfModelInputs,
    compressed_time,
    predict,
    speedup_over_syncsgd,
    syncsgd_time,
)
from repro.errors import ConfigurationError
from repro.hardware import V100
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

BW10 = gbps_to_bytes_per_s(10)


def inputs(p=64, bw=BW10, bs=None, **kw):
    return PerfModelInputs(world_size=p, bandwidth_bytes_per_s=bw,
                           batch_size=bs, **kw)


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


class TestSyncSGDModel:
    def test_single_worker_is_pure_compute(self, rn50):
        pred = syncsgd_time(rn50, inputs(p=1, bs=64))
        compute = ComputeModel(rn50, V100)
        assert pred.total == pytest.approx(compute.backward_time(64))

    def test_compute_bound_regime(self, rn50):
        # Huge bandwidth: total = gamma * T_comp + last-bucket time.
        pred = syncsgd_time(rn50, inputs(bw=gbps_to_bytes_per_s(1000),
                                         bs=64, gamma=1.1))
        compute = ComputeModel(rn50, V100)
        assert pred.total == pytest.approx(
            1.1 * compute.backward_time(64), rel=0.03)

    def test_comm_bound_regime(self, rn50):
        # Tiny bandwidth: total ~ full-gradient all-reduce time.
        pred = syncsgd_time(rn50, inputs(bw=gbps_to_bytes_per_s(1), bs=64))
        expected_comm = 2 * rn50.grad_bytes * 63 / (
            64 * gbps_to_bytes_per_s(1))
        assert pred.total == pytest.approx(expected_comm, rel=0.1)

    def test_more_bandwidth_never_slower(self, rn50):
        times = [syncsgd_time(rn50, inputs(bw=gbps_to_bytes_per_s(g),
                                           bs=64)).total
                 for g in (1, 5, 10, 25, 100)]
        assert times == sorted(times, reverse=True)

    def test_larger_batch_longer_iteration_when_compute_bound(self, rn50):
        # At high bandwidth the backward pass dominates; batch matters.
        # (At 10 Gbit/s both batches are comm-bound and times coincide —
        # exactly the overlap effect behind Figure 7.)
        fast = gbps_to_bytes_per_s(100)
        t32 = syncsgd_time(rn50, inputs(bw=fast, bs=32)).total
        t64 = syncsgd_time(rn50, inputs(bw=fast, bs=64)).total
        assert t64 > t32

    def test_breakdown_components_consistent(self, rn50):
        pred = syncsgd_time(rn50, inputs(bs=64))
        assert pred.total >= pred.compute
        assert pred.encode_decode == 0.0

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            PerfModelInputs(world_size=0, bandwidth_bytes_per_s=1e9)
        with pytest.raises(ConfigurationError):
            PerfModelInputs(world_size=4, bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigurationError):
            PerfModelInputs(world_size=4, bandwidth_bytes_per_s=1e9,
                            gamma=0.5)

    def test_with_helpers(self):
        base = inputs(p=8)
        assert base.with_world_size(32).world_size == 32
        assert base.with_bandwidth(5e9).bandwidth_bytes_per_s == 5e9
        # original unchanged (frozen)
        assert base.world_size == 8


class TestCompressedModel:
    def test_structure_is_additive(self, rn50):
        pred = compressed_time(rn50, PowerSGDScheme(4), inputs(bs=64))
        assert pred.total == pytest.approx(
            pred.compute + pred.encode_decode + pred.comm_exposed)

    def test_syncsgd_scheme_routes_to_baseline(self, rn50):
        via_predict = predict(rn50, SyncSGDScheme(), inputs(bs=64))
        direct = syncsgd_time(rn50, inputs(bs=64))
        assert via_predict.total == pytest.approx(direct.total)

    def test_signsgd_comm_linear_in_p(self, rn50):
        t16 = compressed_time(rn50, SignSGDScheme(), inputs(p=16, bs=64))
        t96 = compressed_time(rn50, SignSGDScheme(), inputs(p=96, bs=64))
        assert t96.comm_exposed > 5 * t16.comm_exposed

    def test_powersgd_total_flat_in_p(self, rn50):
        # Ring latency (alpha) grows linearly, but at PowerSGD's tiny
        # payloads the *total* stays essentially flat across a 12x scale
        # jump — the all-reduce scalability the paper highlights.
        t8 = compressed_time(rn50, PowerSGDScheme(4), inputs(p=8, bs=64))
        t96 = compressed_time(rn50, PowerSGDScheme(4), inputs(p=96, bs=64))
        assert t96.total < 1.10 * t8.total

    def test_single_worker_no_comm(self, rn50):
        pred = compressed_time(rn50, TopKScheme(0.01), inputs(p=1, bs=64))
        assert pred.comm_exposed == 0.0

    def test_model_uses_no_incast(self, rn50):
        # The deliberate omission behind the Figure 8 signSGD error: the
        # analytic all-gather term equals the cost-model value with
        # incast_factor == 1.
        from repro.collectives import allgather_time
        pred = compressed_time(rn50, SignSGDScheme(), inputs(p=96, bs=64))
        cost = SignSGDScheme().cost(rn50, 96)
        expected = allgather_time(cost.wire_bytes, 96, BW10, 10e-6)
        assert pred.comm_exposed == pytest.approx(expected)


class TestPaperShapeClaims:
    def test_resnet_powersgd_slower_at_batch64(self, rn50):
        s = speedup_over_syncsgd(rn50, PowerSGDScheme(4),
                                 inputs(p=96, bs=64))
        assert s < 0.05  # no meaningful win, often negative

    def test_bert_powersgd_wins_at_96(self):
        bert = get_model("bert-base")
        s = speedup_over_syncsgd(bert, PowerSGDScheme(4),
                                 inputs(p=96, bs=12))
        assert 0.10 < s < 0.40

    def test_topk_never_wins(self, rn50):
        for p in (16, 64, 96):
            s = speedup_over_syncsgd(rn50, TopKScheme(0.01),
                                     inputs(p=p, bs=64))
            assert s < 0

    def test_small_batch_favours_compression(self):
        rn101 = get_model("resnet101")
        s16 = speedup_over_syncsgd(rn101, PowerSGDScheme(4),
                                   inputs(p=64, bs=16))
        s64 = speedup_over_syncsgd(rn101, PowerSGDScheme(4),
                                   inputs(p=64, bs=64))
        assert s16 > s64
        assert s16 > 0.2
