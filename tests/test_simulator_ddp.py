"""DDP simulator: mechanisms and paper-shape behaviours."""

import numpy as np
import pytest

from repro.compression import (
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import COMM_STREAM, DDPConfig, DDPSimulator


def quiet_config(**kwargs):
    return DDPConfig(compute_jitter=0.0, comm_jitter=0.0, **kwargs)


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


class TestBaselineIteration:
    def test_single_worker_has_no_comm(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(4).with_nodes(1),
                           config=quiet_config())
        # One node: intra-node NVLink is effectively free at this scale,
        # but a truly single worker is the cleanest check.
        from repro.hardware import ClusterConfig, P3_2XLARGE
        solo = DDPSimulator(rn50, ClusterConfig(P3_2XLARGE, num_nodes=1),
                            config=quiet_config())
        trace = solo.simulate_iteration(64, np.random.default_rng(0))
        assert trace.stream_busy_time(COMM_STREAM) == 0.0

    def test_buckets_appear_on_comm_stream(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8), config=quiet_config())
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        comm = trace.stream_spans(COMM_STREAM)
        assert len(comm) == len(rn50.bucket_sizes_bytes())

    def test_comm_overlaps_backward(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8), config=quiet_config())
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        assert trace.compute_comm_overlap() > 0.0

    def test_disabling_overlap_slows_iteration(self, rn50):
        cluster = cluster_for_gpus(16)
        on = DDPSimulator(rn50, cluster, config=quiet_config()).run(
            64, iterations=12, warmup=2)
        off = DDPSimulator(
            rn50, cluster,
            config=quiet_config(overlap_communication=False)).run(
            64, iterations=12, warmup=2)
        assert off.mean > on.mean

    def test_gamma_stretches_backward(self, rn50):
        cluster = cluster_for_gpus(8)
        lo = DDPSimulator(rn50, cluster, config=quiet_config(gamma=1.0))
        hi = DDPSimulator(rn50, cluster, config=quiet_config(gamma=1.3))
        t_lo = lo.simulate_iteration(64, np.random.default_rng(0))
        t_hi = hi.simulate_iteration(64, np.random.default_rng(0))
        assert (t_hi.backward_end - t_hi.forward_end) == pytest.approx(
            1.3 * (t_lo.backward_end - t_lo.forward_end))

    def test_double_tree_differs_from_ring(self, rn50):
        cluster = cluster_for_gpus(64)
        ring = DDPSimulator(rn50, cluster, config=quiet_config()).run(
            64, iterations=12, warmup=2)
        tree = DDPSimulator(
            rn50, cluster,
            config=quiet_config(allreduce_algorithm="double_tree")).run(
            64, iterations=12, warmup=2)
        assert ring.mean != tree.mean

    def test_jitter_produces_variance(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        result = sim.run(64, iterations=30, warmup=5)
        assert result.std > 0.0

    def test_no_jitter_deterministic(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8),
                           config=quiet_config())
        result = sim.run(64, iterations=12, warmup=2)
        assert result.std == pytest.approx(0.0)

    def test_default_batch_from_model(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        result = sim.run(iterations=12, warmup=2)
        assert result.batch_size == rn50.default_batch_size

    def test_bad_iteration_counts(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        with pytest.raises(ConfigurationError):
            sim.run(64, iterations=5, warmup=5)


class TestCompressedIteration:
    def test_encode_decode_on_critical_path(self, rn50):
        cluster = cluster_for_gpus(8)
        base = DDPSimulator(
            rn50, cluster, scheme=PowerSGDScheme(4),
            config=quiet_config()).run(64, iterations=12, warmup=2)
        cost = PowerSGDScheme(4).cost(rn50, 8)
        # Compressed run must include at least backward + encode/decode.
        compute = DDPSimulator(rn50, cluster).compute
        assert base.mean >= compute.backward_time(64) + cost.encode_decode_s

    def test_signsgd_comm_linear_in_p(self, rn50):
        t32 = DDPSimulator(rn50, cluster_for_gpus(32),
                           scheme=SignSGDScheme(),
                           config=quiet_config()).run(
            64, iterations=12, warmup=2).mean
        t96 = DDPSimulator(rn50, cluster_for_gpus(96),
                           scheme=SignSGDScheme(),
                           config=quiet_config()).run(
            64, iterations=12, warmup=2).mean
        assert t96 > 1.5 * t32

    def test_powersgd_nearly_flat_in_p(self, rn50):
        t8 = DDPSimulator(rn50, cluster_for_gpus(8),
                          scheme=PowerSGDScheme(4),
                          config=quiet_config()).run(
            64, iterations=12, warmup=2).mean
        t96 = DDPSimulator(rn50, cluster_for_gpus(96),
                           scheme=PowerSGDScheme(4),
                           config=quiet_config()).run(
            64, iterations=12, warmup=2).mean
        assert t96 < 1.15 * t8

    def test_overlapped_compression_slower_for_all_fig3_methods(self, rn50):
        # The §3.1 finding, also asserted per-method in the fig3 bench.
        cluster = cluster_for_gpus(16)
        for scheme in (PowerSGDScheme(4), TopKScheme(0.01),
                       SignSGDScheme()):
            seq = DDPSimulator(rn50, cluster, scheme=scheme,
                               config=quiet_config()).run(
                64, iterations=10, warmup=2).mean
            ovl = DDPSimulator(
                rn50, cluster, scheme=scheme,
                config=quiet_config(overlap_compression=True)).run(
                64, iterations=10, warmup=2).mean
            assert ovl > seq, scheme.label


class TestIterationRngDefaults:
    """Regression: ``simulate_iteration`` used to default to
    ``default_rng(0)`` on *every* call, so repeated direct calls drew
    identical jitter and their variance collapsed to zero."""

    def test_repeated_direct_calls_vary(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))  # jitter on
        times = {sim.simulate_iteration(64).sync_time() for _ in range(4)}
        assert len(times) > 1

    def test_seed_argument_is_deterministic(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        a = sim.simulate_iteration(64, seed=7).sync_time()
        b = sim.simulate_iteration(64, seed=7).sync_time()
        c = sim.simulate_iteration(64, seed=8).sync_time()
        assert a == b
        assert a != c

    def test_explicit_rng_still_wins(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        a = sim.simulate_iteration(64, np.random.default_rng(3)).sync_time()
        b = sim.simulate_iteration(64, np.random.default_rng(3),
                                   seed=99).sync_time()
        assert a == b

    def test_run_protocol_unchanged(self, rn50):
        # run() threads its own generator; same seed, same result.
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        r1 = sim.run(64, iterations=12, warmup=2, seed=0)
        r2 = DDPSimulator(rn50, cluster_for_gpus(8)).run(
            64, iterations=12, warmup=2, seed=0)
        assert r1.sync_times == r2.sync_times


class TestOverlappedSingleWorker:
    def test_no_phantom_wave_spans_at_p1(self, rn50):
        # Regression: the overlapped-compression path used to emit four
        # zero-length "wave*" comm spans even for a single worker,
        # polluting traces and compute_comm_overlap() inputs.
        from repro.hardware import ClusterConfig, P3_2XLARGE
        solo = DDPSimulator(
            rn50, ClusterConfig(P3_2XLARGE, num_nodes=1),
            scheme=TopKScheme(0.01),
            config=quiet_config(overlap_compression=True))
        trace = solo.simulate_iteration(64, np.random.default_rng(0))
        assert trace.stream_spans(COMM_STREAM) == []
        assert trace.compute_comm_overlap() == 0.0

    def test_multi_worker_waves_preserved(self, rn50):
        sim = DDPSimulator(
            rn50, cluster_for_gpus(8), scheme=TopKScheme(0.01),
            config=quiet_config(overlap_compression=True))
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        waves = [s for s in trace.stream_spans(COMM_STREAM)
                 if s.label.startswith("wave")]
        assert len(waves) == 4
        assert all(s.duration > 0 for s in waves)


class TestMemoryEnforcement:
    def test_bert_signsgd_ooms_beyond_32(self):
        bert = get_model("bert-base")
        sim = DDPSimulator(bert, cluster_for_gpus(48),
                           scheme=SignSGDScheme())
        with pytest.raises(OutOfMemoryError) as exc_info:
            sim.run(12, iterations=5, warmup=1)
        assert exc_info.value.required_bytes > exc_info.value.budget_bytes

    def test_bert_signsgd_runs_at_32(self):
        bert = get_model("bert-base")
        sim = DDPSimulator(bert, cluster_for_gpus(32),
                           scheme=SignSGDScheme())
        assert sim.run(12, iterations=5, warmup=1).mean > 0

    def test_resnet_signsgd_runs_at_96(self, rn50):
        # Layer-granularity gather: no OOM even at full scale.
        sim = DDPSimulator(rn50, cluster_for_gpus(96),
                           scheme=SignSGDScheme())
        assert sim.run(64, iterations=5, warmup=1).mean > 0

    def test_memory_check_can_be_disabled(self):
        bert = get_model("bert-base")
        sim = DDPSimulator(bert, cluster_for_gpus(48),
                           scheme=SignSGDScheme(),
                           config=quiet_config(check_memory=False))
        assert sim.run(12, iterations=5, warmup=1).mean > 0


class TestConfigValidation:
    def test_gamma_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DDPConfig(gamma=0.9)

    def test_contention_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DDPConfig(contention_penalty=0.5)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            DDPConfig(allreduce_algorithm="butterfly")

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            DDPConfig(compute_jitter=-0.1)
