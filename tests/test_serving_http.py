"""HTTP-layer serving tests: routing, errors, metrics, and the
end-to-end ``repro serve`` smoke with byte parity vs ``repro
recommend``."""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import ExperimentEngine
from repro.serving import ServingScheduler, make_server
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry.metrics import validate_prometheus_text

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture
def server():
    """An in-process server on an ephemeral port; yields its base URL."""
    telemetry_metrics.enable()
    scheduler = ServingScheduler(engine=ExperimentEngine(),
                                 batch_window_s=0.01,
                                 quota_rps=1000.0, quota_burst=1000.0)
    http_server = make_server(scheduler, port=0)
    host, port = http_server.server_address[:2]
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        http_server.shutdown()
        http_server.server_close()
        scheduler.close()
        telemetry_metrics.disable()


def post(base, path, body, headers=None, timeout=60):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def get(base, path, timeout=30):
    with urllib.request.urlopen(base + path, timeout=timeout) as resp:
        return resp.status, resp.read()


class TestRoutes:
    def test_healthz(self, server):
        status, raw = get(server, "/healthz")
        body = json.loads(raw)
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0
        assert "engine" in body

    def test_metrics_is_valid_prometheus(self, server):
        post(server, "/v1/simulate",
             {"model": "resnet50", "gpus": 8, "iterations": 20,
              "wait": True})
        status, raw = get(server, "/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert validate_prometheus_text(text) == []
        assert "serving_requests_total" in text

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/nope")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["code"] == \
            "not_found"

    def test_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/jobs/deadbeef")
        assert excinfo.value.code == 404

    def test_bad_json_400(self, server):
        request = urllib.request.Request(
            server + "/v1/whatif", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_bad_field_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/whatif", {"model": "resnet9000"})
        assert excinfo.value.code == 400
        error = json.loads(excinfo.value.read())["error"]
        assert error["code"] == "bad_request"
        assert "resnet9000" in error["message"]

    def test_oversized_body_413(self, server):
        request = urllib.request.Request(
            server + "/v1/whatif", data=b" " * ((1 << 20) + 1),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 413


class TestWorkflows:
    def test_whatif_sync_roundtrip(self, server):
        status, body = post(server, "/v1/whatif",
                            {"model": "resnet50", "gpus": 8,
                             "crossovers": False})
        assert status == 200
        assert body["status"] == "done"
        assert body["result"]["rendered"].startswith(
            "recommendation for resnet50 at 8 GPUs")
        assert body["result"]["best"]
        assert body["rows"]

    def test_simulate_async_then_poll(self, server):
        status, body = post(server, "/v1/simulate",
                            {"model": "resnet50", "gpus": 8,
                             "iterations": 20, "seeds": [0, 1]})
        assert status == 202
        job_id = body["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, raw = get(server, f"/v1/jobs/{job_id}?wait_s=5")
            state = json.loads(raw)
            if state["status"] in ("done", "failed", "expired"):
                break
        assert state["status"] == "done"
        assert [row["seed"] for row in state["rows"]] == [0, 1]
        assert all(row["mean_s"] > 0 for row in state["rows"])

    def test_over_quota_gets_429_with_retry_after(self):
        telemetry_metrics.enable()
        scheduler = ServingScheduler(engine=ExperimentEngine(),
                                     batch_window_s=0.5,
                                     quota_rps=0.001, quota_burst=1.0)
        http_server = make_server(scheduler, port=0)
        host, port = http_server.server_address[:2]
        thread = threading.Thread(target=http_server.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://{host}:{port}"
        try:
            post(base, "/v1/simulate",
                 {"model": "resnet50", "gpus": 8, "iterations": 20})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base, "/v1/simulate",
                     {"model": "resnet50", "gpus": 8, "iterations": 20,
                      "seed": 1})
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            error = json.loads(excinfo.value.read())["error"]
            assert error["code"] == "quota"
            assert error["retry_after_s"] > 0
            # another tenant is unaffected
            status, _ = post(base, "/v1/simulate",
                             {"model": "resnet50", "gpus": 8,
                              "iterations": 20, "seed": 2},
                             headers={"X-Tenant": "other"})
            assert status == 202
        finally:
            http_server.shutdown()
            http_server.server_close()
            scheduler.close()
            telemetry_metrics.disable()


class TestServeCommandEndToEnd:
    def test_whatif_matches_repro_recommend_byte_for_byte(self, tmp_path):
        """The acceptance criterion: `repro serve` returns the same
        ranked recommendation bytes as the offline CLI."""
        env = {**os.environ, "PYTHONPATH": SRC}
        offline = subprocess.run(
            [sys.executable, "-m", "repro", "recommend",
             "--model", "resnet50", "--gpus", "8"],
            capture_output=True, text=True, env=env, timeout=120)
        assert offline.returncode == 0, offline.stderr

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            base = line.strip().rsplit(" ", 1)[-1]
            _, body = post(base, "/v1/whatif",
                           {"model": "resnet50", "gpus": 8}, timeout=120)
            assert body["status"] == "done"
            assert body["result"]["rendered"] + "\n" == offline.stdout
            # crossover bandwidths ride along with the ranking
            assert any(c["crossings"]
                       for c in body["result"]["crossovers"])
        finally:
            proc.terminate()
            proc.wait(timeout=10)
