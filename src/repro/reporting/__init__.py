"""Terminal and markdown rendering of experiment outputs."""

from .charts import bar_chart, line_chart, scaling_chart
from .markdown import comparison_table, to_markdown

__all__ = [
    "line_chart", "bar_chart", "scaling_chart",
    "to_markdown", "comparison_table",
]
