"""Quantization compressors: QSGD [8], TernGrad [66], 1-bit SGD [52].

All three shrink each coordinate to a few bits.  Their aggregations are
not associative in their published form (Table 1): QSGD and TernGrad
re-quantize relative to per-tensor scales that differ across workers, and
1-bit SGD's thresholding loses magnitude, so the reference systems gather
and decode all ``p`` payloads.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import CompressionError
from ..units import FLOAT32_BYTES
from .base import Compressor, Payload


class QSGDCompressor(Compressor):
    """QSGD stochastic uniform quantization with ``levels`` buckets.

    Each coordinate ``x`` becomes ``norm2 * sign(x) * q`` where ``q`` is
    ``|x|/norm2 * levels`` stochastically rounded to an integer in
    ``[0, levels]``.  The estimator is unbiased.  Wire cost per element is
    ``1 + ceil(log2(levels+1))`` bits (fixed-width; the paper's Elias
    coding would shave a constant factor) plus one fp32 norm.
    """

    name = "qsgd"
    all_reducible = False
    layerwise = True

    def __init__(self, levels: int = 16, seed: int = 0):
        if levels < 1:
            raise CompressionError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self._rng = np.random.default_rng(seed)

    def bits_per_element(self) -> float:
        return 1.0 + math.ceil(math.log2(self.levels + 1))

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        norm = float(np.linalg.norm(flat))
        if norm == 0.0:
            quantized = np.zeros(flat.size, dtype=np.int32)
        else:
            scaled = np.abs(flat) / norm * self.levels
            floor = np.floor(scaled)
            prob = scaled - floor
            quantized = (floor + (self._rng.random(flat.size) < prob)
                         ).astype(np.int32)
        signs = np.sign(flat).astype(np.int8)
        wire = flat.size * self.bits_per_element() / 8.0 + FLOAT32_BYTES
        return Payload(
            arrays=(quantized, signs),
            wire_bytes=wire,
            shape=arr.shape,
            meta={"norm": norm},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        quantized, signs = payload.arrays
        norm = payload.meta["norm"]
        flat = norm * signs.astype(np.float64) * (
            quantized.astype(np.float64) / self.levels)
        return flat.reshape(payload.shape)


class TernGradCompressor(Compressor):
    """TernGrad: ternarize to ``s_t * {-1, 0, +1}`` with
    ``s_t = max|g|`` and stochastic keep-probability ``|g|/s_t``.

    Unbiased; 2 bits per element plus one fp32 scale.
    """

    name = "terngrad"
    all_reducible = False
    layerwise = True

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        scale = float(np.max(np.abs(flat)))
        if scale == 0.0:
            ternary = np.zeros(flat.size, dtype=np.int8)
        else:
            keep = self._rng.random(flat.size) < (np.abs(flat) / scale)
            ternary = (np.sign(flat) * keep).astype(np.int8)
        return Payload(
            arrays=(ternary,),
            wire_bytes=flat.size * 2.0 / 8.0 + FLOAT32_BYTES,
            shape=arr.shape,
            meta={"scale": scale},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        ternary = payload.arrays[0].astype(np.float64)
        return (payload.meta["scale"] * ternary).reshape(payload.shape)


class OneBitCompressor(Compressor):
    """1-bit SGD: quantize to one bit per coordinate around zero, carrying
    reconstruction means so the decode is the centroid of each half.

    Seide et al. pair this with error feedback; our aggregators add EF on
    top (the codec itself is stateless).
    """

    name = "onebit"
    all_reducible = False
    layerwise = True

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        positive = flat >= 0.0
        pos_mean = float(flat[positive].mean()) if positive.any() else 0.0
        neg_mean = float(flat[~positive].mean()) if (~positive).any() else 0.0
        packed = np.packbits(positive)
        return Payload(
            arrays=(packed,),
            wire_bytes=np.ceil(flat.size / 8.0) + 2.0 * FLOAT32_BYTES,
            shape=arr.shape,
            meta={"numel": float(flat.size), "pos_mean": pos_mean,
                  "neg_mean": neg_mean},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        numel = int(payload.meta["numel"])
        bits = np.unpackbits(payload.arrays[0], count=numel).astype(bool)
        flat = np.where(bits, payload.meta["pos_mean"], payload.meta["neg_mean"])
        return flat.reshape(payload.shape)
