"""Unit-conversion helpers."""

import pytest

from repro import units


class TestBandwidthConversions:
    def test_10_gbps_is_1_25_gigabytes(self):
        assert units.gbps_to_bytes_per_s(10) == pytest.approx(1.25e9)

    def test_round_trip(self):
        assert units.bytes_per_s_to_gbps(
            units.gbps_to_bytes_per_s(25)) == pytest.approx(25)

    def test_zero_allowed(self):
        assert units.gbps_to_bytes_per_s(0) == 0.0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.gbps_to_bytes_per_s(-1)
        with pytest.raises(ValueError):
            units.bytes_per_s_to_gbps(-1)


class TestTimeConversions:
    def test_ms_round_trip(self):
        assert units.seconds_from_ms(units.ms(0.25)) == pytest.approx(0.25)

    def test_us_round_trip(self):
        assert units.seconds_from_us(units.us(3e-5)) == pytest.approx(3e-5)

    def test_ms_scale(self):
        assert units.ms(1.5) == pytest.approx(1500.0)


class TestSizeConversions:
    def test_mib_round_trip(self):
        assert units.bytes_from_mib(units.mib(123456789)) == pytest.approx(
            123456789)

    def test_mb_is_decimal(self):
        # The paper quotes ResNet-50 as 97 MB: decimal megabytes.
        assert units.mb(97_000_000) == pytest.approx(97.0)

    def test_mib_is_binary(self):
        assert units.bytes_from_mib(25) == 25 * 1024 * 1024


class TestFlopsConversions:
    def test_tflops(self):
        assert units.tflops_to_flops(15.7) == pytest.approx(15.7e12)

    def test_gflops(self):
        assert units.gflops_to_flops(2.5) == pytest.approx(2.5e9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.tflops_to_flops(-1)
        with pytest.raises(ValueError):
            units.gflops_to_flops(-0.5)
