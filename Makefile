PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke trace-smoke serve-smoke cache-smoke advise-smoke examples

## tier-1: the fast unit/behaviour suite (benchmarks/ excluded)
test:
	$(PYTHON) -m pytest

## static checks: ruff (config in pyproject.toml, benchmarks/ excluded),
## docstring coverage of the public fault/engine/serving API, and the
## docs lint (dead links, stale cross-references, phantom CLI flags)
lint:
	ruff check src tests examples
	$(PYTHON) tools/check_docstrings.py
	$(PYTHON) tools/check_doc_links.py

## full-fidelity paper-exhibit regeneration (slow, opt-in); refreshes
## the simulator perf baseline (BENCH_simulator.json) first
bench:
	$(PYTHON) tools/bench_simulator.py
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## one fast figure through the parallel engine + result cache (a second
## invocation should report a ~100% cache hit rate), then the fast-path
## regression gate against the checked-in BENCH_simulator.json
bench-smoke:
	$(PYTHON) -m repro experiment fig7 --jobs 2 --cache .sim-cache
	$(PYTHON) tools/bench_simulator.py --check --smoke

## one tiny exhibit through the pooled engine with run tracing on, then
## validate the two observability artifacts it produced: the Perfetto
## trace (engine + worker-<pid> processes, span identity in args) and
## the Prometheus snapshot written beside the manifest
trace-smoke:
	rm -rf .trace-cache   # cold on purpose: a warm run executes no jobs,
	                      # so there would be no worker spans to validate
	$(PYTHON) -m repro experiment fig3 --jobs 2 --cache .trace-cache \
		--trace-run .trace-cache/run.json
	$(PYTHON) -m repro metrics --cache .trace-cache --format prom > /dev/null
	$(PYTHON) tools/check_trace.py --trace .trace-cache/run.json \
		--prom .trace-cache/metrics.prom

## boot a real `repro serve` on an ephemeral port and drive the service
## guarantees end to end: /healthz, whatif byte-parity with the offline
## `repro recommend`, coalescing of concurrent requests
## (serving_batch_occupancy > 1), a structured 429 for an over-quota
## tenant, and a /metrics page that passes the Prometheus validator
serve-smoke:
	$(PYTHON) tools/check_serving.py

## the auto-advisor end to end: a default `repro advise` run sweeping
## >= 1M configurations, byte-parity of sharded-parallel (--jobs 2)
## vs serial output, and a `POST /v1/advise` round trip whose rendered
## report matches the offline CLI byte-for-byte
advise-smoke:
	$(PYTHON) tools/check_advise.py

## the tiered-cache roundtrip on a real cache directory: a cold sweep
## populates packs, the same entries replayed from a legacy-era layout
## (all hits, same digest), `repro cache compact` + `verify`, a
## re-serve from the packed layout (same digest again), and a
## `repro serve --cache-preload` boot whose /healthz shows the hot
## tier warm before any request
cache-smoke:
	$(PYTHON) tools/check_cache.py

## run every example headlessly in smoke mode (trimmed protocols, <60 s
## total); CI runs this on every push
examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; \
		REPRO_EXAMPLES_SMOKE=1 $(PYTHON) $$f > /dev/null; \
	done
	@echo "all examples passed"
