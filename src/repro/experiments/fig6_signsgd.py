"""Figure 6: scalability of signSGD with majority vote.

signSGD encodes fast (~32x compression) but is not all-reducible, so its
communication and vote-decode both grow linearly with the worker count.
The paper's observations, which the benchmark asserts:

* at 96 GPUs on ResNet-101, signSGD needs ~1075 ms per iteration where
  syncSGD needs ~265 ms — a ~4x gap;
* BERT cannot scale past 32 GPUs (same linear memory growth as Top-K).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..compression.schemes import SignSGDScheme
from ..engine import ExperimentEngine
from .runner import PAPER_GPU_SWEEP, ExperimentResult
from .scaling import PAPER_WORKLOADS, run_scaling_sweep


def run_fig6(gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
             workloads=PAPER_WORKLOADS,
             iterations: int = 40, warmup: int = 5,
             seed: int = 0,
             engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Scaling sweep for signSGD vs syncSGD."""
    return run_scaling_sweep(
        experiment_id="fig6",
        title="signSGD (majority vote) scalability vs syncSGD",
        schemes=[SignSGDScheme()],
        workloads=workloads,
        gpu_counts=gpu_counts,
        iterations=iterations,
        warmup=warmup,
        seed=seed,
        engine=engine,
    )
