"""Figure 2: communication overlapping computation in one backward pass.

The paper's Figure 2 is an Nsight trace of a single iteration showing
bucket all-reduces proceeding on a separate CUDA stream while the
backward pass continues, with only the last bucket waiting.  We
regenerate it from the simulator: one row per gradient bucket with its
ready/start/end instants and whether it was fully hidden under
computation, plus the headline overlap statistics the figure
illustrates.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..hardware import cluster_for_gpus
from ..models import get_model
from ..simulator import COMM_STREAM, DDPConfig, DDPSimulator
from .runner import ExperimentResult


def run_fig2(model_name: str = "resnet50", num_gpus: int = 32,
             batch_size: int = 64) -> ExperimentResult:
    """One jitter-free iteration's bucket-level timeline."""
    model = get_model(model_name)
    sim = DDPSimulator(model, cluster_for_gpus(num_gpus),
                       config=DDPConfig(compute_jitter=0.0,
                                        comm_jitter=0.0))
    trace = sim.simulate_iteration(batch_size, np.random.default_rng(0))

    rows: List[Dict[str, Any]] = []
    for span in trace.stream_spans(COMM_STREAM):
        hidden = span.end <= trace.backward_end
        rows.append({
            "bucket": span.label,
            "start_ms": span.start * 1e3,
            "end_ms": span.end * 1e3,
            "duration_ms": span.duration * 1e3,
            "fully_hidden": hidden,
        })

    overlap = trace.compute_comm_overlap()
    comm_total = trace.stream_busy_time(COMM_STREAM)
    notes = (
        f"backward: {(trace.backward_end - trace.forward_end) * 1e3:.1f} ms,"
        f" communication: {comm_total * 1e3:.1f} ms,"
        f" hidden under compute: {overlap / comm_total:.0%}"
        if comm_total > 0 else "single worker: no communication",
        "ascii timeline:\n" + trace.render_ascii(),
    )
    return ExperimentResult(
        experiment_id="fig2",
        title=(f"Gradient communication overlapping computation "
               f"({model_name}, {num_gpus} GPUs, batch {batch_size})"),
        columns=("bucket", "start_ms", "end_ms", "duration_ms",
                 "fully_hidden"),
        rows=tuple(rows),
        notes=notes,
    )
