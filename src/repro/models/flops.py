"""FLOP accounting helpers for the model zoo.

Conventions (shared by the whole library):

* one multiply-accumulate counts as **2 FLOPs**;
* forward FLOPs are per *sample* (the batch multiplies in later);
* the backward pass of a layer costs **2x** its forward pass (one
  matmul-shaped pass for the input gradient, one for the weight gradient),
  the standard approximation used by performance studies of DNN training.
"""

from __future__ import annotations

from ..errors import ConfigurationError

#: Backward-to-forward FLOP ratio for trainable layers.
BACKWARD_FLOP_RATIO = 2.0


def conv2d_flops(in_channels: int, out_channels: int, kernel: int,
                 out_h: int, out_w: int, groups: int = 1) -> float:
    """Forward FLOPs of a 2D convolution for one sample.

    ``2 * K*K * (Cin/groups) * Cout * Hout * Wout``.
    """
    _check_positive(in_channels=in_channels, out_channels=out_channels,
                    kernel=kernel, out_h=out_h, out_w=out_w, groups=groups)
    if in_channels % groups or out_channels % groups:
        raise ConfigurationError(
            f"channels ({in_channels}, {out_channels}) not divisible by "
            f"groups={groups}")
    return 2.0 * kernel * kernel * (in_channels // groups) * out_channels * out_h * out_w


def linear_flops(in_features: int, out_features: int, tokens: int = 1) -> float:
    """Forward FLOPs of a dense layer applied to ``tokens`` positions."""
    _check_positive(in_features=in_features, out_features=out_features,
                    tokens=tokens)
    return 2.0 * in_features * out_features * tokens


def attention_flops(seq_len: int, hidden: int, num_heads: int) -> float:
    """Forward FLOPs of the score/weighted-sum part of self-attention.

    Covers ``QK^T`` and ``softmax(..)V`` (``2 * 2 * L^2 * H`` total); the
    Q/K/V/output projections are ordinary linear layers and accounted
    separately.  ``num_heads`` does not change the FLOP count (heads
    partition the hidden dimension) but is validated for sanity.
    """
    _check_positive(seq_len=seq_len, hidden=hidden, num_heads=num_heads)
    if hidden % num_heads:
        raise ConfigurationError(
            f"hidden={hidden} not divisible by num_heads={num_heads}")
    return 2.0 * 2.0 * seq_len * seq_len * hidden


def norm_flops(num_features: int, positions: int = 1) -> float:
    """Forward FLOPs of a batch/layer-norm over ``positions`` locations.

    Normalization is memory-bound; we charge ~8 FLOPs per element so the
    compute model does not treat it as free.
    """
    _check_positive(num_features=num_features, positions=positions)
    return 8.0 * num_features * positions


def pool_flops(channels: int, out_h: int, out_w: int, kernel: int) -> float:
    """Forward FLOPs of a pooling layer (one op per element in window)."""
    _check_positive(channels=channels, out_h=out_h, out_w=out_w, kernel=kernel)
    return float(channels * out_h * out_w * kernel * kernel)


def _check_positive(**kwargs: float) -> None:
    for key, value in kwargs.items():
        if value <= 0:
            raise ConfigurationError(f"{key} must be > 0, got {value}")
