"""Sweep execution: fan simulation jobs out over processes, memoize.

The paper's methodology (§6) and every scaling figure reduce to the
same shape of work: a grid of independent ``DDPSimulator.run`` calls —
model × scheme × cluster, 110 iterations each.  The grid is
embarrassingly parallel and heavily redundant across figures (the
syncSGD baseline of Figure 4 is the same simulation as the baseline of
Figures 5 and 6), so the engine does two things:

* **fan-out** — cache misses run on a ``concurrent.futures`` process
  pool (``jobs`` workers); results come back in submission order, so a
  parallel sweep produces *identical* rows to the serial one (every job
  carries its own seed and owns its simulator);
* **memoization** — outcomes (timings *and* deterministic OOMs) are
  stored in a content-addressed :class:`SimulationCache` keyed by the
  fingerprint of everything that determines them (see
  :mod:`repro.engine.fingerprint`).

``ExperimentEngine()`` with no arguments is a serial, cache-less
drop-in for the old inline loops, which is what experiment runners
default to when no engine is passed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..compression.kernel_cost import KernelProfile
from ..compression.schemes import Scheme
from ..errors import ConfigurationError, OutOfMemoryError
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..simulator import DDPConfig, DDPSimulator, TimingResult
from .cache import CacheStats, SimulationCache
from .fingerprint import (
    FINGERPRINT_VERSION,
    cluster_fingerprint,
    config_fingerprint,
    digest,
    fabric_fingerprint,
    model_fingerprint,
    profile_fingerprint,
    scheme_fingerprint,
)


@dataclass(frozen=True, eq=False)
class SimJob:
    """One fully-specified ``DDPSimulator.run`` invocation.

    Attributes mirror the simulator's constructor plus ``run``'s
    protocol arguments; ``None`` fields mean "the simulator's default"
    and fingerprint as such.
    """

    model: ModelSpec
    cluster: ClusterConfig
    scheme: Optional[Scheme] = None
    fabric: Optional[Fabric] = None
    config: Optional[DDPConfig] = None
    profile: Optional[KernelProfile] = None
    batch_size: Optional[int] = None
    iterations: int = 110
    warmup: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations <= self.warmup:
            raise ConfigurationError(
                f"iterations ({self.iterations}) must exceed warmup "
                f"({self.warmup})")

    def fingerprint(self) -> str:
        """Content hash identifying this job's outcome."""
        return digest({
            "version": FINGERPRINT_VERSION,
            "model": model_fingerprint(self.model),
            "cluster": cluster_fingerprint(self.cluster),
            "scheme": scheme_fingerprint(self.scheme),
            "fabric": fabric_fingerprint(self.fabric),
            "config": config_fingerprint(self.config),
            "profile": profile_fingerprint(self.profile),
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "seed": self.seed,
        })

    def build_simulator(self) -> DDPSimulator:
        return DDPSimulator(
            self.model, self.cluster, scheme=self.scheme,
            fabric=self.fabric, config=self.config,
            kernel_profile=self.profile)

    def describe(self) -> str:
        scheme_label = self.scheme.label if self.scheme else "syncsgd"
        return (f"{self.model.name} x {scheme_label} @ "
                f"{self.cluster.world_size} GPUs")


@dataclass
class JobOutcome:
    """What one job produced: a timing result or a deterministic OOM."""

    job: SimJob
    result: Optional[TimingResult] = None
    oom: Optional[OutOfMemoryError] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    def unwrap(self) -> TimingResult:
        """The result, or re-raise the OOM the simulation hit."""
        if self.oom is not None:
            raise self.oom
        assert self.result is not None
        return self.result


def _execute_job(job: SimJob) -> Tuple[str, object]:
    """Process-pool entry point: run one job, tag the outcome.

    OOM is data (the sweep reports it as a row), so it travels back as a
    value instead of an exception; anything else propagates and fails
    the sweep loudly.
    """
    sim = job.build_simulator()
    try:
        result = sim.run(job.batch_size, iterations=job.iterations,
                         warmup=job.warmup, seed=job.seed)
    except OutOfMemoryError as exc:
        return ("oom", (str(exc), exc.required_bytes, exc.budget_bytes))
    return ("ok", result)


def _outcome_from_tagged(job: SimJob, tagged: Tuple[str, object],
                         cached: bool = False) -> JobOutcome:
    kind, payload = tagged
    if kind == "oom":
        message, required, budget = payload  # type: ignore[misc]
        return JobOutcome(job=job, oom=OutOfMemoryError(
            message, required_bytes=required, budget_bytes=budget),
            cached=cached)
    return JobOutcome(job=job, result=payload, cached=cached)  # type: ignore[arg-type]


class ExperimentEngine:
    """Runs batches of :class:`SimJob` with optional parallelism and
    an optional result cache.

    Attributes:
        jobs: Worker process count; 1 (the default) runs in-process.
        cache: A :class:`SimulationCache`, or ``None`` to recompute
            everything.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[SimulationCache] = None):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Simulations actually executed (cache misses) over the
        #: engine's lifetime.
        self.executed = 0
        #: Wall-clock seconds spent inside ``run_outcomes``.
        self.busy_s = 0.0

    # ----- execution ---------------------------------------------------------

    def run_outcomes(self, batch: Sequence[SimJob]) -> List[JobOutcome]:
        """Run every job; outcomes come back in input order.

        Cache hits are served without simulating; misses run serially
        or on the process pool, then populate the cache.
        """
        start = time.perf_counter()
        outcomes: List[Optional[JobOutcome]] = [None] * len(batch)
        miss_indices: List[int] = []
        keys: List[Optional[str]] = [None] * len(batch)

        if self.cache is not None:
            for i, job in enumerate(batch):
                key = job.fingerprint()
                keys[i] = key
                hit = self.cache.get(key)
                if hit is None:
                    miss_indices.append(i)
                elif isinstance(hit, OutOfMemoryError):
                    outcomes[i] = JobOutcome(job=job, oom=hit, cached=True)
                else:
                    outcomes[i] = JobOutcome(job=job, result=hit,
                                             cached=True)
        else:
            miss_indices = list(range(len(batch)))

        miss_jobs = [batch[i] for i in miss_indices]
        if miss_jobs:
            if self.jobs > 1 and len(miss_jobs) > 1:
                workers = min(self.jobs, len(miss_jobs),
                              (os.cpu_count() or 1))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    tagged_results = list(pool.map(_execute_job, miss_jobs))
            else:
                tagged_results = [_execute_job(job) for job in miss_jobs]
            self.executed += len(miss_jobs)
            for i, tagged in zip(miss_indices, tagged_results):
                outcome = _outcome_from_tagged(batch[i], tagged)
                outcomes[i] = outcome
                if self.cache is not None:
                    key = keys[i]
                    assert key is not None
                    self.cache.put(
                        key, outcome.result if outcome.ok
                        else outcome.oom)  # type: ignore[arg-type]

        self.busy_s += time.perf_counter() - start
        return [o for o in outcomes if o is not None]

    def run(self, job: SimJob) -> TimingResult:
        """Run one job; raises the stored OOM like the raw simulator."""
        return self.run_outcomes([job])[0].unwrap()

    # ----- statistics --------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """The cache's counters (zeros when no cache is attached)."""
        return (self.cache.stats if self.cache is not None
                else CacheStats())
