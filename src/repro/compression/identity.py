"""Uncompressed and half-precision codecs.

``fp32`` is the syncSGD baseline: no compression, associative mean,
all-reduce.  ``fp16`` is the "just communicate at half precision" option
the paper's first finding recommends as often sufficient (2x reduction,
near-zero encode cost, fully all-reducible).
"""

from __future__ import annotations

import numpy as np

from ..units import FLOAT16_BYTES, FLOAT32_BYTES
from .base import Compressor, Payload


class FP32Compressor(Compressor):
    """Identity codec: the gradient itself (the syncSGD baseline)."""

    name = "fp32"
    all_reducible = True
    layerwise = True

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        return Payload(
            arrays=(arr.copy(),),
            wire_bytes=float(arr.size * FLOAT32_BYTES),
            shape=arr.shape,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        return payload.arrays[0].reshape(payload.shape).copy()


class FP16Compressor(Compressor):
    """Cast to half precision for the wire; decode back to fp32.

    Values outside fp16 range saturate to the largest finite half, as a
    real mixed-precision all-reduce would (gradients at sane scales never
    get near it).
    """

    name = "fp16"
    all_reducible = True
    layerwise = True

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        finfo = np.finfo(np.float16)
        half = np.clip(arr, finfo.min, finfo.max).astype(np.float16)
        return Payload(
            arrays=(half,),
            wire_bytes=float(arr.size * FLOAT16_BYTES),
            shape=arr.shape,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        return payload.arrays[0].astype(np.float64).reshape(payload.shape)
