"""Figure 5: scalability of Top-K sparsification.

Top-K at 1 %, 10 % and 20 % density against syncSGD.  The paper's
observations, which the benchmark asserts:

* even at 1 % density (99 % of coordinates dropped) Top-K never beats
  syncSGD — encode time plus all-gather kill it;
* BERT cannot scale past 32 GPUs: the gather working set grows linearly
  with the worker count and runs out of GPU memory.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..compression.schemes import TopKScheme
from ..engine import ExperimentEngine
from .runner import PAPER_GPU_SWEEP, ExperimentResult
from .scaling import PAPER_WORKLOADS, run_scaling_sweep

#: The densities the figure sweeps.
FIG5_FRACTIONS: Tuple[float, ...] = (0.01, 0.10, 0.20)


def run_fig5(gpu_counts: Sequence[int] = PAPER_GPU_SWEEP,
             workloads=PAPER_WORKLOADS,
             iterations: int = 40, warmup: int = 5,
             seed: int = 0,
             engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Scaling sweep for Top-K 1/10/20 % vs syncSGD."""
    return run_scaling_sweep(
        experiment_id="fig5",
        title="Top-K scalability vs syncSGD",
        schemes=[TopKScheme(fraction=f) for f in FIG5_FRACTIONS],
        workloads=workloads,
        gpu_counts=gpu_counts,
        iterations=iterations,
        warmup=warmup,
        seed=seed,
        engine=engine,
    )
