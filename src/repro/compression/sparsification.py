"""Sparsification compressors: Top-K [7], Random-K [65], DGC [39].

Top-K keeps the ``k`` largest-magnitude coordinates.  Different workers
select different indices, so payloads cannot be summed — aggregation needs
an all-gather (Table 1: not all-reducible, hence the §3.2 scalability
cliff).

Random-K with a *shared* seed makes every worker select the same random
index set, so the value vectors align and can be ring-all-reduced —
Table 1 classifies Random-K as all-reduce compatible but *not* layer-wise
(the shared random draw is made over the whole flat gradient).

DGC communicates coordinates whose magnitude exceeds a threshold chosen
per step from a sampled quantile, with local gradient accumulation of the
rest (a momentum-corrected error feedback).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import CompressionError
from ..units import FLOAT32_BYTES, INT32_BYTES, INT64_BYTES
from .base import AggregationResult, Aggregator, Compressor, Payload
from .error_feedback import ErrorFeedback


def _index_bytes(numel: int) -> int:
    """int32 indices cover tensors up to 2^31 elements, int64 beyond."""
    return INT32_BYTES if numel < 2**31 else INT64_BYTES


def _check_fraction(fraction: float) -> float:
    if not 0.0 < fraction <= 1.0:
        raise CompressionError(
            f"fraction must be in (0, 1], got {fraction}")
    return fraction


def _num_selected(numel: int, fraction: float) -> int:
    return max(1, int(round(numel * fraction)))


class TopKCompressor(Compressor):
    """Keep the top ``fraction`` of coordinates by absolute value.

    Payload is ``(values, indices)``; wire size counts 4 bytes per value
    plus 4 (or 8) bytes per index — sending *indices doubles the cost per
    kept coordinate*, one of the overheads the paper's Top-K model
    (two ``T_comm`` terms) accounts for.
    """

    name = "topk"
    all_reducible = False
    layerwise = True

    def __init__(self, fraction: float = 0.01):
        self.fraction = _check_fraction(fraction)

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        k = _num_selected(flat.size, self.fraction)
        # argpartition is O(n); full sorting is unnecessary for selection.
        idx = np.argpartition(np.abs(flat), flat.size - k)[-k:]
        idx = np.sort(idx)
        values = flat[idx]
        return Payload(
            arrays=(values, idx.astype(np.int64)),
            wire_bytes=float(k * (FLOAT32_BYTES + _index_bytes(flat.size))),
            shape=arr.shape,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        values, idx = payload.arrays
        out = np.zeros(int(np.prod(payload.shape)), dtype=np.float64)
        out[idx] = values
        return out.reshape(payload.shape)


class RandomKCompressor(Compressor):
    """Keep a random ``fraction`` of coordinates, chosen by a seed shared
    across workers and advanced every round.

    Because all workers agree on the index set, only the values travel
    and they can be summed by all-reduce.  The kept values are scaled by
    ``1/fraction`` so the estimator is unbiased.
    """

    name = "randomk"
    all_reducible = True
    layerwise = False

    def __init__(self, fraction: float = 0.01, seed: int = 0):
        self.fraction = _check_fraction(fraction)
        self.seed = seed
        self._round = 0

    def advance_round(self) -> None:
        """Move to the next shared random draw (call once per step)."""
        self._round += 1

    def _indices(self, numel: int) -> np.ndarray:
        k = _num_selected(numel, self.fraction)
        rng = np.random.default_rng((self.seed, self._round, numel))
        return np.sort(rng.choice(numel, size=k, replace=False))

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        idx = self._indices(flat.size)
        values = flat[idx] / self.fraction
        return Payload(
            arrays=(values,),
            wire_bytes=float(values.size * FLOAT32_BYTES),
            shape=arr.shape,
            meta={"round": float(self._round)},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        numel = int(np.prod(payload.shape))
        idx = self._indices(numel)
        out = np.zeros(numel, dtype=np.float64)
        out[idx] = payload.arrays[0]
        return out.reshape(payload.shape)


class DGCCompressor(Compressor):
    """Deep Gradient Compression-style threshold sparsification.

    The threshold is the ``1 - fraction`` quantile of a random sample of
    the magnitudes (sampling the whole tensor is what makes exact Top-K
    expensive; DGC's sampled threshold trades exactness for speed, so the
    actual density fluctuates around ``fraction``).
    """

    name = "dgc"
    all_reducible = False
    layerwise = True

    #: Fraction of coordinates sampled to estimate the threshold.
    SAMPLE_FRACTION = 0.01

    def __init__(self, fraction: float = 0.001, seed: int = 0):
        self.fraction = _check_fraction(fraction)
        self._rng = np.random.default_rng(seed)

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        magnitudes = np.abs(flat)
        sample_size = max(64, int(flat.size * self.SAMPLE_FRACTION))
        sample_size = min(sample_size, flat.size)
        sample_idx = self._rng.choice(flat.size, size=sample_size, replace=False)
        threshold = np.quantile(magnitudes[sample_idx], 1.0 - self.fraction)
        idx = np.flatnonzero(magnitudes >= threshold)
        if idx.size == 0:  # degenerate all-equal tensors
            idx = np.array([int(np.argmax(magnitudes))])
        values = flat[idx]
        return Payload(
            arrays=(values, idx.astype(np.int64)),
            wire_bytes=float(
                idx.size * (FLOAT32_BYTES + _index_bytes(flat.size))),
            shape=arr.shape,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        values, idx = payload.arrays
        out = np.zeros(int(np.prod(payload.shape)), dtype=np.float64)
        out[idx] = values
        return out.reshape(payload.shape)


class SparseGatherAggregator(Aggregator):
    """Aggregation for non-all-reducible sparsifiers (Top-K, DGC).

    Each worker encodes with error feedback, payloads are all-gathered,
    every worker decodes all ``p`` of them and averages.  Error feedback
    keeps what the worker's own selection dropped.
    """

    name = "sparse-gather"
    all_reducible = False

    def __init__(self, num_workers: int, codec: Compressor,
                 use_error_feedback: bool = True):
        super().__init__(num_workers)
        if codec.all_reducible:
            raise CompressionError(
                f"{codec.name} is all-reducible; use MeanAllReduceAggregator")
        self.codec = codec
        self.error_feedback: Optional[ErrorFeedback] = (
            ErrorFeedback(num_workers) if use_error_feedback else None)

    def step(self, worker_grads: Sequence[np.ndarray]) -> AggregationResult:
        grads = self._check_round(worker_grads)
        decoded = []
        sent = 0.0
        for rank, grad in enumerate(grads):
            if self.error_feedback is not None:
                corrected = self.error_feedback.corrected(rank, grad)
            else:
                corrected = grad
            payload = self.codec.encode(corrected)
            approx = self.codec.decode(payload)
            if self.error_feedback is not None:
                self.error_feedback.store(rank, corrected - approx)
            decoded.append(approx)
            sent = max(sent, payload.wire_bytes)
        update = np.mean(decoded, axis=0)
        return AggregationResult(
            update=update,
            bytes_sent_per_worker=sent,
            bytes_received_per_worker=sent * (self.num_workers - 1),
            messages=2,  # values and indices travel as separate buffers
            collective="allgather",
        )


class MeanAllReduceAggregator(Aggregator):
    """Aggregation for all-reducible codecs (fp32, fp16, Random-K).

    Payload arrays align across workers, so they are summed with the ring
    all-reduce and decoded once.  Bytes received per worker is the same as
    sent — the constant-in-``p`` behaviour that makes these methods scale.
    """

    name = "mean-allreduce"
    all_reducible = True

    def __init__(self, num_workers: int, codec: Compressor):
        super().__init__(num_workers)
        if not codec.all_reducible:
            raise CompressionError(
                f"{codec.name} is not all-reducible; use a gather aggregator")
        self.codec = codec

    def step(self, worker_grads: Sequence[np.ndarray]) -> AggregationResult:
        from ..collectives import ring_allreduce  # local import avoids cycle

        grads = self._check_round(worker_grads)
        payloads = [self.codec.encode(g) for g in grads]
        value_arrays = [p.arrays[0].astype(np.float64) for p in payloads]
        summed = ring_allreduce(value_arrays)[0]
        mean_payload = Payload(
            arrays=(summed / self.num_workers,),
            wire_bytes=payloads[0].wire_bytes,
            shape=payloads[0].shape,
            meta=dict(payloads[0].meta),
        )
        update = self.codec.decode(mean_payload)
        if isinstance(self.codec, RandomKCompressor):
            self.codec.advance_round()
        wire = payloads[0].wire_bytes
        return AggregationResult(
            update=update,
            bytes_sent_per_worker=wire,
            bytes_received_per_worker=wire,
            messages=1,
            collective="ring_allreduce",
        )
