"""Data-parallel training through real compression aggregators.

This wires together the numeric substrate: ``num_workers`` logical workers
each hold a shard of the data, compute *real* gradients on a shared model
replica, and aggregate them through the *actual* compressor +
error-feedback + collective machinery of :mod:`repro.compression`.  The
result is the end-to-end convergence validation the timing study takes for
granted: fp32 aggregation is bit-equivalent to large-batch SGD, error
feedback rescues biased compressors, signSGD needs its own learning-rate
regime, and so on.

It also tracks wire traffic, so examples can report the accuracy-vs-bytes
trade-off alongside the simulator's time predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..compression import Aggregator, make_aggregator
from ..errors import ConfigurationError
from .data import Dataset
from .nn import MLP, Grads, MLPConfig
from .optim import SGD, Optimizer


@dataclass
class TrainHistory:
    """Per-step records of a distributed training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    bytes_sent_per_worker: float = 0.0
    bytes_received_per_worker: float = 0.0
    steps: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ConfigurationError("no steps recorded")
        return self.losses[-1]

    @property
    def final_accuracy(self) -> float:
        if not self.accuracies:
            raise ConfigurationError("no accuracy recorded")
        return self.accuracies[-1]


class DistributedTrainer:
    """Synchronous data-parallel trainer over logical workers.

    One :class:`~repro.compression.Aggregator` instance is created per
    model parameter (the granularity real per-layer hooks use), so
    stateful methods (error feedback, PowerSGD warm start) keep their
    state per tensor, as the reference implementations do.
    """

    def __init__(self, model: MLP, dataset: Dataset, num_workers: int,
                 method: str = "fp32",
                 method_params: Optional[Dict] = None,
                 lr: float = 0.1, seed: int = 0,
                 optimizer: Optional[Optimizer] = None):
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}")
        if dataset.num_samples < num_workers:
            raise ConfigurationError(
                f"dataset of {dataset.num_samples} samples cannot shard "
                f"across {num_workers} workers")
        self.model = model
        self.dataset = dataset
        self.num_workers = num_workers
        self.method = method
        self.lr = lr
        self.seed = seed
        self.optimizer = optimizer if optimizer is not None else SGD(lr)
        self.shards = [dataset.shard(r, num_workers)
                       for r in range(num_workers)]
        params = dict(method_params or {})
        self.aggregators: Dict[str, Aggregator] = {
            name: make_aggregator(method, num_workers, **params)
            for name in model.param_names()
        }

    def _worker_grads(self, batch_size: int, step: int,
                      ) -> (float, List[Grads]):
        """Each worker computes gradients on its own mini-batch."""
        losses = []
        all_grads: List[Grads] = []
        for rank, shard in enumerate(self.shards):
            rng = np.random.default_rng((self.seed, step, rank))
            idx = rng.choice(shard.num_samples,
                             size=min(batch_size, shard.num_samples),
                             replace=False)
            loss, grads = self.model.loss_and_grads(shard.x[idx],
                                                    shard.y[idx])
            losses.append(loss)
            all_grads.append(grads)
        return float(np.mean(losses)), all_grads

    def step(self, batch_size: int, step_index: int,
             history: TrainHistory) -> float:
        """One synchronous step: shard-local gradients, per-parameter
        compressed aggregation, shared update."""
        loss, worker_grads = self._worker_grads(batch_size, step_index)
        updates: Grads = {}
        for name, aggregator in self.aggregators.items():
            result = aggregator.step(
                [grads[name] for grads in worker_grads])
            updates[name] = result.update
            history.bytes_sent_per_worker += result.bytes_sent_per_worker
            history.bytes_received_per_worker += (
                result.bytes_received_per_worker)
        self.optimizer.step(self.model.params, updates)
        return loss

    def train(self, steps: int, batch_size: int = 32,
              eval_every: int = 10) -> TrainHistory:
        """Run ``steps`` synchronous iterations; returns the history."""
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        if eval_every < 1:
            raise ConfigurationError(
                f"eval_every must be >= 1, got {eval_every}")
        history = TrainHistory()
        for step_index in range(steps):
            loss = self.step(batch_size, step_index, history)
            history.losses.append(loss)
            history.steps += 1
            if step_index % eval_every == 0 or step_index == steps - 1:
                history.accuracies.append(
                    self.model.accuracy(self.dataset.x, self.dataset.y))
        return history


def train_with_method(dataset: Dataset, method: str = "fp32",
                      method_params: Optional[Dict] = None,
                      hidden_dims: Sequence[int] = (32, 32),
                      num_workers: int = 4, steps: int = 100,
                      batch_size: int = 32, lr: float = 0.1,
                      seed: int = 0,
                      optimizer: Optional[Optimizer] = None) -> TrainHistory:
    """Convenience wrapper: build an MLP for ``dataset`` and train it
    data-parallel with the named compression method."""
    model = MLP(MLPConfig(
        input_dim=dataset.num_features,
        hidden_dims=tuple(hidden_dims),
        num_classes=dataset.num_classes,
        seed=seed,
    ))
    trainer = DistributedTrainer(
        model, dataset, num_workers, method=method,
        method_params=method_params, lr=lr, seed=seed,
        optimizer=optimizer)
    return trainer.train(steps=steps, batch_size=batch_size)
