"""Discrete-event simulation of one data-parallel training iteration.

Implements the mechanisms PyTorch DDP / Horovod use and the paper's §2.2
describes:

* **gradient bucketing** — gradients are grouped into ~25 MB buckets in
  backward order; all-reduce launches per bucket;
* **communication/computation overlap** — bucket all-reduces run on a
  separate stream while the backward pass continues; the backward is
  stretched by the contention factor γ (> 1) while overlap is active;
* **the un-overlappable last bucket** — the final bucket only becomes
  ready when the backward pass ends, the ``T_comm(b̂)`` term;
* **compression execution** — per the paper's §3.1 finding, compression
  runs *sequentially after* the backward pass by default (encode →
  collective(s) → decode); the overlapped mode of Figure 3, where encode
  work interleaves with the backward under a compute-contention penalty,
  is available via :attr:`DDPConfig.overlap_compression`;
* **all-gather fallback** — non-all-reducible schemes pay the
  linear-in-p all-gather, including the fabric's incast degradation
  (which the analytic model deliberately omits);
* **memory accounting** — gather-based schemes stack decoded payloads;
  when ``stack_bytes * p`` plus the training footprint exceeds GPU
  memory, the simulated run raises :class:`~repro.errors.OutOfMemoryError`
  exactly where the paper's BERT runs died beyond 32 GPUs.

Every iteration yields an :class:`~repro.simulator.trace.IterationTrace`
whose ``sync_time()`` is the paper's reported per-iteration metric
("time for gradient computation and synchronization").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives import (
    allgather_time,
    double_tree_allreduce_time,
    hierarchical_allreduce_time,
    parameter_server_time,
    ring_allreduce_time,
)
from ..compute import ComputeModel
from ..errors import ConfigurationError, OutOfMemoryError, SimulationError
from ..faults import FAULT_STREAM, FaultInjector, FaultSchedule, IterationFaults
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme, SchemeCost, SyncSGDScheme
from ..telemetry.metrics import get_registry
from ..telemetry.tracing import get_tracer
from ..units import MIB
from .events import EventQueue
from .trace import COMM_STREAM, COMPUTE_STREAM, IterationTrace, Span

#: Execution schemes :meth:`DDPSimulator.run` accepts.  ``"event"`` is
#: the per-iteration event-queue loop above; ``"batch"`` is the
#: vectorized NumPy kernel in :mod:`repro.simulator.batch` (bit-identical
#: results, no per-iteration Python loop); ``"auto"`` picks the fast
#: path whenever it is available.
SIM_MODES = ("auto", "event", "batch")

#: Why ``mode="auto"`` falls back to the event path, keyed by the slug
#: :meth:`DDPSimulator.batch_fallback_reason` returns.  Empty: fault
#: schedules are applied as array masks, and span-level traces are
#: reconstructed from kernel intermediates
#: (:mod:`repro.simulator.reconstruct`), so the fast path serves every
#: run.  The table stays so a future structural limitation has a
#: place to register itself (and the CLI reporting around it keeps
#: working).
FALLBACK_REASONS: Dict[str, str] = {}


@dataclass(frozen=True)
class DDPConfig:
    """Knobs of the simulated DDP engine.

    Attributes:
        bucket_cap_bytes: Gradient bucket capacity (PyTorch default 25 MB).
        overlap_communication: Launch bucket all-reduces during backward
            (the DDP optimization; disable for the no-overlap ablation).
        gamma: Backward-pass stretch factor while communication overlaps
            (> 1; the paper measures it from Nsight traces).
        overlap_compression: Run compression concurrently with backward
            (Figure 3's losing strategy) instead of sequentially after it.
        contention_penalty: Combined-stream stretch when compression and
            backward share the GPU (> 1; §3.1's resource contention).
            Calibrated to 1.4 so that all three of the paper's Figure 3
            methods — including signSGD, whose encode is nearly free —
            come out slower overlapped than sequential, as measured.
        allreduce_algorithm: ``"ring"`` (the paper forces this via
            NCCL_TREE_THRESHOLD=0), ``"double_tree"``, ``"hierarchical"``
            (NVLink reduce within the node, ring across nodes — NCCL's
            multi-GPU-node strategy), or ``"parameter_server"`` (the
            central topology all-reduce displaced, §2.2 — incl. the
            server NIC's incast).
        hook_overhead_per_layer_s: Framework integration cost per
            trainable layer when a compression hook runs: extracting the
            gradient, reshaping, copying the decompressed result back.
            The paper's Table 2 explicitly *excludes* this ("we disregard
            the time for extracting gradients, or copying back"), but the
            measured end-to-end runs pay it — the simulator charges it on
            the compressed execution paths only.
        compute_jitter: Lognormal sigma on compute spans.
        comm_jitter: Lognormal sigma on communication spans (networks are
            noisier than GPUs; the paper's error bars are wide).
        check_memory: Enforce the GPU memory budget.
    """

    bucket_cap_bytes: float = 25 * MIB
    overlap_communication: bool = True
    gamma: float = 1.10
    overlap_compression: bool = False
    contention_penalty: float = 1.4
    allreduce_algorithm: str = "ring"
    hook_overhead_per_layer_s: float = 6e-5
    compute_jitter: float = 0.015
    comm_jitter: float = 0.05
    check_memory: bool = True

    def __post_init__(self) -> None:
        if self.bucket_cap_bytes <= 0:
            raise ConfigurationError("bucket_cap_bytes must be > 0")
        if self.gamma < 1.0:
            raise ConfigurationError(
                f"gamma must be >= 1 (it is a slowdown), got {self.gamma}")
        if self.contention_penalty < 1.0:
            raise ConfigurationError(
                f"contention_penalty must be >= 1, got {self.contention_penalty}")
        if self.allreduce_algorithm not in ("ring", "double_tree",
                                            "hierarchical",
                                            "parameter_server"):
            raise ConfigurationError(
                f"unknown allreduce algorithm {self.allreduce_algorithm!r}")
        if self.hook_overhead_per_layer_s < 0:
            raise ConfigurationError(
                "hook_overhead_per_layer_s must be >= 0")
        if self.compute_jitter < 0 or self.comm_jitter < 0:
            raise ConfigurationError("jitter sigmas must be >= 0")


@dataclass(frozen=True)
class TimingResult:
    """Statistics over simulated iterations (after warm-up discard).

    ``sync_times`` holds the paper's metric per iteration; ``mean``/
    ``std`` summarize it, matching the paper's 110-iterations-drop-10
    methodology.
    """

    model: str
    scheme: str
    world_size: int
    batch_size: int
    sync_times: Tuple[float, ...]
    iteration_times: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.sync_times))

    @property
    def std(self) -> float:
        return float(np.std(self.sync_times))

    @property
    def mean_iteration(self) -> float:
        return float(np.mean(self.iteration_times))


class DDPSimulator:
    """Simulates data-parallel training of one model on one cluster."""

    def __init__(self, model: ModelSpec, cluster: ClusterConfig,
                 scheme: Optional[Scheme] = None,
                 fabric: Optional[Fabric] = None,
                 config: Optional[DDPConfig] = None,
                 kernel_profile: Optional[KernelProfile] = None,
                 faults: Optional[FaultSchedule] = None):
        self.model = model
        self.cluster = cluster
        self.scheme: Scheme = scheme if scheme is not None else SyncSGDScheme()
        self.fabric = fabric if fabric is not None else Fabric(cluster)
        if self.fabric.cluster is not cluster and (
                self.fabric.cluster.num_nodes != cluster.num_nodes
                or self.fabric.cluster.instance.name != cluster.instance.name):
            raise ConfigurationError(
                "fabric was built for a different cluster")
        self.config = config if config is not None else DDPConfig()
        self.profile = (kernel_profile if kernel_profile is not None
                        else v100_kernel_profile())
        self.compute = ComputeModel(model, cluster.gpu)
        self._is_baseline = isinstance(self.scheme, SyncSGDScheme)
        self.faults = faults
        # An empty schedule is the identity — no injector, so the code
        # path (and therefore the RNG stream and every cache key) is
        # exactly the fault-free one.
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults, cluster, self.fabric)
            if faults is not None and not faults.is_empty else None)
        #: Public handle on the fault injector (``None`` when the run
        #: is fault-free); the CLI prints its post-run summary.
        self.injector = self._injector
        # Per-simulator caches for the 110-iteration hot loop: the scheme
        # cost, the DDP bucket plan and the un-jittered backward layer
        # times depend only on construction-time state, so they are
        # computed once instead of once per simulated iteration.  Scheme
        # cost is keyed by world size because elastic crash recovery can
        # shrink the active world mid-run.
        self._cost_cache: dict = {}
        self._bucket_plan: Optional[Tuple[List[float], List[int]]] = None
        self._bwd_base_cache: dict = {}
        # Construction-time model walks (reversed layer tuple, per-layer
        # flop sums, hook overhead) are likewise computed at most once
        # per simulator instead of once per iteration.
        self._backward_layers: Tuple = model.backward_layers()
        self._fwd_time_cache: dict = {}
        self._full_bwd_time_cache: dict = {}
        self._opt_time: Optional[float] = None
        self._hook_cost: Optional[float] = None
        #: Mode the most recent :meth:`run` actually executed
        #: (``"event"`` / ``"batch"``; ``None`` before any run).
        self.last_run_mode: Optional[str] = None
        #: Fallback-reason slug when an ``"auto"`` run was forced onto
        #: the event path (``None`` when the fast path ran or the event
        #: path was requested explicitly).
        self.last_run_fallback: Optional[str] = None

    def _scheme_cost(self, world_size: Optional[int] = None) -> SchemeCost:
        """The scheme's cost for this simulator's model at a world size
        (memoized per size; defaults to the cluster's full size)."""
        p = world_size if world_size is not None else self.cluster.world_size
        cost = self._cost_cache.get(p)
        if cost is None:
            cost = self.scheme.cost(self.model, p, self.profile)
            self._cost_cache[p] = cost
        return cost

    def _baseline_bucket_plan(self) -> Tuple[List[float], List[int]]:
        """Bucket sizes and the backward-order index of each bucket's
        closing layer (memoized; depends only on model + bucket cap)."""
        if self._bucket_plan is None:
            buckets = self.model.gradient_buckets(
                self.config.bucket_cap_bytes)
            bucket_sizes = [
                float(sum(l.grad_bytes for l in b)) for b in buckets]
            name_to_idx = {
                l.name: i for i, l in enumerate(self._backward_layers)}
            bucket_close_idx = [
                max(name_to_idx[l.name] for l in bucket)
                for bucket in buckets]
            self._bucket_plan = (bucket_sizes, bucket_close_idx)
        return self._bucket_plan

    # ----- memory ------------------------------------------------------------

    def check_memory(self, batch_size: int) -> float:
        """Validate the per-GPU memory budget; returns required bytes.

        Raises:
            OutOfMemoryError: when training state + activations + the
                scheme's aggregation working set exceed GPU memory.
        """
        p = self.cluster.world_size
        cost = self._scheme_cost()
        working = cost.aggregation_working_set(p)
        fits, required = self.compute.fits_in_memory(batch_size, working)
        if not fits:
            get_registry().counter(
                "sim_oom_total", model=self.model.name,
                scheme=self.scheme.label).inc()
            raise OutOfMemoryError(
                f"{self.model.name} with {self.scheme.label} at "
                f"{p} GPUs needs {required / 1e9:.1f} GB "
                f"(aggregation working set {working / 1e9:.1f} GB) but the "
                f"{self.cluster.gpu.name} has "
                f"{self.cluster.gpu.memory_bytes / 1e9:.1f} GB",
                required_bytes=required,
                budget_bytes=self.cluster.gpu.memory_bytes)
        return required

    # ----- communication pricing ----------------------------------------------

    def _allreduce_time(self, num_bytes: float,
                        world_size: Optional[int] = None,
                        bw_scale: float = 1.0) -> float:
        p = world_size if world_size is not None else self.cluster.world_size
        bw = self.fabric.min_bandwidth() * bw_scale
        alpha = self.fabric.alpha_s
        if self.config.allreduce_algorithm == "double_tree":
            return double_tree_allreduce_time(num_bytes, p, bw, alpha)
        if self.config.allreduce_algorithm == "hierarchical":
            # Elastic world-size changes keep the node topology here;
            # the degraded-bandwidth scale still applies.
            return hierarchical_allreduce_time(
                num_bytes, self.cluster.num_nodes,
                self.cluster.instance.gpus_per_node, bw,
                self.cluster.instance.intra_node_bytes_per_s, alpha)
        if self.config.allreduce_algorithm == "parameter_server":
            return parameter_server_time(
                num_bytes, p, bw, alpha,
                incast_factor=self.fabric.incast_factor(max(1, p - 1)))
        return ring_allreduce_time(num_bytes, p, bw, alpha)

    def _allgather_time(self, num_bytes: float,
                        world_size: Optional[int] = None,
                        bw_scale: float = 1.0) -> float:
        p = world_size if world_size is not None else self.cluster.world_size
        return allgather_time(
            num_bytes, p, self.fabric.min_bandwidth() * bw_scale,
            self.fabric.alpha_s,
            incast_factor=self.fabric.incast_factor(max(1, p - 1)))

    def _collective_time(self, cost: SchemeCost,
                         world_size: Optional[int] = None,
                         bw_scale: float = 1.0) -> float:
        """Total communication seconds for a compressed gradient: one
        collective per message over an even share of the payload."""
        per_message = cost.wire_bytes / cost.messages
        if cost.all_reducible:
            single = self._allreduce_time(per_message, world_size, bw_scale)
        else:
            single = self._allgather_time(per_message, world_size, bw_scale)
        return single * cost.messages

    # ----- iteration simulation -----------------------------------------------

    def simulate_iteration(self, batch_size: Optional[int] = None,
                           rng: Optional[np.random.Generator] = None,
                           seed: Optional[int] = None,
                           iteration: int = 0) -> IterationTrace:
        """Simulate one iteration; returns its timeline trace.

        Jitter is drawn from ``rng`` when given (callers running many
        iterations thread one generator through, as :meth:`run` does).
        Otherwise a fresh generator is derived from ``seed`` — or from
        OS entropy when ``seed`` is ``None`` — so that repeated direct
        calls actually vary.  (A previous revision defaulted to
        ``default_rng(0)`` on *every* call, which made direct callers
        draw identical jitter and collapsed their variance to zero.)

        ``iteration`` is the 0-based absolute iteration index; it only
        matters when a :class:`~repro.faults.FaultSchedule` is attached,
        where it selects which faults are active.
        """
        bs = batch_size if batch_size is not None else self.model.default_batch_size
        if self.config.check_memory:
            self.check_memory(bs)
        if rng is None:
            rng = np.random.default_rng(seed)
        ifaults = (self._injector.faults_for(iteration)
                   if self._injector is not None else None)
        if self._is_baseline or self.scheme.ddp_overlap:
            # ddp_overlap schemes (fp16) compress inside the bucket hook:
            # same event structure as syncSGD with scaled payloads.
            trace = self._simulate_baseline(bs, rng, ifaults)
        elif self.config.overlap_compression:
            trace = self._simulate_compressed_overlapped(bs, rng, ifaults)
        else:
            trace = self._simulate_compressed_sequential(bs, rng, ifaults)
        if ifaults is not None:
            if ifaults.active:
                # One fault-window span per iteration on a dedicated
                # stream: the Perfetto export shows exactly when the
                # cluster was degraded, next to compute and comm.
                trace.add(Span(FAULT_STREAM, "+".join(ifaults.active),
                               0.0, trace.iteration_end))
            self._injector.record_iteration(ifaults)
        registry = get_registry()
        if registry.enabled:
            self._record_iteration(registry, trace)
        return trace

    def _record_iteration(self, registry, trace: IterationTrace) -> None:
        """Record one iteration's telemetry (enabled registries only —
        pure reads of the finished trace, never touching the rng, so an
        instrumented run stays bit-identical to a silent one)."""
        label = self.scheme.label
        registry.counter("sim_iterations_total", scheme=label).inc()
        registry.histogram("sim_sync_time_s", scheme=label).observe(
            trace.sync_time())
        registry.histogram("sim_overlap_s", scheme=label).observe(
            trace.compute_comm_overlap())
        wire_bytes = 0.0
        for span in trace.spans:
            if span.stream == FAULT_STREAM:
                # Fault windows are annotations, not occupancy; the
                # injector records its own counters for them.
                continue
            # "bucket17" -> "bucket": keep label cardinality bounded.
            kind = span.label.rstrip("0123456789")
            if span.stream == COMM_STREAM:
                registry.histogram(
                    "sim_comm_span_s", kind=kind).observe(span.duration)
                wire_bytes += span.bytes_on_wire
            else:
                registry.histogram(
                    "sim_compute_span_s", kind=kind).observe(span.duration)
        if wire_bytes > 0:
            registry.counter(
                "sim_wire_bytes_total", scheme=label).inc(wire_bytes)
        if trace.iteration_end > 0:
            registry.histogram(
                "sim_comm_occupancy", scheme=label).observe(
                trace.stream_busy_time(COMM_STREAM) / trace.iteration_end)

    # -- helpers

    def _jitter(self, rng: np.random.Generator, sigma: float) -> float:
        return float(rng.lognormal(mean=0.0, sigma=sigma)) if sigma > 0 else 1.0

    def _hook_overhead(self) -> float:
        """Per-iteration framework cost of running a compression hook over
        every trainable layer (gradient extraction + copy-back);
        memoized — it depends only on construction-time state."""
        if self._hook_cost is None:
            self._hook_cost = (self.config.hook_overhead_per_layer_s
                               * len(self.model.trainable_layers))
        return self._hook_cost

    def _forward_time(self, bs: int) -> float:
        """Un-jittered forward duration, memoized per batch size."""
        t = self._fwd_time_cache.get(bs)
        if t is None:
            t = self.compute.forward_time(bs)
            self._fwd_time_cache[bs] = t
        return t

    def _backward_time(self, bs: int) -> float:
        """Un-jittered whole-backward duration, memoized per batch size."""
        t = self._full_bwd_time_cache.get(bs)
        if t is None:
            t = self.compute.backward_time(bs)
            self._full_bwd_time_cache[bs] = t
        return t

    def _optimizer_time(self) -> float:
        """Un-jittered optimizer duration (batch-size independent)."""
        if self._opt_time is None:
            self._opt_time = self.compute.optimizer_time()
        return self._opt_time

    def _backward_base_times(self, bs: int) -> List[float]:
        """Un-jittered per-layer backward durations in backward order,
        memoized per batch size."""
        base = self._bwd_base_cache.get(bs)
        if base is None:
            base = [self.compute.layer_backward_time(layer, bs)
                    for layer in self._backward_layers]
            self._bwd_base_cache[bs] = base
        return base

    def _backward_layer_times(self, bs: int, stretch: float,
                              rng: np.random.Generator) -> List[float]:
        sigma = self.config.compute_jitter
        base = self._backward_base_times(bs)
        # One scalar jitter draw per layer, in layer order, so the rng
        # stream is identical to the pre-cache implementation.
        return [t * stretch * self._jitter(rng, sigma) for t in base]

    def _fault_params(self, ifaults: Optional[IterationFaults],
                      ) -> Tuple[float, int, float, float]:
        """Unpack one iteration's fault state into the four knobs every
        execution path consumes: (compute slowdown, active world size,
        bandwidth scale, start-of-iteration stall)."""
        if ifaults is None:
            return 1.0, self.cluster.world_size, 1.0, 0.0
        return (ifaults.compute_slowdown, ifaults.world_size,
                ifaults.bandwidth_scale, ifaults.stall_s)

    def _start_stall(self, trace: IterationTrace,
                     ifaults: Optional[IterationFaults]) -> float:
        """Charge any crash-recovery stall at the iteration start;
        returns the instant compute may begin (0.0 when healthy)."""
        if ifaults is None or ifaults.stall_s <= 0:
            return 0.0
        trace.add(Span(FAULT_STREAM, ifaults.stall_label or "recovery",
                       0.0, ifaults.stall_s))
        return ifaults.stall_s

    def _retransmit(self, trace: IterationTrace,
                    ifaults: Optional[IterationFaults],
                    transfer_index: int, label: str, end: float,
                    duration: float, payload_bytes: float) -> float:
        """Append the retransmit penalty (if any) for the transfer that
        just finished at ``end``; returns the new completion instant."""
        if ifaults is None or ifaults.retransmit is None or duration <= 0:
            return end
        assert self._injector is not None
        delay, replays = self._injector.retransmit_delay(
            ifaults.iteration, transfer_index, duration)
        if delay <= 0:
            return end
        trace.add(Span(COMM_STREAM, label, end, end + delay,
                       bytes_on_wire=payload_bytes * replays))
        return end + delay

    def _simulate_baseline(self, bs: int, rng: np.random.Generator,
                           ifaults: Optional[IterationFaults] = None,
                           ) -> IterationTrace:
        """syncSGD (or a ddp_overlap scheme like fp16): bucketed,
        overlapped all-reduce — the paper's §4.1 structure."""
        cfg = self.config
        trace = IterationTrace()
        queue = EventQueue()
        slow, p, bw_scale, _ = self._fault_params(ifaults)
        t0 = self._start_stall(trace, ifaults)

        if self._is_baseline:
            wire_scale, hook_cost = 1.0, 0.0
        else:
            cost = self._scheme_cost(p)
            wire_scale = cost.wire_bytes / self.model.grad_bytes
            hook_cost = cost.encode_decode_s

        overlap = cfg.overlap_communication and p > 1
        stretch = cfg.gamma if overlap else 1.0

        t_fwd = (self._forward_time(bs) * slow
                 * self._jitter(rng, cfg.compute_jitter))
        trace.add(Span(COMPUTE_STREAM, "forward", t0, t0 + t_fwd))
        trace.forward_end = t0 + t_fwd

        # Bucket sizes + the backward-order index of each bucket's
        # closing layer, computed once per simulator (not per iteration).
        bucket_sizes, bucket_close_idx = self._baseline_bucket_plan()

        layer_times = self._backward_layer_times(bs, stretch * slow, rng)
        # Cumulative completion time of each backward layer.
        completion = np.cumsum(layer_times) + trace.forward_end
        trace.backward_end = float(completion[-1])
        trace.add(Span(COMPUTE_STREAM, "backward", trace.forward_end,
                       trace.backward_end))

        comm_free = [trace.forward_end]  # comm stream availability

        def make_comm_event(bucket_id: int, size: float):
            def fire(q: EventQueue) -> None:
                start = max(q.now, comm_free[0])
                duration = (self._allreduce_time(size * wire_scale,
                                                 p, bw_scale)
                            if p > 1 else 0.0)
                duration *= self._jitter(rng, cfg.comm_jitter)
                end = start + duration
                trace.add(Span(COMM_STREAM, f"bucket{bucket_id}", start, end,
                               bytes_on_wire=(size * wire_scale
                                              if p > 1 else 0.0)))
                end = self._retransmit(
                    trace, ifaults, bucket_id, f"retransmit{bucket_id}",
                    end, duration, size * wire_scale)
                comm_free[0] = end
                trace.sync_end = max(trace.sync_end, end)
            return fire

        for bucket_id, (size, close_idx) in enumerate(
                zip(bucket_sizes, bucket_close_idx)):
            if overlap:
                ready = float(completion[close_idx])
            else:
                ready = trace.backward_end
            queue.schedule(ready, make_comm_event(bucket_id, size))

        queue.run()
        trace.sync_end = max(trace.sync_end, trace.backward_end)
        if hook_cost > 0:
            # Per-bucket cast cost (fp16): small and on the critical path.
            end = trace.sync_end + hook_cost * slow * self._jitter(
                rng, cfg.compute_jitter)
            trace.add(Span(COMPUTE_STREAM, "bucket-cast", trace.sync_end,
                           end))
            trace.sync_end = end
        self._finish_optimizer(trace, rng, slow)
        return trace

    def _simulate_compressed_sequential(self, bs: int,
                                        rng: np.random.Generator,
                                        ifaults: Optional[IterationFaults] = None,
                                        ) -> IterationTrace:
        """Compression after backward: encode -> collective(s) -> decode.

        This is the execution the paper settles on after §3.1 and models
        in §4.2: no overlap, so no γ, but the full encode/decode cost on
        the critical path.
        """
        cfg = self.config
        trace = IterationTrace()
        slow, p, bw_scale, _ = self._fault_params(ifaults)
        t0 = self._start_stall(trace, ifaults)
        cost = self._scheme_cost(p)

        t_fwd = (self._forward_time(bs) * slow
                 * self._jitter(rng, cfg.compute_jitter))
        trace.add(Span(COMPUTE_STREAM, "forward", t0, t0 + t_fwd))
        trace.forward_end = t0 + t_fwd

        t_bwd = (self._backward_time(bs) * slow
                 * self._jitter(rng, cfg.compute_jitter))
        trace.backward_end = trace.forward_end + t_bwd
        trace.add(Span(COMPUTE_STREAM, "backward", trace.forward_end,
                       trace.backward_end))

        enc_dec = ((cost.encode_decode_s + self._hook_overhead()) * slow
                   * self._jitter(rng, cfg.compute_jitter))
        encode_end = trace.backward_end + enc_dec / 2.0
        trace.add(Span(COMPUTE_STREAM, "encode", trace.backward_end, encode_end))

        comm = 0.0 if p == 1 else (
            self._collective_time(cost, p, bw_scale)
            * self._jitter(rng, cfg.comm_jitter))
        comm_end = encode_end + comm
        if comm > 0:
            trace.add(Span(COMM_STREAM, "aggregate", encode_end, comm_end,
                           bytes_on_wire=cost.wire_bytes))
            comm_end = self._retransmit(
                trace, ifaults, 0, "retransmit", comm_end, comm,
                cost.wire_bytes)

        decode_end = comm_end + enc_dec / 2.0
        trace.add(Span(COMPUTE_STREAM, "decode", comm_end, decode_end))
        trace.sync_end = decode_end
        self._finish_optimizer(trace, rng, slow)
        return trace

    def _simulate_compressed_overlapped(self, bs: int,
                                        rng: np.random.Generator,
                                        ifaults: Optional[IterationFaults] = None,
                                        ) -> IterationTrace:
        """Figure 3's strategy: encode interleaves with backward.

        Backward and compression contend for SMs, stretching their
        *combined* work by ``contention_penalty``; compressed chunks
        become ready progressively through the stretched phase and their
        collectives overlap.  The paper shows this loses to sequential
        execution; this mode exists to reproduce that comparison.
        """
        cfg = self.config
        trace = IterationTrace()
        slow, p, bw_scale, _ = self._fault_params(ifaults)
        t0 = self._start_stall(trace, ifaults)
        cost = self._scheme_cost(p)

        t_fwd = (self._forward_time(bs) * slow
                 * self._jitter(rng, cfg.compute_jitter))
        fwd_end = t0 + t_fwd
        trace.add(Span(COMPUTE_STREAM, "forward", t0, fwd_end))
        trace.forward_end = fwd_end

        t_bwd = (self._backward_time(bs) * slow
                 * self._jitter(rng, cfg.compute_jitter))
        enc_dec = ((cost.encode_decode_s + self._hook_overhead()) * slow
                   * self._jitter(rng, cfg.compute_jitter))
        encode_part = enc_dec / 2.0
        stretched = (t_bwd + encode_part) * cfg.contention_penalty
        compute_end = fwd_end + stretched
        trace.backward_end = compute_end
        trace.add(Span(
            COMPUTE_STREAM, "backward+encode", fwd_end, compute_end))

        # Compressed chunks stream out in four waves through the phase;
        # the final wave only after the stretched phase completes.  A
        # single worker has no collective at all, so it gets no comm
        # spans — zero-length phantom waves would pollute the trace and
        # compute_comm_overlap() inputs.
        comm_total = 0.0 if p == 1 else self._collective_time(
            cost, p, bw_scale)
        comm_total *= self._jitter(rng, cfg.comm_jitter)
        waves = 4
        comm_free = fwd_end
        sync_end = compute_end
        if p > 1:
            for wave in range(waves):
                ready = fwd_end + stretched * (wave + 1) / waves
                start = max(ready, comm_free)
                end = start + comm_total / waves
                trace.add(Span(COMM_STREAM, f"wave{wave}", start, end,
                               bytes_on_wire=cost.wire_bytes / waves))
                end = self._retransmit(
                    trace, ifaults, wave, f"retransmit{wave}", end,
                    comm_total / waves, cost.wire_bytes / waves)
                comm_free = end
                sync_end = end

        decode_end = max(sync_end, compute_end) + enc_dec / 2.0
        trace.add(Span(COMPUTE_STREAM, "decode",
                       max(sync_end, compute_end), decode_end))
        trace.sync_end = decode_end
        self._finish_optimizer(trace, rng, slow)
        return trace

    def _finish_optimizer(self, trace: IterationTrace,
                          rng: np.random.Generator,
                          slowdown: float = 1.0) -> None:
        start = max(trace.sync_end, trace.backward_end)
        t_opt = (self._optimizer_time() * slowdown
                 * self._jitter(rng, self.config.compute_jitter))
        trace.add(Span(COMPUTE_STREAM, "optimizer", start, start + t_opt))
        trace.iteration_end = start + t_opt

    # ----- multi-iteration runs -------------------------------------------------

    def batch_fallback_reason(self, tracing: bool = False) -> Optional[str]:
        """Why the batch fast path cannot serve this simulator, as a
        :data:`FALLBACK_REASONS` slug — or ``None`` when it can.

        Always ``None`` today: fault schedules are applied as array
        masks, and span-level timeline traces — the last reason this
        method ever forced the event path — are reconstructed from the
        kernel's intermediate arrays
        (:func:`repro.simulator.reconstruct.reconstruct_traces`),
        bit-identical to event-loop traces.  ``tracing`` is kept for
        callers that still ask the question explicitly.
        """
        del tracing
        return None

    def resolve_mode(self, mode: str = "auto", tracing: bool = False,
                     ) -> Tuple[str, Optional[str]]:
        """Resolve a requested simulation mode to the one that will run.

        Returns ``(resolved mode, fallback reason)`` where the reason is
        a :data:`FALLBACK_REASONS` slug when ``"auto"`` was forced onto
        the event path and ``None`` otherwise.

        Raises:
            ConfigurationError: for an unknown mode, or for an explicit
                ``"batch"`` request the fast path cannot honour —
                silently degrading an explicit request would make the
                mode flag a lie.
        """
        if mode not in SIM_MODES:
            raise ConfigurationError(
                f"unknown simulation mode {mode!r}; "
                f"choose one of {', '.join(SIM_MODES)}")
        if mode == "event":
            return "event", None
        reason = self.batch_fallback_reason(tracing)
        if reason is None:
            return "batch", None
        if mode == "batch":
            raise ConfigurationError(
                f"simulation mode 'batch' is unavailable here: "
                f"{FALLBACK_REASONS[reason]} (use 'event' or 'auto')")
        return "event", reason

    def run(self, batch_size: Optional[int] = None, iterations: int = 110,
            warmup: int = 10, seed: int = 0,
            mode: str = "auto") -> TimingResult:
        """Run the paper's measurement protocol: ``iterations`` simulated
        iterations, discard the first ``warmup``, report the rest.

        ``mode`` selects the execution scheme (:data:`SIM_MODES`):
        ``"event"`` runs the per-iteration event loop, ``"batch"`` the
        vectorized kernel of :mod:`repro.simulator.batch`, and
        ``"auto"`` (the default) the fast path whenever it is available
        — including under fault schedules, which the kernel applies as
        array masks.  The two paths are bit-identical — same RNG draws,
        same floating-point operation order — so the choice never
        changes the returned :class:`TimingResult` (and therefore stays
        out of the engine's cache fingerprints).  The mode that actually
        ran is recorded on :attr:`last_run_mode` /
        :attr:`last_run_fallback`.
        """
        if iterations <= warmup:
            raise ConfigurationError(
                f"iterations ({iterations}) must exceed warmup ({warmup})")
        if self._injector is not None:
            # Retransmit tallies describe one run, not the simulator's
            # lifetime; reset before either path re-accumulates them.
            self._injector.reset_run_counters()
        resolved, fallback = self.resolve_mode(mode)
        self.last_run_mode = resolved
        self.last_run_fallback = fallback
        registry = get_registry()
        if registry.enabled:
            registry.counter("sim_run_mode_total", mode=resolved).inc()
            if fallback is not None:
                registry.counter("sim_fastpath_fallback_total",
                                 reason=fallback).inc()
        tracer = get_tracer()
        if not tracer.enabled:
            return self._run_resolved(resolved, batch_size, iterations,
                                      warmup, seed)
        with tracer.span("sim-run", track="sim", model=self.model.name,
                         scheme=self.scheme.label,
                         gpus=str(self.cluster.world_size),
                         iterations=str(iterations),
                         mode=resolved) as span:
            result = self._run_resolved(resolved, batch_size, iterations,
                                        warmup, seed)
        # One reconstructed iteration illustrates the run's internal
        # structure on sim:* tracks (simulated seconds, plotted from
        # the span's start).  Reconstruction is pure — no RNG/telemetry
        # side effects — so the traced run stays bit-identical.
        from .reconstruct import reconstruct_traces
        first = reconstruct_traces(self, batch_size, iterations=1,
                                   seed=seed)[0]
        tracer.add_iteration_trace(first, base_unix_s=span.start_unix_s,
                                   parent_id=span.span_id)
        return result

    def _run_resolved(self, resolved: str, batch_size: Optional[int],
                      iterations: int, warmup: int,
                      seed: int) -> TimingResult:
        if resolved == "batch":
            # Deferred import: batch.py imports TimingResult from here.
            from .batch import run_batch
            return run_batch(self, batch_size, iterations=iterations,
                             warmup=warmup, seed=seed)
        bs = batch_size if batch_size is not None else self.model.default_batch_size
        rng = np.random.default_rng(seed)
        sync_times: List[float] = []
        iter_times: List[float] = []
        for i in range(iterations):
            trace = self.simulate_iteration(bs, rng, iteration=i)
            if i >= warmup:
                sync_times.append(trace.sync_time())
                iter_times.append(trace.iteration_end)
        return TimingResult(
            model=self.model.name,
            scheme=self.scheme.label,
            world_size=self.cluster.world_size,
            batch_size=bs,
            sync_times=tuple(sync_times),
            iteration_times=tuple(iter_times),
        )
