"""Auto-advisor: a sharded, million-config Pareto sweep over the grid.

``repro recommend`` prices a six-entry curated menu at one operating
point.  This module answers the stronger question the paper's §5
methodology implies — *across the whole scheme × hyperparameter space,
which configurations are ever worth running on this cluster?* — by

1. enumerating every registered scheme with a hyperparameter grid
   (:func:`candidate_grid`, driven by the compression registry, not a
   hardcoded list),
2. pricing candidate × world size × bandwidth through the
   :mod:`repro.core.grid` kernels in bounded-memory *shards*
   (:class:`~repro.engine.advisorjobs.AdvisorShardJob`) dispatched
   across the :class:`~repro.engine.ExperimentEngine` process pool,
3. reducing each shard with a vectorized sort-based Pareto sweep
   (:func:`pareto_mask`, O(n log n), no per-point Python loop) over the
   two objectives *iteration time* and *compression error*,
4. merging shard frontiers (Pareto-of-Pareto-union equals
   Pareto-of-union, so the merge is exact), and
5. refining only frontier survivors with exact
   :func:`~repro.core.whatif.solve_crossover` break-even bandwidths,
   then ranking them at the calibrated operating point through the
   same :func:`~repro.core.advisor.recommend_for_inputs` path
   ``repro recommend`` uses — so the two renderings never diverge.

**Compression error proxy.**  Ranking schemes needs a second axis
besides time; following the wire-volume argument, a candidate's error
at world size ``p`` is the fraction of gradient volume its encoding
removes from the wire — ``1 - wire_bytes / grad_bytes``, clipped to
``[0, 1]`` (0 for syncSGD, approaching 1 for aggressive sparsifiers).
It is a proxy for information discarded, not a convergence prediction.

**Determinism.**  Shards slice one global ``np.linspace`` bandwidth
axis, every grid cell is bit-identical to the scalar model, and the
final frontier is sorted by a total order — so sharded-parallel output
is byte-identical to serial, which the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression.kernel_cost import v100_kernel_profile
from ..compression.registry import available_schemes, make_scheme
from ..compression.schemes import Scheme, SyncSGDScheme
from ..compute import ComputeModel
from ..core.advisor import Recommendation, recommend_for_inputs
from ..core.calibration import calibrate
from ..core.grid import MAX_GRID_POINTS
from ..core.whatif import Crossing, solve_crossover
from ..engine import AdvisorShardJob, ExperimentEngine
from ..errors import ConfigurationError
from ..hardware import ClusterConfig
from ..models import ModelSpec

#: Hyperparameter grid per registered scheme name.  Names absent from
#: this table (and any scheme registered later) sweep their default
#: construction only, so a new registry entry appears in the sweep
#: without touching this module.
_HYPERPARAMETERS: Dict[str, Tuple[Dict[str, Any], ...]] = {
    "powersgd": tuple({"rank": r} for r in (1, 2, 4, 8, 16, 32)),
    "atomo": tuple({"rank": r} for r in (1, 2, 4, 8)),
    "topk": tuple({"fraction": f}
                  for f in (0.001, 0.005, 0.01, 0.05, 0.1)),
    "randomk": tuple({"fraction": f}
                     for f in (0.001, 0.005, 0.01, 0.05, 0.1)),
    "dgc": tuple({"fraction": f} for f in (0.0005, 0.001, 0.005, 0.01)),
    "qsgd": tuple({"levels": lv} for lv in (4, 16, 64, 256)),
    "gradiveq": ({"block": 256, "dims": 32}, {"block": 512, "dims": 64},
                 {"block": 1024, "dims": 128}),
    "hybrid-powersgd": tuple({"rank": r, "min_layer_params": m}
                             for r in (2, 4, 8)
                             for m in (50_000, 100_000, 500_000)),
}


def candidate_grid() -> List[Scheme]:
    """Every registered scheme crossed with its hyperparameter grid.

    Drawn from :func:`repro.compression.registry.available_schemes`
    (sorted names, so the order — and therefore advisor output — is
    deterministic), not a hardcoded class list.
    """
    out: List[Scheme] = []
    for name in available_schemes():
        for params in _HYPERPARAMETERS.get(name, ({},)):
            out.append(make_scheme(name, **params))
    return out


def pareto_mask(times: np.ndarray, errors: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal points, minimizing both axes.

    ``a`` dominates ``b`` iff ``a.time <= b.time`` and
    ``a.error <= b.error`` with at least one strict; exact duplicates
    do not dominate each other, so all copies of a frontier point
    survive.  One ``np.lexsort`` plus grouped prefix minima — O(n log
    n) with no per-point Python loop: after sorting by (time, error),
    a point survives iff it attains its time-group's minimum error
    *and* that error strictly undercuts the best error of every
    strictly-earlier time group.
    """
    t = np.asarray(times, dtype=float)
    e = np.asarray(errors, dtype=float)
    if t.shape != e.shape or t.ndim != 1:
        raise ConfigurationError(
            f"pareto_mask needs two aligned 1-D arrays, got shapes "
            f"{t.shape} and {e.shape}")
    n = t.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.lexsort((e, t))
    ts, es = t[order], e[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = ts[1:] != ts[:-1]
    starts = np.flatnonzero(new_group)
    group_of = np.cumsum(new_group) - 1
    gmin = es[starts]  # es ascends within a time group
    prev_min = np.concatenate(
        ([np.inf], np.minimum.accumulate(gmin)[:-1]))
    keep_sorted = (es == gmin[group_of]) & (es < prev_min[group_of])
    mask = np.empty(n, dtype=bool)
    mask[order] = keep_sorted
    return mask


def merge_frontiers(frontiers: Sequence[Tuple[np.ndarray, np.ndarray]],
                    ) -> np.ndarray:
    """Pareto mask over concatenated per-shard frontiers.

    Exact because ``Pareto(S₁ ∪ S₂) = Pareto(Pareto(S₁) ∪ Pareto(S₂))``
    — a point dominated in the union is dominated by some frontier
    point of its own shard or another's, and that dominator (or a
    duplicate of it) survives its shard's sweep.  Holds with duplicates
    under the strict-dominance rule above, which the randomized merge
    tests exercise.
    """
    times = np.concatenate([np.asarray(t, dtype=float)
                            for t, _ in frontiers]) if frontiers \
        else np.zeros(0)
    errors = np.concatenate([np.asarray(e, dtype=float)
                             for _, e in frontiers]) if frontiers \
        else np.zeros(0)
    return pareto_mask(times, errors)


def compression_error(model: ModelSpec, scheme: Scheme, world_size: int,
                      profile=None) -> float:
    """The sweep's error proxy: wire volume removed, in ``[0, 1]``."""
    prof = profile if profile is not None else v100_kernel_profile()
    cost = scheme.cost(model, world_size, prof)
    return float(min(1.0, max(0.0, 1.0 - cost.wire_bytes
                              / model.grad_bytes)))


@dataclass(frozen=True)
class SweepSpec:
    """Axes of one advisor sweep.

    The default grid — 4 world sizes × 8192 bandwidth points per
    candidate — prices over 1.5 million configurations for the default
    candidate grid, in shards of at most ``shard_points`` cells each
    (well under :data:`repro.core.grid.MAX_GRID_POINTS`, so no shard
    can trip the oversize-grid guard).
    """

    world_sizes: Tuple[int, ...] = (8, 16, 32, 64)
    min_bandwidth_gbps: float = 1.0
    max_bandwidth_gbps: float = 30.0
    bandwidth_points: int = 8192
    shard_points: int = 4096

    def __post_init__(self) -> None:
        if not self.world_sizes:
            raise ConfigurationError("world_sizes must be non-empty")
        if any(p < 1 for p in self.world_sizes):
            raise ConfigurationError(
                f"world sizes must be >= 1, got {self.world_sizes}")
        if not 0 < self.min_bandwidth_gbps < self.max_bandwidth_gbps:
            raise ConfigurationError(
                f"need 0 < min < max bandwidth, got "
                f"[{self.min_bandwidth_gbps}, {self.max_bandwidth_gbps}]")
        if self.bandwidth_points < 2:
            raise ConfigurationError(
                f"bandwidth_points must be >= 2, got "
                f"{self.bandwidth_points}")
        if not 1 <= self.shard_points <= MAX_GRID_POINTS:
            raise ConfigurationError(
                f"shard_points must be in [1, {MAX_GRID_POINTS}], got "
                f"{self.shard_points}")


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal configuration of the sweep."""

    scheme_label: str
    world_size: int
    bandwidth_gbps: float
    time_s: float
    error: float

    def to_dict(self) -> dict:
        """JSON-safe view."""
        return {
            "scheme": self.scheme_label,
            "world_size": self.world_size,
            "bandwidth_gbps": self.bandwidth_gbps,
            "time_s": self.time_s,
            "error": self.error,
        }


@dataclass(frozen=True)
class AdvisorReport:
    """Everything one sweep produced, deterministically ordered.

    ``configs_total`` counts the enumerated grid, ``configs_priced``
    the cells actually evaluated (infeasible (candidate, world size)
    pairs are screened out before pricing).  ``crossovers`` maps each
    non-baseline frontier scheme to its exact break-even bandwidths on
    the swept range.  ``render`` emits no timings or other
    run-dependent text, so output is byte-identical however the sweep
    was sharded or parallelized.
    """

    model: str
    cluster: str
    world_size: int
    bandwidth_gbps: float
    spec: SweepSpec
    candidates_total: int
    configs_total: int
    configs_priced: int
    shards: int
    infeasible_pairs: int
    frontier: Tuple[FrontierPoint, ...]
    crossovers: Tuple[Tuple[str, Tuple[Crossing, ...]], ...]
    recommendation: Recommendation

    def render(self, top: int = 12) -> str:
        """Human-readable report: grid, frontier, break-evens, ranking."""
        spec = self.spec
        lines = [
            f"auto-advisor for {self.model} on {self.cluster}:",
            f"  grid: {self.candidates_total} candidates x "
            f"{len(spec.world_sizes)} world sizes x "
            f"{spec.bandwidth_points} bandwidths "
            f"({spec.min_bandwidth_gbps:g}-{spec.max_bandwidth_gbps:g} "
            f"Gbit/s) = {self.configs_total:,} configs",
            f"  priced {self.configs_priced:,} configs in {self.shards} "
            f"shards ({self.infeasible_pairs} infeasible "
            f"candidate/world-size pairs skipped)",
            f"  Pareto frontier (time vs compression error): "
            f"{len(self.frontier)} points",
            "      time         error  scheme                p   Gbit/s",
        ]
        shown = self.frontier[:top]
        for pt in shown:
            lines.append(
                f"   {pt.time_s * 1e3:9.3f} ms  {pt.error:8.6f}  "
                f"{pt.scheme_label:<20} {pt.world_size:>3}   "
                f"{pt.bandwidth_gbps:6.2f}")
        if len(self.frontier) > len(shown):
            lines.append(
                f"   ... and {len(self.frontier) - len(shown)} more")
        lines.append(
            f"  break-even bandwidths vs syncsgd "
            f"({spec.min_bandwidth_gbps:g}-{spec.max_bandwidth_gbps:g} "
            f"Gbit/s):")
        for label, crossings in self.crossovers:
            if crossings:
                detail = ", ".join(f"{c.x:.2f} Gbit/s ({c.direction})"
                                   for c in crossings)
            else:
                detail = "none in range"
            lines.append(f"    {label:<20} {detail}")
        lines.append("")
        lines.append(self.recommendation.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe view (the serving layer's response body)."""
        return {
            "model": self.model,
            "cluster": self.cluster,
            "world_size": self.world_size,
            "bandwidth_gbps": self.bandwidth_gbps,
            "spec": {
                "world_sizes": list(self.spec.world_sizes),
                "min_bandwidth_gbps": self.spec.min_bandwidth_gbps,
                "max_bandwidth_gbps": self.spec.max_bandwidth_gbps,
                "bandwidth_points": self.spec.bandwidth_points,
                "shard_points": self.spec.shard_points,
            },
            "candidates_total": self.candidates_total,
            "configs_total": self.configs_total,
            "configs_priced": self.configs_priced,
            "shards": self.shards,
            "infeasible_pairs": self.infeasible_pairs,
            "frontier": [pt.to_dict() for pt in self.frontier],
            "crossovers": {
                label: [{"gbps": c.x, "direction": c.direction}
                        for c in crossings]
                for label, crossings in self.crossovers
            },
            "recommendation": self.recommendation.to_dict(),
        }


@dataclass(frozen=True)
class SweepPlan:
    """An expanded sweep, ready for the engine.

    Produced by :func:`plan_sweep`; ``jobs`` go through
    :meth:`~repro.engine.ExperimentEngine.run_advisor_outcomes` (the
    serving scheduler submits them inside its batch, coalescing with
    other requests) and the outcomes come back to :func:`finish_sweep`.
    ``meta[i]`` records ``(candidate index, world size, error, slice
    start)`` for ``jobs[i]``.
    """

    model: ModelSpec
    cluster: ClusterConfig
    inputs: Any
    spec: SweepSpec
    schemes: Tuple[Scheme, ...]
    jobs: Tuple[AdvisorShardJob, ...]
    meta: Tuple[Tuple[int, int, float, int], ...]
    infeasible_pairs: int


def plan_sweep(model: ModelSpec, cluster: ClusterConfig,
               batch_size: Optional[int] = None,
               candidates: Optional[Sequence[Scheme]] = None,
               spec: Optional[SweepSpec] = None) -> SweepPlan:
    """Calibrate, screen feasibility, and expand the sweep into shards.

    Each feasible (candidate, world size) pair contributes
    ``ceil(bandwidth_points / shard_points)`` bounded
    :class:`~repro.engine.advisorjobs.AdvisorShardJob` values; pairs
    whose gather working set does not fit GPU memory are skipped
    before any pricing.
    """
    sweep = spec if spec is not None else SweepSpec()
    schemes = tuple(candidates) if candidates is not None \
        else tuple(candidate_grid())
    if not schemes:
        raise ConfigurationError("candidate list is empty")
    report = calibrate(model, cluster, batch_size=batch_size)
    inputs = report.inputs
    prof = v100_kernel_profile()
    compute = ComputeModel(model, cluster.gpu)
    bs = inputs.batch_size or model.default_batch_size

    jobs: List[AdvisorShardJob] = []
    meta: List[Tuple[int, int, float, int]] = []
    infeasible_pairs = 0
    points = sweep.bandwidth_points
    for ci, scheme in enumerate(schemes):
        for p in sweep.world_sizes:
            cost = scheme.cost(model, p, prof)
            fits, _ = compute.fits_in_memory(
                bs, cost.aggregation_working_set(p))
            if not fits:
                infeasible_pairs += 1
                continue
            error = compression_error(model, scheme, p, prof)
            for start in range(0, points, sweep.shard_points):
                count = min(sweep.shard_points, points - start)
                jobs.append(AdvisorShardJob(
                    model=model, scheme=scheme, inputs=inputs,
                    world_size=p, bw_lo_gbps=sweep.min_bandwidth_gbps,
                    bw_hi_gbps=sweep.max_bandwidth_gbps,
                    bw_points=points, start=start, count=count,
                    gpu=cluster.gpu))
                meta.append((ci, p, error, start))
    if not jobs:
        raise ConfigurationError(
            "no feasible (candidate, world size) pair to sweep")
    return SweepPlan(model=model, cluster=cluster, inputs=inputs,
                     spec=sweep, schemes=schemes, jobs=tuple(jobs),
                     meta=tuple(meta), infeasible_pairs=infeasible_pairs)


def finish_sweep(plan: SweepPlan, outcomes: Sequence[Any],
                 ) -> AdvisorReport:
    """Reduce engine outcomes for ``plan.jobs`` into the final report.

    Per-shard Pareto sweep, exact frontier merge, deterministic total
    ordering, crossover refinement of frontier survivors, and the
    shared ranking path at the calibrated operating point.  Pure
    post-processing: byte-identical output for any sharding or
    execution order of the same plan.
    """
    model, cluster = plan.model, plan.cluster
    sweep, schemes, inputs = plan.spec, plan.schemes, plan.inputs
    points = sweep.bandwidth_points
    shard_t: List[np.ndarray] = []
    shard_e: List[np.ndarray] = []
    shard_ci: List[np.ndarray] = []
    shard_p: List[np.ndarray] = []
    shard_bw: List[np.ndarray] = []
    configs_priced = 0
    for (ci, p, error, start), outcome in zip(plan.meta, outcomes):
        totals = np.asarray(outcome.unwrap().total_s, dtype=float)
        configs_priced += totals.size
        errors = np.full(totals.size, error)
        keep = pareto_mask(totals, errors)
        idx = np.flatnonzero(keep)
        shard_t.append(totals[idx])
        shard_e.append(errors[idx])
        shard_ci.append(np.full(idx.size, ci, dtype=int))
        shard_p.append(np.full(idx.size, p, dtype=int))
        shard_bw.append(start + idx)
    t_all = np.concatenate(shard_t)
    e_all = np.concatenate(shard_e)
    ci_all = np.concatenate(shard_ci)
    p_all = np.concatenate(shard_p)
    bw_all = np.concatenate(shard_bw)
    survivors = np.flatnonzero(pareto_mask(t_all, e_all))

    bw_axis_gbps = np.linspace(sweep.min_bandwidth_gbps,
                               sweep.max_bandwidth_gbps, points)
    frontier = sorted(
        (FrontierPoint(
            scheme_label=schemes[ci_all[i]].label,
            world_size=int(p_all[i]),
            bandwidth_gbps=float(bw_axis_gbps[bw_all[i]]),
            time_s=float(t_all[i]),
            error=float(e_all[i]))
         for i in survivors),
        key=lambda pt: (pt.time_s, pt.error, pt.scheme_label,
                        pt.world_size, pt.bandwidth_gbps))

    # Refinement: exact break-evens for frontier schemes only, plus the
    # shared ranking path at the calibrated operating point.
    label_order: List[str] = []
    scheme_by_label: Dict[str, Scheme] = {}
    for i in survivors:
        scheme = schemes[ci_all[i]]
        if scheme.label not in scheme_by_label:
            scheme_by_label[scheme.label] = scheme
    for pt in frontier:
        if pt.scheme_label not in label_order:
            label_order.append(pt.scheme_label)
    crossovers = tuple(
        (label, solve_crossover(
            model, scheme_by_label[label], inputs,
            sweep.min_bandwidth_gbps, sweep.max_bandwidth_gbps,
            gpu=cluster.gpu))
        for label in label_order
        if not isinstance(scheme_by_label[label], SyncSGDScheme))
    recommendation = recommend_for_inputs(
        model, inputs,
        candidates=[scheme_by_label[label] for label in label_order],
        gpu=cluster.gpu)

    return AdvisorReport(
        model=model.name,
        cluster=cluster.describe(),
        world_size=inputs.world_size,
        bandwidth_gbps=inputs.bandwidth_bytes_per_s * 8 / 1e9,
        spec=sweep,
        candidates_total=len(schemes),
        configs_total=len(schemes) * len(sweep.world_sizes) * points,
        configs_priced=configs_priced,
        shards=len(plan.jobs),
        infeasible_pairs=plan.infeasible_pairs,
        frontier=tuple(frontier),
        crossovers=crossovers,
        recommendation=recommendation,
    )


def advise(model: ModelSpec, cluster: ClusterConfig,
           batch_size: Optional[int] = None,
           candidates: Optional[Sequence[Scheme]] = None,
           spec: Optional[SweepSpec] = None,
           engine: Optional[ExperimentEngine] = None) -> AdvisorReport:
    """Run the full sharded Pareto sweep for one model + cluster.

    :func:`plan_sweep` → one
    :meth:`~repro.engine.ExperimentEngine.run_advisor_outcomes` call →
    :func:`finish_sweep`.  The serving scheduler runs the same three
    stages with its shared engine, which is why ``repro advise`` and
    ``POST /v1/advise`` produce identical reports.
    """
    plan = plan_sweep(model, cluster, batch_size=batch_size,
                      candidates=candidates, spec=spec)
    eng = engine if engine is not None else ExperimentEngine()
    outcomes = eng.run_advisor_outcomes(list(plan.jobs))
    return finish_sweep(plan, outcomes)
