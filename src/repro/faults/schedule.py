"""Declarative fault schedules: what goes wrong, where, and when.

A :class:`FaultSchedule` is a frozen value object — tuples of fault
records plus a seed for the stochastic faults (retransmits).  It is the
unit of reproducibility: the schedule travels inside
:class:`~repro.engine.SimJob`, contributes to the job's content
fingerprint (so cached results can never be served across different
fault scenarios), and round-trips losslessly through JSON for the
``repro simulate --faults spec.json`` CLI.

Iteration indices are **0-based and absolute**: warmup iterations
count, so a fault at iteration 0 affects the very first simulated
iteration (which the measurement protocol then discards with the rest
of the warmup).

The JSON schema is documented in ``docs/faults.md``; every field name
below matches its JSON key exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError


def _check_window(name: str, start: int, duration: Optional[int],
                  period: Optional[int] = None) -> None:
    """Validate a fault's activity window (shared by all fault kinds)."""
    if start < 0:
        raise ConfigurationError(
            f"{name}: start_iteration must be >= 0, got {start}")
    if duration is not None and duration <= 0:
        raise ConfigurationError(
            f"{name}: duration_iterations must be > 0 or None "
            f"(persistent), got {duration}")
    if period is not None:
        if duration is None:
            raise ConfigurationError(
                f"{name}: a flapping fault (period_iterations set) needs "
                f"a finite duration_iterations")
        if period <= duration:
            raise ConfigurationError(
                f"{name}: period_iterations ({period}) must exceed "
                f"duration_iterations ({duration}) — otherwise the fault "
                f"is simply persistent")


def _window_active(iteration: int, start: int, duration: Optional[int],
                   period: Optional[int] = None) -> bool:
    """Whether a (start, duration, period) window covers ``iteration``."""
    if iteration < start:
        return False
    offset = iteration - start
    if period is not None:
        offset %= period
    return duration is None or offset < duration


@dataclass(frozen=True)
class StragglerFault:
    """A worker whose *compute* runs slow (thermal throttling, noisy
    neighbour, a dying GPU).

    In lockstep data-parallel training every collective waits for the
    slowest participant, so one straggling worker stretches the whole
    iteration's compute by ``slowdown``.

    Attributes:
        worker: Global rank of the straggling worker.
        slowdown: Compute stretch factor (> 1; 2.0 = half speed).
        start_iteration: First affected iteration (0-based, absolute).
        duration_iterations: Window length; ``None`` = persistent.
    """

    worker: int
    slowdown: float
    start_iteration: int = 0
    duration_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(
                f"straggler worker must be >= 0, got {self.worker}")
        if self.slowdown <= 1.0:
            raise ConfigurationError(
                f"straggler slowdown must be > 1, got {self.slowdown}")
        _check_window("straggler", self.start_iteration,
                      self.duration_iterations)

    def active(self, iteration: int) -> bool:
        """Whether this fault affects ``iteration``."""
        return _window_active(iteration, self.start_iteration,
                              self.duration_iterations)


@dataclass(frozen=True)
class LinkFault:
    """One inter-node link running below nominal bandwidth.

    Set ``period_iterations`` to make the link *flap*: degraded for
    ``duration_iterations`` out of every ``period_iterations``, healthy
    in between — the "sometimes fine, sometimes terrible" pattern that
    makes real incidents hard to localize.

    Attributes:
        node_a: One endpoint (node index).
        node_b: The other endpoint.
        factor: Bandwidth multiplier in (0, 1] while active.
        start_iteration: First affected iteration.
        duration_iterations: Degraded window length; ``None`` = persistent.
        period_iterations: Flap period; ``None`` = a single window.
    """

    node_a: int
    node_b: int
    factor: float
    start_iteration: int = 0
    duration_iterations: Optional[int] = None
    period_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node_a < 0 or self.node_b < 0:
            raise ConfigurationError("link endpoints must be >= 0")
        if self.node_a == self.node_b:
            raise ConfigurationError(
                f"link fault endpoints must differ, got node "
                f"{self.node_a} twice")
        if not 0 < self.factor <= 1:
            raise ConfigurationError(
                f"link factor must be in (0, 1], got {self.factor}")
        _check_window("link", self.start_iteration,
                      self.duration_iterations, self.period_iterations)

    def active(self, iteration: int) -> bool:
        """Whether the link is degraded during ``iteration``."""
        return _window_active(iteration, self.start_iteration,
                              self.duration_iterations,
                              self.period_iterations)


@dataclass(frozen=True)
class NodeFault:
    """Every link touching one node degraded — a straggler NIC.

    This is the network-side straggler the paper's pre-run iperf
    methodology exists to catch: collectives run at the pace of the
    pairwise *minimum* bandwidth, so one bad NIC drags the whole ring.

    Attributes:
        node: The affected node index.
        factor: Bandwidth multiplier in (0, 1] while active.
        start_iteration: First affected iteration.
        duration_iterations: Window length; ``None`` = persistent.
        period_iterations: Flap period; ``None`` = a single window.
    """

    node: int
    factor: float
    start_iteration: int = 0
    duration_iterations: Optional[int] = None
    period_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(
                f"node must be >= 0, got {self.node}")
        if not 0 < self.factor <= 1:
            raise ConfigurationError(
                f"node factor must be in (0, 1], got {self.factor}")
        _check_window("node", self.start_iteration,
                      self.duration_iterations, self.period_iterations)

    def active(self, iteration: int) -> bool:
        """Whether the NIC is degraded during ``iteration``."""
        return _window_active(iteration, self.start_iteration,
                              self.duration_iterations,
                              self.period_iterations)


@dataclass(frozen=True)
class RetransmitFault:
    """Gradient transfers that occasionally need to be re-sent.

    Each communication span independently "drops" with probability
    ``drop_rate`` per attempt (drawn from the schedule's seeded RNG, so
    the pattern is reproducible).  A dropped transfer costs a timeout —
    growing by ``backoff`` per consecutive failure — plus a full α+β
    replay of the transfer itself, which is how TCP-level loss actually
    bills a collective.

    Attributes:
        drop_rate: Per-attempt drop probability in [0, 1).
        timeout_s: Detection timeout before the first retransmit.
        backoff: Multiplier on the timeout per consecutive failure (>= 1).
        max_retries: Attempts after which the transfer is forced through
            (the fabric eventually delivers; training never wedges).
        start_iteration: First affected iteration.
        duration_iterations: Window length; ``None`` = persistent.
    """

    drop_rate: float
    timeout_s: float = 2e-3
    backoff: float = 2.0
    max_retries: int = 5
    start_iteration: int = 0
    duration_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.drop_rate < 1:
            raise ConfigurationError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.timeout_s < 0:
            raise ConfigurationError(
                f"timeout_s must be >= 0, got {self.timeout_s}")
        if self.backoff < 1:
            raise ConfigurationError(
                f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}")
        _check_window("retransmit", self.start_iteration,
                      self.duration_iterations)

    def active(self, iteration: int) -> bool:
        """Whether transfers can drop during ``iteration``."""
        return _window_active(iteration, self.start_iteration,
                              self.duration_iterations)


#: Crash recovery policies: restart the worker and replay the iteration
#: from its checkpoint, or reconfigure elastically to n-1 workers.
RECOVERY_POLICIES = ("restart", "elastic")


@dataclass(frozen=True)
class CrashFault:
    """A worker process dies at the start of an iteration.

    Two recovery policies, mirroring what real systems do:

    * ``"restart"`` — the worker is relaunched and rejoins from the
      current iteration; everyone stalls for ``stall_s`` (process
      launch + NCCL re-init + checkpoint load), then training resumes
      at full world size;
    * ``"elastic"`` — the job reconfigures to ``n - 1`` workers (a
      torchelastic-style membership change costing ``stall_s`` once)
      and *stays* at the reduced size for the rest of the run, which
      changes every subsequent collective's cost.

    Attributes:
        worker: Global rank of the crashing worker.
        at_iteration: Iteration at whose start the crash hits.
        recovery: ``"restart"`` or ``"elastic"``.
        stall_s: Simulated recovery stall, charged once at
            ``at_iteration``.
    """

    worker: int
    at_iteration: int
    recovery: str = "restart"
    stall_s: float = 1.0

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(
                f"crash worker must be >= 0, got {self.worker}")
        if self.at_iteration < 0:
            raise ConfigurationError(
                f"at_iteration must be >= 0, got {self.at_iteration}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {self.recovery!r} "
                f"(choose from {RECOVERY_POLICIES})")
        if self.stall_s < 0:
            raise ConfigurationError(
                f"stall_s must be >= 0, got {self.stall_s}")


#: JSON keys of the schedule's fault lists, in serialization order.
_FAULT_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("stragglers", StragglerFault),
    ("links", LinkFault),
    ("nodes", NodeFault),
    ("retransmits", RetransmitFault),
    ("crashes", CrashFault),
)


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong during one simulated run.

    Attributes:
        seed: Seed for the schedule's own RNG (retransmit draws).  Kept
            separate from the simulator's jitter RNG so that attaching
            faults never perturbs the jitter stream.
        stragglers: Compute-side stragglers.
        links: Degraded / flapping inter-node links.
        nodes: Straggler NICs (whole-node degradation).
        retransmits: Transfer-drop policies.
        crashes: Worker crashes with recovery policies.
    """

    seed: int = 0
    stragglers: Tuple[StragglerFault, ...] = ()
    links: Tuple[LinkFault, ...] = ()
    nodes: Tuple[NodeFault, ...] = ()
    retransmits: Tuple[RetransmitFault, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()

    def __post_init__(self) -> None:
        for name, _ in _FAULT_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, tuple):
                # Accept lists for ergonomic construction; store tuples
                # so the schedule stays hashable and immutable.
                object.__setattr__(self, name, tuple(value))
        self._validate_crash_sequences()

    def _validate_crash_sequences(self) -> None:
        """Reject crash sequences with no physical interpretation.

        A worker may crash more than once only when an intervening
        ``"restart"`` recovery brought it back.  Two crashes at the same
        iteration are a duplicate entry, and any crash *after* an
        elastic departure references a worker that is no longer in the
        job — the injector used to double-decrement the surviving world
        size for exactly that case.
        """
        by_worker: Dict[int, list] = {}
        for c in self.crashes:
            by_worker.setdefault(c.worker, []).append(c)
        for worker, entries in by_worker.items():
            entries.sort(key=lambda c: c.at_iteration)
            for earlier, later in zip(entries, entries[1:]):
                if earlier.at_iteration == later.at_iteration:
                    raise ConfigurationError(
                        f"worker {worker} crashes twice at iteration "
                        f"{earlier.at_iteration}; at most one crash per "
                        f"worker per iteration")
                if earlier.recovery == "elastic":
                    raise ConfigurationError(
                        f"worker {worker} crashes at iteration "
                        f"{later.at_iteration} but already left the job "
                        f"elastically at iteration {earlier.at_iteration}; "
                        f"only an intervening \"restart\" recovery brings "
                        f"a worker back")

    # ----- introspection ----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the schedule contains no faults at all.

        An empty schedule is the identity: the simulator treats it
        exactly like ``faults=None`` (same RNG stream, same cache key).
        """
        return not any(getattr(self, name) for name, _ in _FAULT_FIELDS)

    def count(self) -> int:
        """Total number of fault records."""
        return sum(len(getattr(self, name)) for name, _ in _FAULT_FIELDS)

    def describe(self) -> str:
        """One-line human summary (CLI and logs)."""
        if self.is_empty:
            return "no faults"
        parts = [f"{len(getattr(self, name))} {name}"
                 for name, _ in _FAULT_FIELDS if getattr(self, name)]
        return ", ".join(parts) + f" (seed {self.seed})"

    # ----- serialization ----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable dict (the ``--faults`` file format)."""
        payload: Dict[str, Any] = {"seed": self.seed}
        for name, _ in _FAULT_FIELDS:
            faults = getattr(self, name)
            if faults:
                payload[name] = [asdict(f) for f in faults]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        """Parse the dict form produced by :meth:`to_payload`."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault schedule must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {"seed"} | {name for name, _ in _FAULT_FIELDS}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault schedule keys {unknown} "
                f"(known: {sorted(known)})")
        kwargs: Dict[str, Any] = {"seed": int(payload.get("seed", 0))}
        for name, fault_cls in _FAULT_FIELDS:
            entries = payload.get(name, [])
            try:
                kwargs[name] = tuple(fault_cls(**e) for e in entries)
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad {name} entry: {exc}")
        return cls(**kwargs)

    def to_json(self) -> str:
        """Serialize to the documented JSON schema."""
        return json.dumps(self.to_payload(), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from JSON text."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault schedule JSON: {exc}")
        return cls.from_payload(payload)

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        """Read a schedule from a JSON file (the CLI's ``--faults``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault schedule {path!r}: {exc}")

    def save(self, path: str) -> None:
        """Write the JSON form to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def fingerprint_payload(self) -> Dict[str, Any]:
        """What the engine's content fingerprint hashes for this
        schedule — the full payload; any field change is a new key."""
        return self.to_payload()
