"""§4.3 calibration methodology, run against the simulated testbed.

The paper calibrates its model per experiment:

* **BW** — iperf3 between every instance pair, take the minimum;
* **α** — ring all-reduce of a tiny tensor, divide by the hop count;
* **γ** — the ratio of the backward-pass duration in a *distributed*
  Nsight trace to the single-machine backward time;
* **T_comp** — single-machine backward timing.

This module performs the same four measurements against a
:class:`~repro.network.Fabric` and the discrete-event simulator, returning
a :class:`~repro.core.perf_model.PerfModelInputs` ready for prediction.
Keeping calibration a *measurement* (rather than copying the fabric's
internal constants) means the Figure-8 validation is honest: the model
never sees ground truth it was not entitled to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..compression.schemes import Scheme
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric, estimate_alpha, measure_cluster
from ..simulator import DDPConfig, DDPSimulator
from ..simulator.trace import estimate_gamma
from .perf_model import PerfModelInputs


@dataclass(frozen=True)
class CalibrationReport:
    """Everything §4.3 measures before a run."""

    inputs: PerfModelInputs
    standalone_backward_s: float
    measured_gamma: float
    min_bandwidth_bytes_per_s: float
    alpha_s: float

    def describe(self) -> str:
        return (
            f"BW = {self.min_bandwidth_bytes_per_s * 8 / 1e9:.2f} Gbit/s "
            f"(pairwise min), alpha = {self.alpha_s * 1e6:.1f} us, "
            f"gamma = {self.measured_gamma:.3f}, "
            f"T_comp = {self.standalone_backward_s * 1e3:.1f} ms")


def calibrate(model: ModelSpec, cluster: ClusterConfig,
              batch_size: Optional[int] = None,
              fabric: Optional[Fabric] = None,
              config: Optional[DDPConfig] = None) -> CalibrationReport:
    """Run the paper's full pre-experiment calibration.

    γ is estimated from one simulated distributed iteration with jitter
    disabled (Nsight traces are single runs too); ``T_comp`` comes from a
    single-worker simulation of the same model.
    """
    fabric = fabric if fabric is not None else Fabric(cluster)
    bs = batch_size if batch_size is not None else model.default_batch_size
    base_cfg = config if config is not None else DDPConfig()

    report = measure_cluster(fabric)
    alpha = estimate_alpha(fabric)

    # T_comp on a single machine: intra-node NVLink communication does
    # not contend with compute, so the single-machine backward runs
    # unstretched (gamma = 1) — this is the paper's standalone timing.
    solo_cluster = ClusterConfig(
        instance=cluster.instance, num_nodes=1, seed=cluster.seed)
    solo_quiet = DDPConfig(
        bucket_cap_bytes=base_cfg.bucket_cap_bytes,
        overlap_communication=base_cfg.overlap_communication,
        gamma=1.0,
        allreduce_algorithm=base_cfg.allreduce_algorithm,
        compute_jitter=0.0, comm_jitter=0.0,
        check_memory=False)
    solo = DDPSimulator(model, solo_cluster, config=solo_quiet)
    solo_trace = solo.simulate_iteration(bs, np.random.default_rng(0))
    t_comp = solo_trace.backward_end - solo_trace.forward_end

    # γ from a distributed trace (with the engine's real gamma in play).
    quiet = DDPConfig(
        bucket_cap_bytes=base_cfg.bucket_cap_bytes,
        overlap_communication=base_cfg.overlap_communication,
        gamma=base_cfg.gamma,
        allreduce_algorithm=base_cfg.allreduce_algorithm,
        compute_jitter=0.0, comm_jitter=0.0,
        check_memory=False)
    dist = DDPSimulator(model, cluster, fabric=fabric, config=quiet)
    dist_trace = dist.simulate_iteration(bs, np.random.default_rng(0))
    gamma = max(1.0, estimate_gamma(dist_trace, t_comp))

    inputs = PerfModelInputs(
        world_size=cluster.world_size,
        bandwidth_bytes_per_s=report.min_bandwidth,
        alpha_s=alpha,
        gamma=gamma,
        batch_size=bs,
        bucket_cap_bytes=base_cfg.bucket_cap_bytes,
    )
    return CalibrationReport(
        inputs=inputs,
        standalone_backward_s=t_comp,
        measured_gamma=gamma,
        min_bandwidth_bytes_per_s=report.min_bandwidth,
        alpha_s=alpha,
    )
