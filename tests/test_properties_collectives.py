"""Property-based tests for the numeric collectives (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.collectives import (
    parameter_server_reduce,
    reduce_scatter,
    ring_allreduce,
    tree_allreduce,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False, width=64)


@st.composite
def worker_buffers(draw, max_workers=8, max_size=64):
    p = draw(st.integers(min_value=1, max_value=max_workers))
    n = draw(st.integers(min_value=1, max_value=max_size))
    return [draw(arrays(np.float64, (n,), elements=finite_floats))
            for _ in range(p)]


@given(worker_buffers())
@settings(max_examples=60, deadline=None)
def test_ring_allreduce_equals_sum(buffers):
    expected = np.sum(buffers, axis=0)
    for out in ring_allreduce(buffers):
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


@given(worker_buffers())
@settings(max_examples=60, deadline=None)
def test_ring_tree_and_sequential_agree(buffers):
    ring = ring_allreduce(buffers)[0]
    tree = tree_allreduce(buffers)[0]
    seq = parameter_server_reduce(buffers)[0]
    np.testing.assert_allclose(ring, tree, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(ring, seq, rtol=1e-9, atol=1e-9)


@given(worker_buffers())
@settings(max_examples=60, deadline=None)
def test_all_ranks_receive_identical_results(buffers):
    outputs = ring_allreduce(buffers)
    for out in outputs[1:]:
        np.testing.assert_allclose(out, outputs[0], rtol=1e-12, atol=1e-12)


@given(worker_buffers())
@settings(max_examples=60, deadline=None)
def test_reduce_scatter_concatenates_to_sum(buffers):
    expected = np.sum(buffers, axis=0)
    chunks = reduce_scatter(buffers)
    np.testing.assert_allclose(np.concatenate(chunks), expected,
                               rtol=1e-9, atol=1e-9)


@given(worker_buffers(), st.floats(min_value=0.1, max_value=10.0,
                                   allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_ring_allreduce_is_linear(buffers, scale):
    scaled = [scale * b for b in buffers]
    base = ring_allreduce(buffers)[0]
    np.testing.assert_allclose(ring_allreduce(scaled)[0], scale * base,
                               rtol=1e-9, atol=1e-7)
