"""Request shapes for the serving API, parsed from JSON bodies.

Validation happens here, at the HTTP boundary, so the scheduler only
ever sees well-formed work items; anything malformed raises
:class:`~repro.errors.ConfigurationError`, which the HTTP layer maps to
a structured 400.  Field semantics deliberately mirror the CLI flags
(``repro recommend --model --gpus --batch --bandwidth``; ``repro
simulate --scheme --iterations``) so a request body is the JSON spelling
of the command it replaces — that is what makes the byte-parity
guarantee of ``POST /v1/whatif`` vs ``repro recommend`` meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..compression import scheme_from_spec
from ..compression.schemes import Scheme
from ..errors import ConfigurationError
from ..hardware import ClusterConfig, cluster_for_gpus
from ..models import ModelSpec, available_models, get_model

#: Most seeds one simulate request may fan out to; keeps a single
#: request from monopolizing a scheduler batch.
MAX_SEEDS_PER_REQUEST = 64


def _require_fields(body: Dict[str, Any], allowed: Tuple[str, ...],
                    kind: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown field(s) {', '.join(map(repr, unknown))} in "
            f"{kind} request; allowed: {', '.join(allowed)}")


def _model_from(body: Dict[str, Any]) -> ModelSpec:
    name = body.get("model", "resnet50")
    if not isinstance(name, str) or name not in available_models():
        raise ConfigurationError(
            f"unknown model {name!r}; available: {available_models()}")
    return get_model(name)


def _cluster_from(body: Dict[str, Any]) -> ClusterConfig:
    gpus = body.get("gpus", 32)
    if not isinstance(gpus, int) or isinstance(gpus, bool) or gpus < 1:
        raise ConfigurationError(f"gpus must be a positive int, got {gpus!r}")
    cluster = cluster_for_gpus(gpus)
    bandwidth = body.get("bandwidth")
    if bandwidth is not None:
        if not isinstance(bandwidth, (int, float)) \
                or isinstance(bandwidth, bool) or bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive Gbit/s, got {bandwidth!r}")
        cluster = cluster.with_instance(
            cluster.instance.with_network_gbps(float(bandwidth)))
    return cluster


def _batch_from(body: Dict[str, Any]) -> Optional[int]:
    batch = body.get("batch")
    if batch is None:
        return None
    if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
        raise ConfigurationError(
            f"batch must be a positive int, got {batch!r}")
    return batch


def _timeout_from(body: Dict[str, Any]) -> Optional[float]:
    timeout = body.get("timeout_s")
    if timeout is None:
        return None
    if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
            or timeout <= 0:
        raise ConfigurationError(
            f"timeout_s must be positive seconds, got {timeout!r}")
    return float(timeout)


@dataclass(frozen=True)
class WhatIfRequest:
    """``POST /v1/whatif`` — "price my cluster config".

    The exact inputs of ``repro recommend``: the advisor calibrates
    against the cluster, screens candidates for memory feasibility,
    prices the survivors (through the shared engine, so concurrent
    requests coalesce into one grid call), and returns the ranked
    recommendation — plus, unless ``crossovers`` is false, the exact
    break-even bandwidths from :func:`repro.core.solve_crossover`.
    """

    model: ModelSpec
    cluster: ClusterConfig
    batch_size: Optional[int] = None
    crossovers: bool = True
    wait: bool = True
    timeout_s: Optional[float] = None

    kind = "whatif"

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "WhatIfRequest":
        """Validate and build from a decoded JSON object."""
        _require_fields(body, ("model", "gpus", "batch", "bandwidth",
                               "crossovers", "wait", "timeout_s"), cls.kind)
        crossovers = body.get("crossovers", True)
        wait = body.get("wait", True)
        if not isinstance(crossovers, bool):
            raise ConfigurationError(
                f"crossovers must be a bool, got {crossovers!r}")
        if not isinstance(wait, bool):
            raise ConfigurationError(f"wait must be a bool, got {wait!r}")
        return cls(model=_model_from(body), cluster=_cluster_from(body),
                   batch_size=_batch_from(body), crossovers=crossovers,
                   wait=wait, timeout_s=_timeout_from(body))


@dataclass(frozen=True)
class SimulateRequest:
    """``POST /v1/simulate`` — run the discrete-event/batch simulator.

    One :class:`~repro.engine.SimJob` per seed; requests that share
    model, cluster, scheme, batch and protocol but differ in seed share
    a ``family_key``, so the scheduler stacks them — across requests —
    into one vectorized kernel call.
    """

    model: ModelSpec
    cluster: ClusterConfig
    scheme: Optional[Scheme] = None
    batch_size: Optional[int] = None
    iterations: int = 60
    seeds: Tuple[int, ...] = (0,)
    wait: bool = False
    timeout_s: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    kind = "simulate"

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "SimulateRequest":
        """Validate and build from a decoded JSON object."""
        _require_fields(body, ("model", "gpus", "batch", "bandwidth",
                               "scheme", "iterations", "seeds", "seed",
                               "wait", "timeout_s"), cls.kind)
        scheme_spec = body.get("scheme")
        scheme = None
        if scheme_spec is not None:
            if not isinstance(scheme_spec, str):
                raise ConfigurationError(
                    f"scheme must be a spec string, got {scheme_spec!r}")
            scheme = scheme_from_spec(scheme_spec)
        iterations = body.get("iterations", 60)
        if not isinstance(iterations, int) or isinstance(iterations, bool) \
                or not 10 < iterations <= 10_000:
            raise ConfigurationError(
                "iterations must be an int in (10, 10000] "
                f"(warmup is 10), got {iterations!r}")
        if "seeds" in body and "seed" in body:
            raise ConfigurationError("pass either seed or seeds, not both")
        seeds_raw = body.get("seeds", [body.get("seed", 0)])
        if not isinstance(seeds_raw, list) or not seeds_raw or not all(
                isinstance(s, int) and not isinstance(s, bool)
                for s in seeds_raw):
            raise ConfigurationError(
                f"seeds must be a non-empty list of ints, got {seeds_raw!r}")
        if len(seeds_raw) > MAX_SEEDS_PER_REQUEST:
            raise ConfigurationError(
                f"at most {MAX_SEEDS_PER_REQUEST} seeds per request, "
                f"got {len(seeds_raw)}")
        wait = body.get("wait", False)
        if not isinstance(wait, bool):
            raise ConfigurationError(f"wait must be a bool, got {wait!r}")
        return cls(model=_model_from(body), cluster=_cluster_from(body),
                   scheme=scheme, batch_size=_batch_from(body),
                   iterations=iterations, seeds=tuple(seeds_raw),
                   wait=wait, timeout_s=_timeout_from(body))


@dataclass(frozen=True)
class AdviseRequest:
    """``POST /v1/advise`` — the sharded Pareto sweep as a service.

    The JSON spelling of ``repro advise``: the scheduler expands the
    request with :func:`repro.analysis.plan_sweep`, runs the shard jobs
    through the shared engine inside its batch (coalescing with other
    requests' work), and reduces with
    :func:`repro.analysis.finish_sweep` — so the response body is the
    CLI report's ``to_dict``, byte-identical to the offline path.
    Serving defaults are smaller than the CLI's (512 bandwidth points
    vs 8192) to keep request latency interactive; clients wanting the
    full million-config sweep pass ``bandwidth_points`` explicitly.
    """

    model: ModelSpec
    cluster: ClusterConfig
    batch_size: Optional[int] = None
    world_sizes: Tuple[int, ...] = (8, 16, 32, 64)
    min_bandwidth_gbps: float = 1.0
    max_bandwidth_gbps: float = 30.0
    bandwidth_points: int = 512
    shard_points: int = 256
    top: int = 12
    wait: bool = True
    timeout_s: Optional[float] = None

    kind = "advise"

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "AdviseRequest":
        """Validate and build from a decoded JSON object."""
        _require_fields(body, ("model", "gpus", "batch", "bandwidth",
                               "world_sizes", "min_bandwidth_gbps",
                               "max_bandwidth_gbps", "bandwidth_points",
                               "shard_points", "top", "wait", "timeout_s"),
                        cls.kind)
        world_sizes_raw = body.get("world_sizes", [8, 16, 32, 64])
        if not isinstance(world_sizes_raw, list) or not world_sizes_raw \
                or not all(isinstance(p, int) and not isinstance(p, bool)
                           and p >= 1 for p in world_sizes_raw):
            raise ConfigurationError(
                f"world_sizes must be a non-empty list of positive ints, "
                f"got {world_sizes_raw!r}")
        lo = body.get("min_bandwidth_gbps", 1.0)
        hi = body.get("max_bandwidth_gbps", 30.0)
        for name, value in (("min_bandwidth_gbps", lo),
                            ("max_bandwidth_gbps", hi)):
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive Gbit/s, got {value!r}")
        points = body.get("bandwidth_points", 512)
        shard = body.get("shard_points", 256)
        top = body.get("top", 12)
        for name, value, floor in (("bandwidth_points", points, 2),
                                   ("shard_points", shard, 1),
                                   ("top", top, 1)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < floor:
                raise ConfigurationError(
                    f"{name} must be an int >= {floor}, got {value!r}")
        wait = body.get("wait", True)
        if not isinstance(wait, bool):
            raise ConfigurationError(f"wait must be a bool, got {wait!r}")
        return cls(model=_model_from(body), cluster=_cluster_from(body),
                   batch_size=_batch_from(body),
                   world_sizes=tuple(world_sizes_raw),
                   min_bandwidth_gbps=float(lo),
                   max_bandwidth_gbps=float(hi),
                   bandwidth_points=points, shard_points=shard, top=top,
                   wait=wait, timeout_s=_timeout_from(body))


def parse_request(kind: str, body: Any):
    """Dispatch a decoded JSON body to the right request class."""
    if not isinstance(body, dict):
        raise ConfigurationError(
            f"request body must be a JSON object, got {type(body).__name__}")
    if kind == "whatif":
        return WhatIfRequest.from_json(body)
    if kind == "simulate":
        return SimulateRequest.from_json(body)
    if kind == "advise":
        return AdviseRequest.from_json(body)
    raise ConfigurationError(f"unknown request kind {kind!r}")
