"""Table 1: all-reduce / layer-wise classification of nine methods."""

from repro.experiments import run_table1


def test_table1_classification(run_once, show):
    result = run_once(run_table1, verify=True)
    show(result)
    assert len(result.rows) == 9
    for row in result.rows:
        # Our flags match the paper's table...
        assert row["all_reduce"] == row["paper_all_reduce"], row["method"]
        assert row["layerwise"] == row["paper_layerwise"], row["method"]
        # ...and the all-reduce column is verified against the numeric
        # aggregation path, not just asserted.
        assert row["verified_all_reduce"] == row["all_reduce"], row["method"]
