"""Span-based run tracing: tracer, Prometheus exposition, engine spans.

Covers the telemetry tracer contract (null backend, recorder, context
propagation), the Prometheus text renderer and its validator, the
engine's span instrumentation (serial, pooled, and chaos-killed runs
all yield one coherent trace), the Perfetto exporter for tracer spans,
and the CLI surface (``--trace-run``, ``repro metrics``).
"""

import json
import os

import pytest

from repro.engine import ExperimentEngine, SimJob, SimulationCache
from repro.engine.engine import CHAOS_KILL_ENV
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.simulator import tracer_spans_to_events, write_trace_spans
from repro.telemetry import (
    NullTracer,
    TraceRecorder,
    TraceSpan,
    build_manifest,
    disable_tracing,
    enable_tracing,
    escape_label_value,
    format_key,
    get_tracer,
    parse_key,
    render_prometheus,
    set_tracer,
    validate_prometheus_text,
)
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry.metrics import metric_key


@pytest.fixture(autouse=True)
def _isolate_telemetry():
    """Restore the process-global tracer and registry after each test."""
    previous_tracer = get_tracer()
    previous_registry = telemetry_metrics.get_registry()
    yield
    set_tracer(previous_tracer)
    telemetry_metrics.set_registry(previous_registry)


@pytest.fixture
def small_jobs(tiny_model):
    return [
        SimJob(model=tiny_model, cluster=cluster_for_gpus(4),
               batch_size=4, iterations=6, warmup=1, seed=seed)
        for seed in range(4)
    ]


class TestTraceSpan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSpan(name="", track="t", start_unix_s=0.0,
                      end_unix_s=1.0, trace_id="t", span_id="1",
                      parent_id=None, pid=1)
        with pytest.raises(ConfigurationError):
            TraceSpan(name="n", track="", start_unix_s=0.0,
                      end_unix_s=1.0, trace_id="t", span_id="1",
                      parent_id=None, pid=1)
        with pytest.raises(ConfigurationError):
            TraceSpan(name="n", track="t", start_unix_s=2.0,
                      end_unix_s=1.0, trace_id="t", span_id="1",
                      parent_id=None, pid=1)

    def test_duration(self):
        span = TraceSpan(name="n", track="t", start_unix_s=1.5,
                         end_unix_s=4.0, trace_id="t", span_id="1",
                         parent_id=None, pid=1)
        assert span.duration_s == 2.5


class TestNullTracer:
    def test_default_tracer_is_null_and_disabled(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled

    def test_handles_are_shared_noop_singletons(self):
        tracer = NullTracer()
        a = tracer.span("x", track="t")
        b = tracer.begin("y", track="t")
        assert a is b
        with a:
            a.annotate(k="v")
        tracer.finish(a)
        tracer.add_span("z", "t", 0.0, 1.0)
        tracer.merge([])
        assert tracer.drain() == ()
        assert tracer.spans == ()

    def test_set_tracer_rejects_none(self):
        with pytest.raises(ConfigurationError):
            set_tracer(None)


class TestTraceRecorder:
    def test_context_manager_nesting_sets_parents(self):
        tracer = TraceRecorder()
        with tracer.span("outer", track="a") as outer:
            with tracer.span("inner", track="b") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.drain()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[1].parent_id is None
        assert all(s.trace_id == tracer.trace_id for s in spans)

    def test_begin_does_not_become_implicit_parent(self):
        tracer = TraceRecorder()
        first = tracer.begin("first", track="t")
        second = tracer.begin("second", track="t")
        # Both parent to the (empty) stack root, not to each other.
        assert second.parent_id is None
        tracer.finish(first)
        tracer.finish(second)
        explicit = tracer.begin("third", track="t",
                                parent_id=first.span_id)
        tracer.finish(explicit)
        assert tracer.drain()[-1].parent_id == first.span_id

    def test_root_parent_seeds_cross_process_lineage(self):
        tracer = TraceRecorder(trace_id="trace-1", root_parent_id="p.1")
        with tracer.span("local", track="exec"):
            pass
        (span,) = tracer.drain()
        assert span.trace_id == "trace-1"
        assert span.parent_id == "p.1"
        assert span.pid == os.getpid()

    def test_add_span_clamps_clock_skew(self):
        tracer = TraceRecorder()
        tracer.add_span("queue-wait", track="queue",
                        start_unix_s=10.0, end_unix_s=9.999)
        (span,) = tracer.drain()
        assert span.end_unix_s == span.start_unix_s == 10.0

    def test_labels_stringified_and_error_annotated(self):
        tracer = TraceRecorder()
        with pytest.raises(ValueError):
            with tracer.span("boom", track="t", n=3):
                raise ValueError("nope")
        (span,) = tracer.drain()
        labels = dict(span.labels)
        assert labels["n"] == "3"
        assert labels["error"] == "ValueError"

    def test_merge_adopts_foreign_spans(self):
        tracer = TraceRecorder(trace_id="shared")
        worker = TraceRecorder(trace_id="shared", root_parent_id="p.9")
        with worker.span("remote", track="exec"):
            pass
        tracer.merge(worker.drain())
        assert [s.name for s in tracer.spans] == ["remote"]

    def test_span_ids_are_pid_qualified_and_unique(self):
        tracer = TraceRecorder()
        ids = {tracer.begin(f"s{i}", track="t").span_id
               for i in range(10)}
        assert len(ids) == 10
        assert all(i.startswith(f"{os.getpid():x}.") for i in ids)

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        assert get_tracer() is tracer and tracer.enabled
        disable_tracing()
        assert not get_tracer().enabled


class TestPromEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_format_key_escapes_and_parse_key_inverts(self):
        key = metric_key("m", {"path": 'C:\\x', "msg": 'say "hi"\n'})
        formatted = format_key(key)
        assert "\n" not in formatted
        assert parse_key(formatted) == key

    def test_parse_key_plain(self):
        assert parse_key("hits") == ("hits", ())

    def test_parse_key_rejects_malformed(self):
        for bad in ('m{a="x"', 'm{a=x}', "m{=}", 'm{a="x" b="y"}'):
            with pytest.raises(ConfigurationError):
                parse_key(bad)


class TestRenderPrometheus:
    def snapshot(self):
        telemetry_metrics.enable()
        registry = telemetry_metrics.get_registry()
        registry.counter("jobs_total", scheme='power"sgd').inc(3)
        registry.gauge("pool_utilization").set(0.5)
        registry.histogram("exec_s").observe(1.0)
        registry.histogram("exec_s").observe(3.0)
        return registry.snapshot()

    def test_families_typed_and_samples_escaped(self):
        text = render_prometheus(self.snapshot())
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{scheme="power\\"sgd"} 3.0' in text
        assert "# TYPE pool_utilization gauge" in text
        assert "# TYPE exec_s summary" in text
        assert 'exec_s{quantile="0.5"}' in text
        assert "exec_s_sum 4.0" in text
        assert "exec_s_count 2.0" in text

    def test_render_output_validates_clean(self):
        assert validate_prometheus_text(
            render_prometheus(self.snapshot())) == []

    def test_validator_flags_bad_lines(self):
        problems = validate_prometheus_text(
            "ok_total 1.0\nbad line here\n2bad_name 1.0\n")
        assert len(problems) == 2
        assert problems[0].startswith("line 2:")

    def test_empty_snapshot_renders_empty(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert render_prometheus(empty) == ""
        with pytest.raises(ConfigurationError):
            render_prometheus({"counters": {}})


class TestEngineTracing:
    def run_traced(self, batch, tmp_path=None, **engine_kwargs):
        tracer = enable_tracing()
        cache = (SimulationCache(str(tmp_path / "cache"))
                 if tmp_path is not None else None)
        engine = ExperimentEngine(cache=cache, **engine_kwargs)
        outcomes = engine.run_outcomes(batch)
        spans = tracer.drain()
        disable_tracing()
        return outcomes, spans

    def test_serial_run_emits_nested_spans(self, small_jobs, tmp_path):
        # chunking=False keeps these jobs (which differ only by seed,
        # so they'd family-batch) as one engine span each.
        outcomes, spans = self.run_traced(small_jobs, tmp_path,
                                          chunking=False)
        assert all(o.ok for o in outcomes)
        by_id = {s.span_id: s for s in spans}
        names = [s.name for s in spans]
        assert "engine-batch" in names
        assert "cache-lookup" in names
        # Stores are batched: ONE cache-store span carrying every miss
        # the batch produced, not one span per job.
        (store_span,) = [s for s in spans if s.name == "cache-store"]
        assert dict(store_span.labels)["entries"] == str(len(small_jobs))
        (batch_span,) = [s for s in spans if s.name == "engine-batch"]
        job_spans = [s for s in spans
                     if s.track == "engine" and s.name != "engine-batch"]
        assert len(job_spans) == len(small_jobs)
        for job_span in job_spans:
            assert job_span.parent_id == batch_span.span_id
        for span in spans:
            if span.track in ("exec", "queue"):
                assert by_id[span.parent_id].track == "engine"
        # The simulator's own spans rode along (sim-run + streams).
        assert any(s.track == "sim" for s in spans)
        assert any(s.track.startswith("sim:") for s in spans)

    def test_pooled_run_parents_across_processes(self, small_jobs):
        outcomes, spans = self.run_traced(small_jobs, jobs=2,
                                          chunking=False)
        assert all(o.ok for o in outcomes)
        assert len({s.trace_id for s in spans}) == 1
        worker_spans = [s for s in spans if s.pid != os.getpid()]
        assert worker_spans, "no spans came back from pool workers"
        parent_ids = {s.span_id for s in spans if s.pid == os.getpid()}
        for span in worker_spans:
            if span.track in ("exec", "queue"):
                assert span.parent_id in parent_ids
        job_spans = [s for s in spans
                     if s.track == "engine" and s.name != "engine-batch"]
        assert len(job_spans) == len(small_jobs)
        assert all(dict(s.labels)["outcome"] == "ok" for s in job_spans)

    def test_untraced_run_records_nothing(self, small_jobs):
        assert not get_tracer().enabled
        engine = ExperimentEngine(jobs=2, chunking=False)
        outcomes = engine.run_outcomes(small_jobs)
        assert all(o.ok for o in outcomes)
        assert get_tracer().drain() == ()

    def test_chaos_kill_yields_one_coherent_trace(self, small_jobs,
                                                  tmp_path, monkeypatch):
        """A killed worker's retry lands as a sibling attempt: the dead
        attempt ships no spans, the successful one parents normally, and
        the whole run stays a single trace."""
        monkeypatch.setenv(CHAOS_KILL_ENV, str(tmp_path / "kill.sentinel"))
        tracer = enable_tracing()
        engine = ExperimentEngine(jobs=2, retry_backoff_s=0.0,
                                  chunking=False)
        outcomes = engine.run_outcomes(small_jobs)
        spans = tracer.drain()
        disable_tracing()
        assert all(o.ok for o in outcomes)
        assert engine.stats().retries >= 1
        assert len({s.trace_id for s in spans}) == 1
        job_spans = [s for s in spans
                     if s.track == "engine" and s.name != "engine-batch"]
        assert len(job_spans) == len(small_jobs)
        # At least one job needed a second attempt...
        assert any(int(dict(s.labels)["attempts"]) >= 2
                   for s in job_spans)
        # ...and every job span has exactly one exec child: the killed
        # attempt contributed nothing, the surviving one everything.
        execs = [s for s in spans if s.track == "exec"]
        for job_span in job_spans:
            children = [s for s in execs
                        if s.parent_id == job_span.span_id]
            assert len(children) == 1

    def test_tracing_does_not_change_results(self, small_jobs):
        plain = ExperimentEngine().run_outcomes(small_jobs)
        enable_tracing()
        traced = ExperimentEngine().run_outcomes(small_jobs)
        disable_tracing()
        for a, b in zip(plain, traced):
            assert a.unwrap() == b.unwrap()


class TestTracerExport:
    def record(self):
        tracer = TraceRecorder(trace_id="t-1")
        with tracer.span("run", track="cli"):
            with tracer.span("job", track="engine", scheme="powersgd"):
                pass
        return tracer.drain()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tracer_spans_to_events([])

    def test_event_shape(self):
        spans = self.record()
        events = tracer_spans_to_events(spans)
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "engine" for e in metas)
        tracks = {e["args"]["name"] for e in metas
                  if e["name"] == "thread_name"}
        assert tracks == {"cli", "engine"}
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(spans)
        assert min(e["ts"] for e in xs) == 0.0  # rebased
        job = next(e for e in xs if e["name"] == "job")
        assert job["args"]["trace_id"] == "t-1"
        assert job["args"]["scheme"] == "powersgd"
        assert job["args"]["parent_id"] is not None

    def test_write_returns_byte_count(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_trace_spans(str(path), self.record())
        assert n == path.stat().st_size
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestManifestTrace:
    def kwargs(self):
        return dict(command="experiment fig3", config={"id": "fig3"},
                    wall_time_s=1.0,
                    metrics={"counters": {}, "gauges": {},
                             "histograms": {}},
                    results={})

    def test_absent_by_default(self):
        assert "trace" not in build_manifest(**self.kwargs())

    def test_recorded_when_given(self):
        info = {"mode": "reconstructed-batch", "spans_total": 7,
                "export_bytes_total": 123, "path": "run.json"}
        manifest = build_manifest(trace=info, **self.kwargs())
        assert manifest["trace"] == info


class TestCLITracing:
    def test_experiment_trace_run_writes_perfetto_file(self, tmp_path,
                                                       capsys):
        from repro.cli import main
        trace_path = tmp_path / "run.json"
        cache_dir = tmp_path / "cache"
        assert main(["experiment", "fig3", "--jobs", "2",
                     "--cache", str(cache_dir),
                     "--trace-run", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote run trace" in out
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        procs = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        assert "engine" in procs.values()
        assert any(n.startswith("worker-") for n in procs.values())
        xs = [e for e in events if e.get("ph") == "X"]
        names = {e["name"] for e in xs}
        assert "experiment fig3" in names
        assert "exhibit fig3" in names
        assert "queue-wait" in names
        # Manifest records the trace section and counters.
        manifest = json.loads(
            (cache_dir / "manifest.json").read_text())
        assert manifest["trace"]["mode"] == "reconstructed-batch"
        assert manifest["trace"]["spans_total"] == len(xs)
        counters = manifest["metrics"]["counters"]
        assert counters[
            'trace_spans_total{mode="reconstructed-batch"}'] == len(xs)
        assert counters["trace_export_bytes_total"] == \
            manifest["trace"]["export_bytes_total"]
        # The Prometheus snapshot landed beside the manifest, valid.
        prom = (cache_dir / "metrics.prom").read_text()
        assert validate_prometheus_text(prom) == []
        assert "trace_spans_total" in prom

    def test_metrics_subcommand_text_and_prom(self, tmp_path, capsys):
        from repro.cli import main
        cache_dir = tmp_path / "cache"
        assert main(["experiment", "fig3", "--cache",
                     str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["metrics", "--cache", str(cache_dir)]) == 0
        text = capsys.readouterr().out
        assert "engine_jobs_total" in text
        assert main(["metrics", "--cache", str(cache_dir),
                     "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert validate_prometheus_text(prom) == []
        assert "# TYPE engine_jobs_total counter" in prom

    def test_metrics_subcommand_requires_a_source(self, capsys):
        from repro.cli import main
        assert main(["metrics"]) == 2

    def test_metrics_subcommand_rejects_missing_manifest(self, tmp_path):
        from repro.cli import main
        assert main(["metrics", "--manifest",
                     str(tmp_path / "nope.json")]) == 2
