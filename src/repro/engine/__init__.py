"""Parallel sweep execution with content-addressed result caching.

The substrate under ``python -m repro experiment all --jobs N --cache
DIR`` and the experiment modules' grids: build :class:`SimJob` values,
hand them to an :class:`ExperimentEngine`, get outcomes back in order.
Closed-form what-if evaluations ride the same engine as
:class:`ModelEvalJob` batches — cached per point, evaluated per family
through the grid kernel — and the auto-advisor's bounded pricing
shards as :class:`AdvisorShardJob` batches.
"""

from .advisorjobs import (
    AdvisorShardJob,
    AdvisorShardOutcome,
    AdvisorShardResult,
    evaluate_advisor_family,
)
from .cache import CacheStats, SimulationCache
from .engine import EngineStats, ExperimentEngine, JobOutcome, SimJob
from .memcache import MemoryCache
from .pack import PackLocation, PackStore
from .fingerprint import (
    FINGERPRINT_VERSION,
    cluster_fingerprint,
    config_fingerprint,
    digest,
    fabric_fingerprint,
    model_fingerprint,
    profile_fingerprint,
    scheme_fingerprint,
)
from .modeljobs import ModelEvalJob, ModelEvalOutcome, evaluate_family

__all__ = [
    "CacheStats", "SimulationCache",
    "MemoryCache", "PackLocation", "PackStore",
    "EngineStats", "ExperimentEngine", "JobOutcome", "SimJob",
    "ModelEvalJob", "ModelEvalOutcome", "evaluate_family",
    "AdvisorShardJob", "AdvisorShardOutcome", "AdvisorShardResult",
    "evaluate_advisor_family",
    "FINGERPRINT_VERSION", "digest",
    "model_fingerprint", "scheme_fingerprint", "cluster_fingerprint",
    "fabric_fingerprint", "config_fingerprint", "profile_fingerprint",
]
