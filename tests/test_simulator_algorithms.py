"""Simulator algorithm variants: parameter server, fp16 hook, results."""

import numpy as np
import pytest

from repro.compression import FP16Scheme, PowerSGDScheme, SyncSGDScheme
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import COMM_STREAM, DDPConfig, DDPSimulator


def quiet(**kw):
    return DDPConfig(compute_jitter=0.0, comm_jitter=0.0, **kw)


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


class TestParameterServerAlgorithm:
    def test_ps_much_slower_at_scale(self, rn50):
        cluster = cluster_for_gpus(64)
        ring = DDPSimulator(rn50, cluster, config=quiet()).run(
            64, iterations=8, warmup=2).mean
        ps = DDPSimulator(
            rn50, cluster,
            config=quiet(allreduce_algorithm="parameter_server")).run(
            64, iterations=8, warmup=2).mean
        assert ps > 5 * ring

    def test_ps_includes_incast(self, rn50):
        from repro.network import Fabric
        cluster = cluster_for_gpus(32)
        no_incast = Fabric(cluster, incast_per_sender=0.0)
        with_incast = Fabric(cluster, incast_per_sender=0.02)
        cfg = quiet(allreduce_algorithm="parameter_server")
        fast = DDPSimulator(rn50, cluster, fabric=no_incast,
                            config=cfg).run(64, iterations=6,
                                            warmup=1).mean
        slow = DDPSimulator(rn50, cluster, fabric=with_incast,
                            config=cfg).run(64, iterations=6,
                                            warmup=1).mean
        assert slow > fast


class TestFP16HookPath:
    def test_fp16_runs_through_baseline_structure(self, rn50):
        """fp16 keeps the bucketed-overlap event structure."""
        sim = DDPSimulator(rn50, cluster_for_gpus(16),
                           scheme=FP16Scheme(), config=quiet())
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        comm = trace.stream_spans(COMM_STREAM)
        assert len(comm) == len(rn50.bucket_sizes_bytes())
        # the cast cost appears as a compute span
        labels = {s.label for s in trace.spans}
        assert "bucket-cast" in labels

    def test_fp16_halves_comm_time(self, rn50):
        cluster = cluster_for_gpus(64)
        dense = DDPSimulator(rn50, cluster, config=quiet())
        half = DDPSimulator(rn50, cluster, scheme=FP16Scheme(),
                            config=quiet())
        rng = np.random.default_rng(0)
        t_dense = dense.simulate_iteration(64, rng).stream_busy_time(
            COMM_STREAM)
        t_half = half.simulate_iteration(
            64, np.random.default_rng(0)).stream_busy_time(COMM_STREAM)
        assert t_half == pytest.approx(t_dense / 2, rel=0.1)

    def test_fp16_beats_dense_when_comm_bound(self):
        bert = get_model("bert-base")
        cluster = cluster_for_gpus(64)
        dense = DDPSimulator(bert, cluster, config=quiet()).run(
            12, iterations=8, warmup=2).mean
        half = DDPSimulator(bert, cluster, scheme=FP16Scheme(),
                            config=quiet()).run(12, iterations=8,
                                                warmup=2).mean
        assert half < dense


class TestTimingResult:
    def test_statistics(self, rn50):
        result = DDPSimulator(rn50, cluster_for_gpus(8)).run(
            64, iterations=30, warmup=5, seed=7)
        assert len(result.sync_times) == 25
        assert result.mean == pytest.approx(np.mean(result.sync_times))
        assert result.std == pytest.approx(np.std(result.sync_times))
        assert result.mean_iteration > result.mean

    def test_metadata(self, rn50):
        result = DDPSimulator(rn50, cluster_for_gpus(8),
                              scheme=PowerSGDScheme(4)).run(
            32, iterations=6, warmup=1)
        assert result.model == "resnet50"
        assert result.scheme == "powersgd(rank=4)"
        assert result.world_size == 8
        assert result.batch_size == 32

    def test_seed_reproducibility(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8))
        a = sim.run(64, iterations=10, warmup=2, seed=3)
        b = sim.run(64, iterations=10, warmup=2, seed=3)
        assert a.sync_times == b.sync_times

    def test_hook_overhead_configurable(self, rn50):
        cluster = cluster_for_gpus(16)
        cheap = DDPSimulator(
            rn50, cluster, scheme=PowerSGDScheme(4),
            config=quiet(hook_overhead_per_layer_s=0.0)).run(
            64, iterations=6, warmup=1).mean
        costly = DDPSimulator(
            rn50, cluster, scheme=PowerSGDScheme(4),
            config=quiet(hook_overhead_per_layer_s=2e-4)).run(
            64, iterations=6, warmup=1).mean
        assert costly > cheap
        with pytest.raises(ConfigurationError):
            DDPConfig(hook_overhead_per_layer_s=-1.0)
