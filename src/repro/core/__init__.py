"""The paper's primary contribution: performance model + what-if engine."""

from .accuracy import (
    TimeToAccuracy,
    measure_statistical_efficiency,
    steps_to_loss,
    time_to_accuracy,
)
from .advisor import (
    CandidateVerdict,
    Recommendation,
    default_candidates,
    feasible_candidates,
    recommend,
    recommend_for_inputs,
    recommend_with,
)
from .calibration import CalibrationReport, calibrate
from .grid import (
    TimingGrid,
    backward_time_grid,
    compressed_time_grid,
    syncsgd_time_grid,
    tradeoff_time_grid,
)
from .ideal import (
    HeadroomPoint,
    RequiredCompression,
    communicable_bytes,
    headroom_curve,
    required_compression,
    required_compression_curve,
)
from .perf_model import (
    PerfModelInputs,
    PredictedTime,
    bucket_pipeline_end,
    compressed_time,
    predict,
    speedup_over_syncsgd,
    syncsgd_time,
)
from .planning import (
    CostEstimate,
    EpochEstimate,
    StrongScalingPoint,
    batch_size_plan,
    epoch_time,
    strong_scaling_sweep,
    training_cost,
)
from .validation import ValidationCurve, ValidationPoint, validate_scheme
from .whatif import (
    Crossing,
    TradeoffPoint,
    WhatIfPoint,
    bandwidth_sweep,
    compute_sweep,
    encode_tradeoff_grid,
    find_crossover_gbps,
    solve_crossover,
    sweep_crossings,
    tradeoff_time,
)

__all__ = [
    "PerfModelInputs", "PredictedTime", "syncsgd_time", "compressed_time",
    "predict", "speedup_over_syncsgd", "bucket_pipeline_end",
    "CalibrationReport", "calibrate",
    "ValidationPoint", "ValidationCurve", "validate_scheme",
    "RequiredCompression", "communicable_bytes", "required_compression",
    "required_compression_curve",
    "HeadroomPoint", "headroom_curve",
    "TimingGrid", "backward_time_grid", "syncsgd_time_grid",
    "compressed_time_grid", "tradeoff_time_grid",
    "WhatIfPoint", "bandwidth_sweep", "compute_sweep", "TradeoffPoint",
    "encode_tradeoff_grid", "tradeoff_time",
    "Crossing", "sweep_crossings", "find_crossover_gbps", "solve_crossover",
    "Recommendation", "CandidateVerdict", "recommend",
    "recommend_for_inputs", "recommend_with", "default_candidates",
    "feasible_candidates",
    "EpochEstimate", "epoch_time", "batch_size_plan",
    "CostEstimate", "training_cost",
    "StrongScalingPoint", "strong_scaling_sweep",
    "TimeToAccuracy", "time_to_accuracy",
    "measure_statistical_efficiency", "steps_to_loss",
]
