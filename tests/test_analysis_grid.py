"""Analysis subsystem against the grid kernel.

The sensitivity elasticities are central differences of the scalar
closed-form model; the grid kernel is bit-identical to that model, so
elasticities recomputed from one grid call must equal
:func:`repro.analysis.model_sensitivities` exactly — not approximately.
The bottleneck analysis simulates counterfactuals; its qualitative
verdicts must agree with the closed-form breakdown the grid reports.
"""

import numpy as np
import pytest

from repro.analysis import blocked_time_analysis, model_sensitivities
from repro.analysis.sensitivity import DEFAULT_EPSILON, Sensitivities
from repro.compression import (
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.core import PerfModelInputs, compressed_time_grid
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

SCHEMES = [SyncSGDScheme(), PowerSGDScheme(rank=4), TopKScheme(0.01),
           SignSGDScheme()]


def inputs_at(gbps=10.0, p=64, bs=32, **kw):
    return PerfModelInputs(world_size=p,
                           bandwidth_bytes_per_s=gbps_to_bytes_per_s(gbps),
                           batch_size=bs, **kw)


def grid_bandwidth_elasticity(model, scheme, inputs,
                              epsilon=DEFAULT_EPSILON):
    """The sensitivity module's bandwidth elasticity, recomputed from a
    single three-point grid call (base, -eps, +eps)."""
    bw = inputs.bandwidth_bytes_per_s
    axis = np.asarray([bw * (1 - epsilon), bw, bw * (1 + epsilon)])
    grid = compressed_time_grid(model, scheme, inputs,
                                bandwidth_bytes_per_s=axis)
    f_minus, base, f_plus = (float(t) for t in grid.total)
    return (f_plus - f_minus) / (2.0 * epsilon * base)


class TestSensitivityGridEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.label)
    @pytest.mark.parametrize("model_name", ["resnet50", "bert-base"])
    def test_bandwidth_elasticity_exact(self, model_name, scheme):
        model = get_model(model_name)
        inputs = inputs_at()
        sens = model_sensitivities(model, scheme, inputs)
        assert sens.bandwidth == grid_bandwidth_elasticity(
            model, scheme, inputs)

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_inputs_exact(self, seed):
        rng = np.random.default_rng(seed + 100)
        model = get_model(
            str(rng.choice(["resnet50", "resnet101", "bert-base"])))
        scheme = SCHEMES[int(rng.integers(len(SCHEMES)))]
        inputs = PerfModelInputs(
            world_size=int(rng.choice([2, 8, 16, 64])),
            bandwidth_bytes_per_s=float(rng.uniform(2e8, 4e9)),
            alpha_s=float(rng.uniform(0.0, 1e-4)),
            gamma=float(rng.uniform(1.0, 1.3)),
            batch_size=int(rng.integers(1, 65)))
        epsilon = float(rng.uniform(0.005, 0.1))
        sens = model_sensitivities(model, scheme, inputs, epsilon=epsilon)
        assert sens.bandwidth == grid_bandwidth_elasticity(
            model, scheme, inputs, epsilon=epsilon)

    def test_syncsgd_compute_elasticity_from_factor_axis(self):
        """For syncSGD (no kernel profile in play) the compute-factor
        grid axis reproduces the scalar gpu.scaled perturbation, so the
        compute elasticity is exactly recomputable from one grid call."""
        model = get_model("resnet50")
        inputs = inputs_at()
        eps = DEFAULT_EPSILON
        grid = compressed_time_grid(
            model, SyncSGDScheme(), inputs,
            compute_factor=np.asarray([1 - eps, 1.0, 1 + eps]))
        f_minus, base, f_plus = (float(t) for t in grid.total)
        elasticity = -(f_plus - f_minus) / (2.0 * eps * base)
        sens = model_sensitivities(model, SyncSGDScheme(), inputs)
        assert sens.compute == elasticity

    def test_sensitivities_helpers(self):
        sens = Sensitivities(bandwidth=-0.4, alpha=-0.01, gamma=0.1,
                             compute=0.8, encode=0.05)
        assert sens.most_sensitive() == "compute"
        assert set(sens.as_dict()) == {"bandwidth", "alpha", "gamma",
                                       "compute", "encode"}
        assert "compute" in sens.render()

    def test_zero_alpha_has_zero_alpha_sensitivity(self):
        sens = model_sensitivities(get_model("resnet50"), SyncSGDScheme(),
                                   inputs_at(alpha_s=0.0))
        assert sens.alpha == 0.0


class TestBottleneckAgainstGrid:
    def agreement(self, model_name, gpus, scheme, bs):
        """Simulated counterfactual verdict + closed-form breakdown."""
        model = get_model(model_name)
        report = blocked_time_analysis(model, cluster_for_gpus(gpus),
                                       scheme=scheme, batch_size=bs)
        grid = compressed_time_grid(
            model, scheme if scheme is not None else SyncSGDScheme(),
            inputs_at(p=gpus, bs=bs))
        cell = grid.at(())
        return report, cell

    def test_comm_bound_syncsgd_agrees(self):
        report, cell = self.agreement("bert-base", 64, None, 12)
        # Simulated counterfactual: removing the network helps a lot.
        assert report.speedup_if("network") > 0.10
        # The closed-form model agrees: communication is exposed and
        # encode plays no role in either view.
        assert cell.comm_exposed > 0.1 * cell.total
        assert cell.encode_decode == 0.0
        assert report.speedup_if("encode") == pytest.approx(0.0, abs=0.01)

    def test_encode_bound_powersgd_agrees(self):
        report, cell = self.agreement("bert-base", 64,
                                      PowerSGDScheme(rank=4), 12)
        assert report.speedup_if("encode") > report.speedup_if("network")
        assert cell.encode_decode > cell.comm_exposed

    def test_speedup_if_consistent_with_baseline(self):
        report, _ = self.agreement("resnet50", 32, PowerSGDScheme(rank=4),
                                   64)
        for what in ("network", "encode", "compute"):
            assert report.speedup_if(what) == pytest.approx(
                1.0 - {
                    "network": report.free_network_s,
                    "encode": report.free_encode_s,
                    "compute": report.fast_compute_s,
                }[what] / report.baseline_s)
