"""Blocked-time analysis and model sensitivity."""

import numpy as np
import pytest

from repro.analysis import (
    blocked_time_analysis,
    model_sensitivities,
    time_breakdown,
)
from repro.compression import PowerSGDScheme, SignSGDScheme, SyncSGDScheme
from repro.core import PerfModelInputs
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.units import gbps_to_bytes_per_s

QUIET = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)


def quiet_trace(model_name, gpus, scheme=None, bs=None):
    model = get_model(model_name)
    sim = DDPSimulator(model, cluster_for_gpus(gpus), scheme=scheme,
                       config=QUIET)
    return sim.simulate_iteration(bs or model.default_batch_size,
                                  np.random.default_rng(0))


class TestTimeBreakdown:
    def test_components_cover_compute_phases(self):
        bd = time_breakdown(quiet_trace("resnet50", 32))
        assert bd.forward > 0 and bd.backward > 0 and bd.optimizer > 0
        assert bd.encode_decode == 0.0  # syncSGD does not encode

    def test_hidden_plus_exposed_is_total_comm(self):
        trace = quiet_trace("bert-base", 64, bs=12)
        bd = time_breakdown(trace)
        from repro.simulator import COMM_STREAM
        assert bd.comm_hidden + bd.comm_exposed == pytest.approx(
            trace.stream_busy_time(COMM_STREAM))

    def test_compressed_run_shows_encode(self):
        bd = time_breakdown(
            quiet_trace("resnet50", 32, scheme=PowerSGDScheme(4)))
        assert bd.encode_decode > 0.04  # >= Table 2's 45 ms

    def test_render(self):
        text = time_breakdown(quiet_trace("resnet50", 8)).render()
        assert "backward" in text and "%" in text

    def test_empty_trace_rejected(self):
        from repro.simulator.trace import IterationTrace
        with pytest.raises(ConfigurationError):
            time_breakdown(IterationTrace())


class TestBlockedTime:
    def test_bert_syncsgd_network_matters(self):
        report = blocked_time_analysis(
            get_model("bert-base"), cluster_for_gpus(64))
        assert report.speedup_if("network") > 0.10
        assert report.speedup_if("encode") == pytest.approx(0.0, abs=0.01)

    def test_powersgd_encode_matters_network_does_not(self):
        report = blocked_time_analysis(
            get_model("bert-base"), cluster_for_gpus(64),
            scheme=PowerSGDScheme(4))
        assert report.speedup_if("encode") > report.speedup_if("network")

    def test_signsgd_network_bound_at_scale(self):
        report = blocked_time_analysis(
            get_model("resnet101"), cluster_for_gpus(96),
            scheme=SignSGDScheme())
        assert report.speedup_if("network") > 0.3

    def test_counterfactuals_never_slower(self):
        report = blocked_time_analysis(
            get_model("resnet50"), cluster_for_gpus(32))
        for what in ("network", "encode", "compute"):
            assert report.speedup_if(what) >= -0.01, what

    def test_unknown_counterfactual_rejected(self):
        report = blocked_time_analysis(
            get_model("resnet50"), cluster_for_gpus(8))
        with pytest.raises(ConfigurationError):
            report.speedup_if("luck")

    def test_render(self):
        report = blocked_time_analysis(
            get_model("resnet50"), cluster_for_gpus(8))
        assert "dominant bottleneck" in report.render()


class TestSensitivities:
    def inputs(self, bs):
        return PerfModelInputs(world_size=64,
                               bandwidth_bytes_per_s=gbps_to_bytes_per_s(10),
                               batch_size=bs)

    def test_comm_bound_syncsgd_sensitive_to_bandwidth(self):
        sens = model_sensitivities(get_model("bert-base"),
                                   SyncSGDScheme(), self.inputs(12))
        assert sens.bandwidth < -0.1  # more bandwidth -> less time

    def test_powersgd_sensitive_to_compute_not_bandwidth(self):
        sens = model_sensitivities(get_model("bert-base"),
                                   PowerSGDScheme(4), self.inputs(12))
        assert abs(sens.compute) > 5 * abs(sens.bandwidth)
        assert sens.most_sensitive() == "compute"

    def test_syncsgd_has_zero_encode_sensitivity(self):
        sens = model_sensitivities(get_model("resnet50"),
                                   SyncSGDScheme(), self.inputs(64))
        assert sens.encode == 0.0

    def test_elasticities_bounded(self):
        for scheme in (SyncSGDScheme(), PowerSGDScheme(4),
                       SignSGDScheme()):
            sens = model_sensitivities(get_model("resnet50"), scheme,
                                       self.inputs(64))
            for value in sens.as_dict().values():
                assert abs(value) < 1.5

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            model_sensitivities(get_model("resnet50"), SyncSGDScheme(),
                                self.inputs(64), epsilon=0.9)

    def test_render(self):
        sens = model_sensitivities(get_model("resnet50"),
                                   SyncSGDScheme(), self.inputs(64))
        assert "elasticities" in sens.render()
