#!/usr/bin/env python
"""Quickstart: is gradient compression worth it for your job?

Simulates ResNet-50 data-parallel training on a 32-GPU cluster of AWS
p3.8xlarge machines (the paper's testbed), compares syncSGD against
PowerSGD rank-4, shows a Figure-2-style iteration timeline, and checks
the analytic performance model against the simulated measurement.

Run:  python examples/quickstart.py
(``REPRO_EXAMPLES_SMOKE=1`` trims the measurement protocol for CI.)
"""

import os

import numpy as np

from repro.compression import PowerSGDScheme
from repro.core import calibrate, predict
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator


def main() -> None:
    model = get_model("resnet50")
    cluster = cluster_for_gpus(32)

    print(model.summary())
    print(f"\ncluster: {cluster.describe()}")

    # --- simulate both systems with the paper's measurement protocol
    # (trimmed under REPRO_EXAMPLES_SMOKE so CI stays fast).
    protocol = ({"iterations": 15, "warmup": 3}
                if os.environ.get("REPRO_EXAMPLES_SMOKE") == "1" else {})
    baseline = DDPSimulator(model, cluster).run(batch_size=64, **protocol)
    powersgd = DDPSimulator(
        model, cluster, scheme=PowerSGDScheme(rank=4)).run(
        batch_size=64, **protocol)

    print(f"\nper-iteration gradient computation + synchronization:")
    print(f"  syncSGD          {baseline.mean * 1e3:7.1f} ms "
          f"(± {baseline.std * 1e3:.1f})")
    print(f"  PowerSGD rank-4  {powersgd.mean * 1e3:7.1f} ms "
          f"(± {powersgd.std * 1e3:.1f})")
    speedup = (baseline.mean - powersgd.mean) / baseline.mean
    verdict = "helps" if speedup > 0.02 else (
        "hurts" if speedup < -0.02 else "is a wash")
    print(f"  -> compression {verdict} here ({speedup:+.1%})")

    # --- a Figure-2-style look at one iteration: bucketed all-reduce
    # overlapping the backward pass.
    quiet = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)
    trace = DDPSimulator(model, cluster, config=quiet).simulate_iteration(
        64, np.random.default_rng(0))
    print("\none syncSGD iteration (compute vs communication streams):")
    print(trace.render_ascii())
    print(f"  comm hidden under backward: "
          f"{trace.compute_comm_overlap() * 1e3:.0f} ms")

    # --- the paper's §4.3 loop: calibrate, then predict without running.
    report = calibrate(model, cluster, batch_size=64)
    print(f"\ncalibration: {report.describe()}")
    predicted = predict(model, PowerSGDScheme(rank=4), report.inputs)
    print(f"model predicts PowerSGD at {predicted.total * 1e3:.1f} ms "
          f"(simulated: {powersgd.mean * 1e3:.1f} ms) — "
          f"breakdown: compute {predicted.compute * 1e3:.0f} ms, "
          f"encode/decode {predicted.encode_decode * 1e3:.0f} ms, "
          f"communication {predicted.comm_exposed * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
