"""Grid kernel bit-identity and the exact crossover solver.

The contract under test: every cell of a :class:`TimingGrid` is
bit-identical (``==`` on float64, not approx) to the scalar model called
with the same operands, across every axis and scheme family; and the
Brent-polished crossover solver agrees with the historical dense-sweep
interpolation to within one sweep grid step.
"""

import warnings

import numpy as np
import pytest

from repro.compression import (
    FP16Scheme,
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.compression.kernel_cost import v100_kernel_profile
from repro.core import (
    PerfModelInputs,
    TimingGrid,
    WhatIfPoint,
    bandwidth_sweep,
    compressed_time,
    compressed_time_grid,
    compute_sweep,
    encode_tradeoff_grid,
    find_crossover_gbps,
    solve_crossover,
    sweep_crossings,
    syncsgd_time,
    syncsgd_time_grid,
    tradeoff_time,
    tradeoff_time_grid,
)
from repro.errors import ConfigurationError
from repro.hardware import V100
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s

#: One scheme per cost-model family: dense baseline, fp16 DDP-overlap
#: bucket compression, low-rank all-reducible, sparse gather-based, and
#: sign compression (gather).
SCHEMES = [
    SyncSGDScheme(),
    FP16Scheme(),
    PowerSGDScheme(rank=4),
    TopKScheme(0.01),
    SignSGDScheme(),
]


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


def inputs_at(gbps=10.0, p=16, bs=32, **kw):
    return PerfModelInputs(world_size=p,
                           bandwidth_bytes_per_s=gbps_to_bytes_per_s(gbps),
                           batch_size=bs, **kw)


def assert_cell_equal(cell, scalar):
    """Exact (bitwise) equality of a grid cell and a scalar prediction."""
    assert cell.total == scalar.total
    assert cell.compute == scalar.compute
    assert cell.encode_decode == scalar.encode_decode
    assert cell.comm_exposed == scalar.comm_exposed


class TestTimingGridAPI:
    def test_at_returns_scalar_predicted_time(self, rn50):
        grid = syncsgd_time_grid(
            rn50, inputs_at(),
            bandwidth_bytes_per_s=np.asarray([1e9, 2e9]))
        assert grid.shape == (2,)
        assert grid.size == 2
        cell = grid.at(1)
        assert isinstance(cell.total, float) and cell.total > 0

    def test_zero_d_grid(self, rn50):
        grid = syncsgd_time_grid(rn50, inputs_at())
        assert grid.shape == ()
        assert_cell_equal(grid.at(()), syncsgd_time(rn50, inputs_at()))

    def test_component_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="shape"):
            TimingGrid(total=np.zeros(3), compute=np.zeros(2),
                       encode_decode=np.zeros(3), comm_exposed=np.zeros(3))


class TestAxisValidation:
    def test_nonpositive_bandwidth(self, rn50):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            syncsgd_time_grid(rn50, inputs_at(),
                              bandwidth_bytes_per_s=np.asarray([1e9, 0.0]))

    def test_world_size_below_one(self, rn50):
        with pytest.raises(ConfigurationError, match="world_size"):
            syncsgd_time_grid(rn50, inputs_at(),
                              world_size=np.asarray([0, 4]))

    def test_nonpositive_compute_factor(self, rn50):
        with pytest.raises(ConfigurationError, match="compute factors"):
            syncsgd_time_grid(rn50, inputs_at(),
                              compute_factor=np.asarray([-1.0]))

    def test_batch_size_below_one(self, rn50):
        with pytest.raises(ConfigurationError, match="batch_size"):
            syncsgd_time_grid(rn50, inputs_at(),
                              batch_size=np.asarray([0]))


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.label)
    def test_bandwidth_axis(self, rn50, scheme):
        base = inputs_at()
        bw = np.asarray([gbps_to_bytes_per_s(g)
                         for g in (1.0, 5.0, 10.0, 25.0)])
        grid = compressed_time_grid(rn50, scheme, base,
                                    bandwidth_bytes_per_s=bw)
        for i, b in enumerate(bw):
            swept = base.with_bandwidth(float(b))
            assert_cell_equal(grid.at(i),
                              compressed_time(rn50, scheme, swept))

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.label)
    def test_world_size_axis_including_single(self, rn50, scheme):
        base = inputs_at()
        sizes = np.asarray([1, 2, 8, 64])
        grid = compressed_time_grid(rn50, scheme, base, world_size=sizes)
        for i, p in enumerate(sizes):
            swept = PerfModelInputs(
                world_size=int(p),
                bandwidth_bytes_per_s=base.bandwidth_bytes_per_s,
                batch_size=base.batch_size)
            assert_cell_equal(grid.at(i),
                              compressed_time(rn50, scheme, swept))

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.label)
    def test_compute_factor_axis(self, rn50, scheme):
        base = inputs_at()
        factors = np.asarray([1.0, 1.5, 2.0, 4.0])
        grid = compressed_time_grid(rn50, scheme, base,
                                    compute_factor=factors)
        prof = v100_kernel_profile()
        for i, f in enumerate(factors):
            scalar = compressed_time(rn50, scheme, base,
                                     V100.scaled(float(f)),
                                     prof.scaled(float(f)))
            assert_cell_equal(grid.at(i), scalar)

    def test_batch_size_axis(self, rn50):
        base = inputs_at()
        batches = np.asarray([8, 16, 32, 64])
        grid = syncsgd_time_grid(rn50, base, batch_size=batches)
        for i, bs in enumerate(batches):
            swept = PerfModelInputs(
                world_size=base.world_size,
                bandwidth_bytes_per_s=base.bandwidth_bytes_per_s,
                batch_size=int(bs))
            assert_cell_equal(grid.at(i), syncsgd_time(rn50, swept))

    def test_outer_product_grid(self, rn50):
        """2-D bandwidth x compute-factor grid matches the nested
        scalar loop cell by cell."""
        base = inputs_at()
        bw = np.asarray([gbps_to_bytes_per_s(g) for g in (2.0, 10.0, 25.0)])
        factors = np.asarray([1.0, 2.0])
        scheme = PowerSGDScheme(rank=4)
        grid = compressed_time_grid(
            rn50, scheme, base,
            bandwidth_bytes_per_s=bw[:, None],
            compute_factor=factors[None, :])
        assert grid.shape == (3, 2)
        prof = v100_kernel_profile()
        for i, b in enumerate(bw):
            for j, f in enumerate(factors):
                scalar = compressed_time(
                    rn50, scheme, base.with_bandwidth(float(b)),
                    V100.scaled(float(f)), prof.scaled(float(f)))
                assert_cell_equal(grid.at((i, j)), scalar)

    def test_tradeoff_grid_matches_scalar(self, rn50):
        base = inputs_at(p=64, bs=64)
        scheme = PowerSGDScheme(rank=4)
        ks = np.asarray([1.0, 2.0, 4.0])
        ls = np.asarray([1.0, 3.0])
        grid = tradeoff_time_grid(rn50, scheme, ks[:, None], ls[None, :],
                                  base)
        for i, k in enumerate(ks):
            for j, l in enumerate(ls):
                assert grid.total[i, j] == tradeoff_time(
                    rn50, scheme, float(k), float(l), base)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_inputs(self, seed):
        """Grid == scalar on randomized PerfModelInputs across models
        and schemes (the acceptance-criteria fuzz check)."""
        rng = np.random.default_rng(seed)
        model = get_model(
            str(rng.choice(["resnet50", "resnet101", "bert-base"])))
        scheme = SCHEMES[int(rng.integers(len(SCHEMES)))]
        base = PerfModelInputs(
            world_size=int(rng.choice([1, 2, 4, 16, 64])),
            bandwidth_bytes_per_s=float(rng.uniform(1e8, 4e9)),
            alpha_s=float(rng.uniform(0.0, 1e-4)),
            gamma=float(rng.uniform(1.0, 1.3)),
            batch_size=int(rng.integers(1, 65)))
        bw = rng.uniform(1e8, 4e9, size=5)
        grid = compressed_time_grid(model, scheme, base,
                                    bandwidth_bytes_per_s=bw)
        for i, b in enumerate(bw):
            scalar = compressed_time(model, scheme,
                                     base.with_bandwidth(float(b)))
            assert_cell_equal(grid.at(i), scalar)

    def test_sweeps_grid_off_matches_default(self, rn50):
        """The use_grid=False scalar paths are what the grid paths are
        pinned against -- identical WhatIfPoint tuples."""
        base = inputs_at(p=64, bs=64)
        scheme = PowerSGDScheme(rank=4)
        gbps = (1.0, 5.0, 9.0, 13.0, 30.0)
        assert (bandwidth_sweep(rn50, scheme, gbps, base) ==
                bandwidth_sweep(rn50, scheme, gbps, base, use_grid=False))
        factors = (1.0, 2.0, 3.0, 4.0)
        assert (compute_sweep(rn50, scheme, factors, base) ==
                compute_sweep(rn50, scheme, factors, base, use_grid=False))
        ks, ls = (1.0, 2.0, 4.0), (1.0, 2.0, 3.0)
        assert (encode_tradeoff_grid(rn50, scheme, ks, ls, base) ==
                encode_tradeoff_grid(rn50, scheme, ks, ls, base,
                                     use_grid=False))


def synthetic_points(speedups):
    """WhatIfPoints with prescribed speedups at x = 1, 2, 3, ..."""
    return tuple(
        WhatIfPoint(x=float(i + 1), syncsgd_s=1.0, compressed_s=1.0 - s)
        for i, s in enumerate(speedups))


class TestCrossings:
    def test_single_down_crossing_interpolated(self):
        points = synthetic_points([0.2, 0.1, -0.1, -0.2])
        crossings = sweep_crossings(points)
        assert len(crossings) == 1
        assert crossings[0].direction == "down"
        assert crossings[0].x == pytest.approx(2.5)

    def test_multiple_crossings_all_reported(self):
        points = synthetic_points([0.1, -0.1, -0.05, 0.1, -0.1])
        crossings = sweep_crossings(points)
        assert [c.direction for c in crossings] == ["down", "up", "down"]
        assert crossings[0].x < crossings[1].x < crossings[2].x

    def test_no_crossing_empty(self):
        assert sweep_crossings(synthetic_points([0.3, 0.2, 0.1])) == ()

    def test_find_crossover_matches_single_crossing(self):
        points = synthetic_points([0.2, 0.1, -0.1, -0.2])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert find_crossover_gbps(points) == sweep_crossings(points)[0].x

    def test_find_crossover_warns_on_multiple(self):
        points = synthetic_points([0.1, -0.1, 0.1, -0.1])
        with pytest.warns(UserWarning, match="sign changes"):
            first = find_crossover_gbps(points)
        assert first == sweep_crossings(points)[0].x

    def test_find_crossover_none_when_always_helping(self):
        assert find_crossover_gbps(synthetic_points([0.3, 0.2])) is None


class TestSolveCrossover:
    FIG11_GRID = (1, 2, 3, 5, 7, 9, 11, 13, 15, 20, 25, 30)

    @pytest.mark.parametrize("model_name,bs", [
        ("resnet50", 64), ("resnet101", 64)])
    def test_agrees_with_dense_sweep_within_grid_step(self, model_name, bs):
        model = get_model(model_name)
        scheme = PowerSGDScheme(rank=4)
        base = inputs_at(p=64, bs=bs)
        points = bandwidth_sweep(model, scheme, self.FIG11_GRID, base)
        estimate = find_crossover_gbps(points)
        assert estimate is not None
        crossings = solve_crossover(model, scheme, base, 1.0, 30.0)
        downs = [c for c in crossings if c.direction == "down"]
        assert len(downs) == 1
        # One original grid step around the estimate (the coarse sweep's
        # resolution near the fig11 crossovers is 2 Gbit/s).
        step = max(b - a for a, b in zip(self.FIG11_GRID,
                                         self.FIG11_GRID[1:])
                   if a <= estimate <= b)
        assert abs(downs[0].x - estimate) <= step

    def test_bert_has_no_crossing_in_sweep_range(self):
        model = get_model("bert-base")
        base = inputs_at(p=64, bs=12)
        assert solve_crossover(model, PowerSGDScheme(rank=4), base,
                               1.0, 30.0) == ()

    def test_root_is_exact(self, rn50):
        """At the solved root the two models are equal to ~xtol, far
        tighter than any sweep interpolation."""
        scheme = PowerSGDScheme(rank=4)
        base = inputs_at(p=64, bs=64)
        (crossing,) = [c for c in solve_crossover(rn50, scheme, base,
                                                  1.0, 30.0)
                       if c.direction == "down"]
        swept = base.with_bandwidth(gbps_to_bytes_per_s(crossing.x))
        sync = syncsgd_time(rn50, swept).total
        comp = compressed_time(rn50, scheme, swept).total
        assert abs(sync - comp) / sync < 1e-6

    def test_validates_range(self, rn50):
        scheme = PowerSGDScheme(rank=4)
        with pytest.raises(ConfigurationError, match="lo_gbps < hi_gbps"):
            solve_crossover(rn50, scheme, inputs_at(), 10.0, 1.0)
        with pytest.raises(ConfigurationError, match="must be > 0"):
            solve_crossover(rn50, scheme, inputs_at(), 0.0, 10.0)
        with pytest.raises(ConfigurationError, match="samples"):
            solve_crossover(rn50, scheme, inputs_at(), 1.0, 10.0, samples=1)
