"""Unit conversion helpers.

All internal computation in :mod:`repro` uses SI base units:

* time in **seconds**
* data sizes in **bytes**
* bandwidth in **bytes / second**
* compute throughput in **FLOP / second**

Papers, cloud-provider spec sheets and networking gear use a mix of
milliseconds, mebibytes, gigabits-per-second and teraFLOPS, so every
boundary where such a quantity enters or leaves the library should go
through one of these helpers.  Keeping the conversions in one place makes
unit bugs grep-able.
"""

from __future__ import annotations

#: Bytes per kibibyte / mebibyte / gibibyte (binary prefixes, as used for
#: buffer and model sizes, e.g. PyTorch's 25 MiB gradient buckets).
KIB = 1024
MIB = 1024**2
GIB = 1024**3

#: Decimal prefixes (as used by network vendors: 10 Gbit/s = 10e9 bit/s).
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

#: Size in bytes of the dense gradient element type used throughout the
#: paper (fp32) and of common compressed representations.
FLOAT32_BYTES = 4
FLOAT16_BYTES = 2
INT64_BYTES = 8
INT32_BYTES = 4


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a link speed in gigabits/second to bytes/second.

    >>> gbps_to_bytes_per_s(10)
    1250000000.0
    """
    if gbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {gbps!r}")
    return gbps * GIGA / 8.0


def bytes_per_s_to_gbps(bytes_per_s: float) -> float:
    """Convert bytes/second back to gigabits/second."""
    if bytes_per_s < 0:
        raise ValueError(f"bandwidth must be non-negative, got {bytes_per_s!r}")
    return bytes_per_s * 8.0 / GIGA


def ms(seconds: float) -> float:
    """Express a duration in milliseconds (for reporting only)."""
    return seconds * 1e3


def seconds_from_ms(milliseconds: float) -> float:
    """Convert a duration given in milliseconds to seconds."""
    return milliseconds * 1e-3


def us(seconds: float) -> float:
    """Express a duration in microseconds (for reporting only)."""
    return seconds * 1e6


def seconds_from_us(microseconds: float) -> float:
    """Convert a duration given in microseconds to seconds."""
    return microseconds * 1e-6


def mib(num_bytes: float) -> float:
    """Express a size in MiB (for reporting only)."""
    return num_bytes / MIB


def bytes_from_mib(mebibytes: float) -> float:
    """Convert a size given in MiB to bytes."""
    return mebibytes * MIB


def mb(num_bytes: float) -> float:
    """Express a size in decimal megabytes, the unit the paper quotes
    model sizes in (ResNet-50 = 97 MB, BERT_BASE = 418 MB)."""
    return num_bytes / MEGA


def bytes_from_mb(megabytes: float) -> float:
    """Convert a size given in decimal megabytes to bytes."""
    return megabytes * MEGA


def tflops_to_flops(tflops: float) -> float:
    """Convert teraFLOPS (spec-sheet unit) to FLOP/s."""
    if tflops < 0:
        raise ValueError(f"throughput must be non-negative, got {tflops!r}")
    return tflops * TERA


def gflops_to_flops(gflops: float) -> float:
    """Convert gigaFLOPS to FLOP/s."""
    if gflops < 0:
        raise ValueError(f"throughput must be non-negative, got {gflops!r}")
    return gflops * GIGA
