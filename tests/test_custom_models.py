"""Custom model builders and fabric degradation."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import ClusterConfig
from repro.models import get_model, mlp_model, scaled_model, simple_cnn
from repro.network import Fabric


class TestMLPModel:
    def test_param_count(self):
        model = mlp_model("rec", input_dim=100, hidden_dims=(50,),
                          num_classes=10)
        # 100*50+50 + 50*10+10
        assert model.num_params == 5050 + 510

    def test_usable_by_compute_model(self):
        from repro.compute import ComputeModel
        from repro.hardware import V100
        model = mlp_model("rec", 512, (1024, 1024), 100)
        cm = ComputeModel(model, V100)
        assert cm.backward_time(256) > 0

    def test_buckets_work(self):
        model = mlp_model("big", 4096, (4096,) * 4, 1000)
        assert len(model.gradient_buckets()) >= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mlp_model("bad", 0, (10,), 2)
        with pytest.raises(ConfigurationError):
            mlp_model("bad", 10, (0,), 2)


class TestSimpleCNN:
    def test_structure(self):
        model = simple_cnn("cnn", input_hw=32, channels=(16, 32),
                           num_classes=10)
        assert model.layer_named("conv0").param_shape == (16, 3, 3, 3)
        assert model.layer_named("head").param_shape == (10, 32)

    def test_resolution_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_cnn("bad", input_hw=4, channels=(8, 8, 8, 8),
                       num_classes=2)

    def test_works_in_simulator(self):
        from repro.hardware import cluster_for_gpus
        from repro.simulator import DDPSimulator
        model = simple_cnn("cnn", 64, (32, 64, 128), 10)
        result = DDPSimulator(model, cluster_for_gpus(8)).run(
            64, iterations=6, warmup=1)
        assert result.mean > 0


class TestScaledModel:
    def test_params_scale_quadratically(self):
        base = mlp_model("base", 128, (128,), 10)
        wide = scaled_model(base, 2.0)
        # fan-in and fan-out both double -> ~4x weights.
        assert wide.num_params == pytest.approx(4 * base.num_params,
                                                rel=0.1)

    def test_flops_scale_quadratically(self):
        base = get_model("resnet50")
        wide = scaled_model(base, 2.0)
        assert wide.fwd_flops(1) == pytest.approx(4 * base.fwd_flops(1))

    def test_name_and_shape_consistency(self):
        wide = scaled_model(get_model("resnet50"), 1.5)
        assert wide.name == "resnet50-x1.5"
        for layer in wide.matrix_layers:
            m, n = layer.matrix_shape
            assert m * n == layer.num_params - layer.extra_params

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            scaled_model(get_model("resnet50"), 0.0)


class TestFabricDegradation:
    def test_degrade_link_lowers_minimum(self):
        fabric = Fabric(ClusterConfig(num_nodes=4), bandwidth_jitter=0.0)
        before = fabric.min_bandwidth()
        fabric.degrade_link(0, 2, 0.5)
        assert fabric.min_bandwidth() == pytest.approx(before * 0.5)
        assert fabric.pair_bandwidth(2, 0) == pytest.approx(before * 0.5)

    def test_degrade_node_hits_all_links(self):
        fabric = Fabric(ClusterConfig(num_nodes=4), bandwidth_jitter=0.0)
        nominal = fabric.nominal_bandwidth()
        fabric.degrade_node(1, 0.25)
        for other in (0, 2, 3):
            assert fabric.pair_bandwidth(1, other) == pytest.approx(
                nominal * 0.25)
        assert fabric.pair_bandwidth(0, 2) == pytest.approx(nominal)

    def test_straggler_slows_simulated_training(self):
        from repro.hardware import cluster_for_gpus
        from repro.models import get_model
        from repro.simulator import DDPConfig, DDPSimulator
        cluster = cluster_for_gpus(32)
        quiet = DDPConfig(compute_jitter=0.0, comm_jitter=0.0)
        healthy = DDPSimulator(get_model("bert-base"), cluster,
                               config=quiet).run(12, iterations=6,
                                                 warmup=1).mean
        bad_fabric = Fabric(cluster)
        bad_fabric.degrade_node(3, 0.3)
        degraded = DDPSimulator(get_model("bert-base"), cluster,
                                fabric=bad_fabric, config=quiet).run(
            12, iterations=6, warmup=1).mean
        assert degraded > 1.5 * healthy

    def test_validation(self):
        fabric = Fabric(ClusterConfig(num_nodes=3))
        with pytest.raises(ConfigurationError):
            fabric.degrade_link(0, 0, 0.5)
        with pytest.raises(ConfigurationError):
            fabric.degrade_link(0, 1, 0.0)
        with pytest.raises(ConfigurationError):
            fabric.degrade_node(9, 0.5)
