"""Optimizers for the numeric training substrate.

The plain ``param -= lr * update`` step lives on :class:`~repro.training.MLP`
for the simplest flows; these optimizer classes add the state real
distributed training uses — momentum (what the ResNet recipes run), Adam
(what BERT fine-tuning runs) — plus learning-rate schedules.  Momentum in
particular interacts with compression: DGC's momentum correction and the
signSGD literature's learning-rate sensitivity only show up when the
optimizer carries state.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from .nn import Grads, Params


class LRSchedule(abc.ABC):
    """Learning-rate schedule: step index -> learning rate."""

    @abc.abstractmethod
    def lr_at(self, step: int) -> float:
        """Learning rate to use at ``step`` (0-indexed)."""

    def _check_step(self, step: int) -> None:
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")


class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {lr}")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        self._check_step(step)
        return self.lr


class StepDecayLR(LRSchedule):
    """Multiply the rate by ``factor`` every ``every`` steps (the
    classic ImageNet staircase)."""

    def __init__(self, lr: float, every: int, factor: float = 0.1):
        if lr <= 0 or every < 1 or not 0 < factor <= 1:
            raise ConfigurationError(
                f"invalid schedule (lr={lr}, every={every}, factor={factor})")
        self.lr = lr
        self.every = every
        self.factor = factor

    def lr_at(self, step: int) -> float:
        self._check_step(step)
        return self.lr * self.factor ** (step // self.every)


class WarmupCosineLR(LRSchedule):
    """Linear warm-up then cosine decay to zero (the BERT recipe)."""

    def __init__(self, lr: float, warmup_steps: int, total_steps: int):
        if lr <= 0 or warmup_steps < 0 or total_steps <= warmup_steps:
            raise ConfigurationError(
                f"invalid schedule (lr={lr}, warmup={warmup_steps}, "
                f"total={total_steps})")
        self.lr = lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        self._check_step(step)
        if self.warmup_steps and step < self.warmup_steps:
            return self.lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / (
            self.total_steps - self.warmup_steps)
        progress = min(progress, 1.0)
        return self.lr * 0.5 * (1.0 + math.cos(math.pi * progress))


class Optimizer(abc.ABC):
    """Stateful optimizer over a named-parameter dictionary."""

    def __init__(self, schedule: LRSchedule):
        self.schedule = schedule
        self._step = 0

    @property
    def steps_taken(self) -> int:
        return self._step

    def step(self, params: Params, updates: Grads) -> None:
        """Apply one update in place and advance the schedule."""
        lr = self.schedule.lr_at(self._step)
        for name, update in updates.items():
            if name not in params:
                raise ConfigurationError(f"unknown parameter {name!r}")
            if update.shape != params[name].shape:
                raise ConfigurationError(
                    f"update for {name!r} has shape {update.shape}, "
                    f"expected {params[name].shape}")
            self._apply(name, params, np.asarray(update, dtype=np.float64),
                        lr)
        self._step += 1

    @abc.abstractmethod
    def _apply(self, name: str, params: Params, update: np.ndarray,
               lr: float) -> None:
        """Apply the update for one parameter."""


class SGD(Optimizer):
    """SGD with (optional) heavy-ball momentum and weight decay."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 schedule: Optional[LRSchedule] = None):
        super().__init__(schedule if schedule is not None
                         else ConstantLR(lr))
        if not 0 <= momentum < 1:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(
                f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def _apply(self, name, params, update, lr):
        if self.weight_decay:
            update = update + self.weight_decay * params[name]
        if self.momentum:
            vel = self._velocity.get(name)
            if vel is None:
                vel = np.zeros_like(update)
            vel = self.momentum * vel + update
            self._velocity[name] = vel
            update = vel
        params[name] -= lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 schedule: Optional[LRSchedule] = None):
        super().__init__(schedule if schedule is not None
                         else ConstantLR(lr))
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ConfigurationError(
                f"betas must be in [0, 1), got ({beta1}, {beta2})")
        if eps <= 0:
            raise ConfigurationError(f"eps must be > 0, got {eps}")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def _apply(self, name, params, update, lr):
        m = self._m.get(name)
        v = self._v.get(name)
        if m is None:
            m = np.zeros_like(update)
            v = np.zeros_like(update)
        m = self.beta1 * m + (1 - self.beta1) * update
        v = self.beta2 * v + (1 - self.beta2) * update * update
        self._m[name], self._v[name] = m, v
        t = self._step + 1
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        params[name] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
