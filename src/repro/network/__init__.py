"""Network substrate: α+β fabric, heterogeneity, incast, iperf probes."""

from .fabric import (
    DEFAULT_ALPHA_S,
    DEFAULT_BANDWIDTH_JITTER,
    DEFAULT_INCAST_PER_SENDER,
    Fabric,
)
from .iperf import (
    DEFAULT_PROBE_BYTES,
    BandwidthReport,
    estimate_alpha,
    measure_cluster,
    measure_pair,
)

__all__ = [
    "Fabric", "DEFAULT_ALPHA_S", "DEFAULT_BANDWIDTH_JITTER",
    "DEFAULT_INCAST_PER_SENDER",
    "BandwidthReport", "measure_cluster", "measure_pair", "estimate_alpha",
    "DEFAULT_PROBE_BYTES",
]
