"""Command-line interface."""

import json

import pytest

from repro import __version__
from repro.cli import _parse_scheme, build_parser, main
from repro.telemetry import logs as telemetry_logs
from repro.telemetry import metrics as telemetry_metrics


@pytest.fixture(autouse=True)
def _isolate_telemetry():
    """main() configures the process-global registry and log sink;
    restore both so CLI tests cannot leak state into other modules."""
    previous = telemetry_metrics.get_registry()
    yield
    telemetry_metrics.set_registry(previous)
    telemetry_logs.configure()


class TestSchemeParsing:
    def test_bare_name(self):
        assert _parse_scheme("signsgd").name == "signsgd"

    def test_int_param(self):
        scheme = _parse_scheme("powersgd:rank=8")
        assert scheme.rank == 8

    def test_float_param(self):
        scheme = _parse_scheme("topk:fraction=0.05")
        assert scheme.fraction == pytest.approx(0.05)

    def test_multiple_params(self):
        scheme = _parse_scheme("gradiveq:block=128,dims=16")
        assert scheme.block == 128 and scheme.dims == 16

    def test_bad_param_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            _parse_scheme("powersgd:rank")


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("experiment", "recommend", "whatif", "simulate"):
            args = parser.parse_args(
                [cmd] + (["table1"] if cmd == "experiment" else []))
            assert args.command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "powersgd" in out and "all_reduce" in out

    def test_experiment_markdown(self, capsys):
        assert main(["experiment", "table2", "--markdown"]) == 0
        assert "| method |" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert main(["recommend", "--model", "resnet50", "--gpus", "16",
                     "--batch", "64"]) == 0
        assert "recommendation" in capsys.readouterr().out

    def test_recommend_custom_bandwidth(self, capsys):
        assert main(["recommend", "--model", "resnet50", "--gpus", "16",
                     "--batch", "64", "--bandwidth", "1"]) == 0
        out = capsys.readouterr().out
        # at 1 Gbit/s compression wins
        assert "powersgd" in out

    def test_whatif(self, capsys):
        assert main(["whatif", "--model", "resnet50", "--gpus", "32",
                     "--batch", "64", "--scheme", "powersgd:rank=4"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth sweep" in out and "compute sweep" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--iterations", "15"]) == 0
        out = capsys.readouterr().out
        assert "sync time" in out and "compute" in out

    def test_simulate_with_scheme(self, capsys):
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--scheme", "signsgd",
                     "--iterations", "15"]) == 0
        assert "signsgd" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        assert main(["whatif", "--model", "resnet50",
                     "--scheme", "nosuch"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_simulate_with_faults(self, capsys, tmp_path):
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({
            "seed": 7,
            "stragglers": [{"worker": 0, "slowdown": 2.0,
                            "start_iteration": 4,
                            "duration_iterations": 4}],
        }))
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--iterations", "12",
                     "--faults", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "faults: 1 stragglers (seed 7)" in out

    def test_simulate_bad_faults_spec(self, capsys, tmp_path):
        spec = tmp_path / "faults.json"
        spec.write_text('{"gremlins": []}')
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--faults", str(spec)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_reliability_listed(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "reliability"])
        assert args.id == "reliability"


class TestTelemetryFlags:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_error_logged_as_json(self, capsys):
        assert main(["--log-json", "whatif", "--model", "resnet50",
                     "--scheme", "nosuch"]) == 2
        record = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert record["level"] == "error"
        assert record["error_type"] == "ConfigurationError"
        assert record["command"] == "whatif"
        assert "nosuch" in record["event"]

    def test_main_enables_registry_by_default(self, capsys):
        main(["recommend", "--model", "resnet50", "--gpus", "16",
              "--batch", "64"])
        assert telemetry_metrics.get_registry().enabled

    def test_no_telemetry_keeps_null_backend(self, capsys):
        main(["--no-telemetry", "simulate", "--model", "resnet50",
              "--gpus", "8", "--batch", "64", "--iterations", "12"])
        assert not telemetry_metrics.get_registry().enabled

    def test_simulate_metrics_report(self, capsys):
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--iterations", "12",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "sim_iterations_total" in out


class TestSimulateTraceExport:
    def test_trace_file_written(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--batch", "64", "--iterations", "12",
                     "--trace", str(path),
                     "--trace-iterations", "2",
                     "--trace-workers", "2"]) == 0
        assert "wrote Perfetto trace" in capsys.readouterr().out
        events = json.loads(path.read_text())["traceEvents"]
        # Acceptance shape: >= 2 named streams and a counter track.
        stream_names = {e["args"]["name"] for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"compute", "comm"} <= stream_names
        assert [e for e in events if e["ph"] == "C"]
        # Two workers -> two processes with their own span sets.
        assert {e["pid"] for e in events if e["ph"] == "X"} == {0, 1}


class TestExperimentManifest:
    def test_manifest_written_beside_cache(self, capsys, tmp_path):
        from repro.engine.fingerprint import digest
        from repro.telemetry import read_manifest, verify_manifest
        cache_dir = tmp_path / "cache"
        assert main(["experiment", "table1", "--cache",
                     str(cache_dir)]) == 0
        manifest = read_manifest(str(cache_dir / "manifest.json"))
        assert verify_manifest(manifest)
        assert manifest["fingerprint"] == digest(manifest["config"])
        assert manifest["command"] == "experiment table1"
        assert manifest["config"]["id"] == "table1"
        assert manifest["wall_time_s"] > 0
        assert manifest["results"]["exhibits"]["table1"]["rows"] > 0
        assert manifest["results"]["engine"]["jobs_completed"] >= 0
        # table1 is analytic (no simulations), so the snapshot may be
        # empty — but it must have the registry shape.
        assert set(manifest["metrics"]) \
            == {"counters", "gauges", "histograms"}

    def test_explicit_manifest_path(self, capsys, tmp_path):
        from repro.telemetry import read_manifest
        path = tmp_path / "custom.json"
        assert main(["experiment", "table1", "--manifest",
                     str(path)]) == 0
        assert read_manifest(str(path))["command"] == "experiment table1"

    def test_no_manifest_without_cache_or_flag(self, capsys, tmp_path):
        assert main(["experiment", "table1"]) == 0
        assert not list(tmp_path.iterdir())

    def test_status_line_format_unchanged(self, capsys, tmp_path):
        """The human-facing cache status line is stable API for eyes."""
        assert main(["experiment", "table1", "--cache",
                     str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "[table1]" in out and "cache:" in out and "hits" in out

    def test_manifest_records_cache_tiers(self, capsys, tmp_path):
        from repro.telemetry import read_manifest
        cache_dir = tmp_path / "cache"
        assert main(["experiment", "fig4", "--cache", str(cache_dir),
                     "--cache-mem-mb", "8"]) == 0
        manifest = read_manifest(str(cache_dir / "manifest.json"))
        cache_info = manifest["results"]["cache"]
        assert cache_info["pack"]["entries"] > 0
        assert cache_info["memory"]["max_bytes"] == 8 * 1024 * 1024
        assert manifest["config"]["cache_mem_mb"] == 8.0
        engine_stats = manifest["results"]["engine"]
        assert "cache_memory_hits" in engine_stats
        assert "cache_pack_hits" in engine_stats
        assert "cache_evictions" in engine_stats


class TestCacheSubcommand:
    def _seed_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["experiment", "fig4", "--cache",
                     str(cache_dir)]) == 0
        return cache_dir

    def test_stats(self, capsys, tmp_path):
        cache_dir = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "pack:" in out and "legacy:" in out
        assert "distinct keys" in out

    def test_verify_healthy(self, capsys, tmp_path):
        cache_dir = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache", str(cache_dir)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_verify_detects_truncation(self, capsys, tmp_path):
        cache_dir = self._seed_cache(tmp_path)
        segments = sorted(cache_dir.glob("pack-0*.jsonl"))
        raw = segments[0].read_bytes()
        segments[0].write_bytes(raw[:len(raw) // 2])
        capsys.readouterr()
        assert main(["cache", "verify", "--cache", str(cache_dir)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_compact_legacy_entries(self, capsys, tmp_path):
        from repro.core.perf_model import PredictedTime
        from repro.engine import SimulationCache
        cache_dir = tmp_path / "legacy"
        cache = SimulationCache(str(cache_dir))
        cache.put("a" * 64, PredictedTime(total=1.0, compute=0.5,
                                          encode_decode=0.1,
                                          comm_exposed=0.4))
        cache.close()
        assert main(["cache", "compact", "--cache",
                     str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 legacy entries" in out
        assert not (cache_dir / ("a" * 64 + ".json")).exists()

    def test_missing_directory_is_an_error(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache",
                     str(tmp_path / "nope")]) == 2
