"""Sharded in-process hot tier for the simulation result cache.

A warm disk hit still costs an ``open`` + ``json.load`` per key; for a
long-lived process (the serving scheduler owns one engine for its whole
lifetime) that disk round-trip is pure overhead the second time the
same key is asked for.  :class:`MemoryCache` keeps recently-touched
cache *payloads* — the exact JSON-shaped dicts the disk tiers store —
in memory behind a byte budget, so a hot hit is a dict lookup plus the
same payload→outcome rehydration a disk hit performs.  Because both
tiers rehydrate through the identical converters, a hot hit is
byte-for-byte the outcome a disk hit would have produced.

Layout is a fixed array of *shards*, each an LRU ``OrderedDict`` behind
its own lock, so concurrent serving threads rarely contend on the same
lock and a batched ``get_many``/``put_many`` acquires each shard's lock
at most once per call instead of once per key.  Eviction is per shard
(budget divided evenly): strict global LRU would need a global lock,
which is exactly what sharding exists to avoid.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Default shard count; a small power of two keeps the modulo cheap and
#: is plenty to spread the serving scheduler's handful of threads.
DEFAULT_SHARDS = 8


def payload_nbytes(payload: dict) -> int:
    """Byte-budget charge for one payload: its compact-JSON length.

    The same serialization the pack tier writes, so an entry costs the
    hot tier what it costs the cold tier — plus nothing for Python
    object overhead, which keeps the accounting deterministic across
    interpreter versions.
    """
    return len(json.dumps(payload, separators=(",", ":")))


class _Shard:
    """One LRU slice of the cache: an ``OrderedDict`` behind a lock."""

    __slots__ = ("lock", "entries", "bytes")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        #: key -> (payload, nbytes); insertion order is recency order.
        self.entries: "OrderedDict[str, Tuple[dict, int]]" = OrderedDict()
        self.bytes = 0


class MemoryCache:
    """Byte-budgeted, sharded, thread-safe LRU of cache payloads.

    Attributes:
        max_bytes: Total budget across all shards; each shard evicts
            its own least-recently-used entries past
            ``max_bytes / shards``.  Entries larger than a whole
            shard's budget are never admitted (they would evict
            everything for one key).
        shards: Shard count (fixed at construction).
    """

    def __init__(self, max_bytes: int, shards: int = DEFAULT_SHARDS):
        """Validate the budget and allocate the shard array."""
        if max_bytes <= 0:
            raise ConfigurationError(
                f"max_bytes must be positive, got {max_bytes}")
        if shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {shards}")
        self.max_bytes = int(max_bytes)
        self.shards = shards
        self._shard_budget = max(1, self.max_bytes // shards)
        self._shards = [_Shard() for _ in range(shards)]
        self._evictions = 0
        self._eviction_lock = threading.Lock()

    # ----- shard routing -----------------------------------------------------

    def _shard_for(self, key: str) -> _Shard:
        # Cache keys are uniform hex digests, so their builtin hash
        # spreads evenly; no need for anything fancier.
        return self._shards[hash(key) % self.shards]

    # ----- single-key operations ---------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, refreshed as most recent;
        ``None`` when absent (the caller falls through to disk)."""
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                return None
            shard.entries.move_to_end(key)
            return entry[0]

    def put(self, key: str, payload: dict,
            nbytes: Optional[int] = None) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries past budget.

        ``nbytes`` lets callers that already serialized the payload (the
        pack writer) skip re-encoding it for the size charge.
        """
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        shard = self._shard_for(key)
        with shard.lock:
            self._put_locked(shard, key, payload, nbytes)

    # ----- batched operations ------------------------------------------------

    def get_many(self, keys: Sequence[str]) -> Dict[str, dict]:
        """Look up many keys with one lock acquisition per shard.

        Returns only the present keys; order of the input is
        irrelevant (the caller re-aligns by key).
        """
        by_shard: Dict[int, List[str]] = {}
        for key in keys:
            by_shard.setdefault(hash(key) % self.shards, []).append(key)
        found: Dict[str, dict] = {}
        for shard_idx, shard_keys in by_shard.items():
            shard = self._shards[shard_idx]
            with shard.lock:
                for key in shard_keys:
                    entry = shard.entries.get(key)
                    if entry is not None:
                        shard.entries.move_to_end(key)
                        found[key] = entry[0]
        return found

    def put_many(self, items: Iterable[Tuple[str, dict, Optional[int]]],
                 ) -> None:
        """Insert many ``(key, payload, nbytes-or-None)`` entries with
        one lock acquisition per shard."""
        by_shard: Dict[int, List[Tuple[str, dict, int]]] = {}
        for key, payload, nbytes in items:
            if nbytes is None:
                nbytes = payload_nbytes(payload)
            by_shard.setdefault(hash(key) % self.shards, []).append(
                (key, payload, nbytes))
        for shard_idx, shard_items in by_shard.items():
            shard = self._shards[shard_idx]
            with shard.lock:
                for key, payload, nbytes in shard_items:
                    self._put_locked(shard, key, payload, nbytes)

    # ----- internals ---------------------------------------------------------

    def _put_locked(self, shard: _Shard, key: str, payload: dict,
                    nbytes: int) -> None:
        """Insert under ``shard.lock``; runs the shard's LRU eviction."""
        if nbytes > self._shard_budget:
            # One oversized entry would flush the whole shard for a
            # single key; skip it — the cold tiers still hold it.
            return
        old = shard.entries.pop(key, None)
        if old is not None:
            shard.bytes -= old[1]
        shard.entries[key] = (payload, nbytes)
        shard.bytes += nbytes
        evicted = 0
        while shard.bytes > self._shard_budget:
            _, (_, dropped) = shard.entries.popitem(last=False)
            shard.bytes -= dropped
            evicted += 1
        if evicted:
            with self._eviction_lock:
                self._evictions += evicted

    # ----- introspection -----------------------------------------------------

    @property
    def evictions(self) -> int:
        """Entries evicted over the cache's lifetime."""
        with self._eviction_lock:
            return self._evictions

    @property
    def current_bytes(self) -> int:
        """Bytes currently held across all shards."""
        return sum(shard.bytes for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def __contains__(self, key: str) -> bool:
        shard = self._shard_for(key)
        with shard.lock:
            return key in shard.entries

    def clear(self) -> None:
        """Drop every entry (budget and eviction counter persist)."""
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.bytes = 0

    def info(self) -> dict:
        """JSON-serializable snapshot (manifests, ``repro cache stats``)."""
        return {
            "max_bytes": self.max_bytes,
            "shards": self.shards,
            "entries": len(self),
            "bytes": self.current_bytes,
            "evictions": self.evictions,
        }
