"""Property-based tests for compression codecs (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression import (
    FP16Compressor,
    PowerSGDCompressor,
    RandomKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
    orthonormalize,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                   allow_infinity=False, width=64)
nonzero_vectors = arrays(
    np.float64, st.integers(min_value=1, max_value=256), elements=finite,
).filter(lambda a: np.abs(a).max() > 1e-9)


@given(nonzero_vectors)
@settings(max_examples=80, deadline=None)
def test_signsgd_decode_magnitudes_are_unit(g):
    codec = SignSGDCompressor()
    decoded = codec.decode(codec.encode(g))
    assert np.all(np.abs(decoded) == 1.0)
    assert decoded.shape == g.shape


@given(nonzero_vectors)
@settings(max_examples=80, deadline=None)
def test_signsgd_agrees_with_input_signs(g):
    codec = SignSGDCompressor()
    decoded = codec.decode(codec.encode(g))
    np.testing.assert_array_equal(decoded, np.where(g >= 0, 1.0, -1.0))


@given(nonzero_vectors, st.floats(min_value=0.01, max_value=1.0,
                                  allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_topk_kept_values_are_exact_and_maximal(g, fraction):
    codec = TopKCompressor(fraction=fraction)
    decoded = codec.decode(codec.encode(g))
    kept = decoded != 0
    # Kept values are copied exactly.
    np.testing.assert_array_equal(decoded[kept], g[kept])
    # No dropped value exceeds the smallest kept magnitude.
    if kept.any() and (~kept).any():
        assert np.abs(g[~kept]).max() <= np.abs(g[kept]).min() + 1e-12


@given(nonzero_vectors)
@settings(max_examples=60, deadline=None)
def test_topk_wire_bytes_never_exceed_dense(g):
    codec = TopKCompressor(fraction=0.5)
    payload = codec.encode(g)
    # 50% density, 8 bytes/kept entry: k = round(n/2) <= n/2 + 0.5.
    assert payload.wire_bytes <= (g.size * 0.5 + 0.5) * 8.0


@given(nonzero_vectors)
@settings(max_examples=60, deadline=None)
def test_fp16_round_trip_relative_error_bounded(g):
    codec = FP16Compressor()
    decoded = codec.decode(codec.encode(g))
    # fp16: ~1e-3 relative precision, values below the smallest
    # subnormal (~6e-8) flush to zero.
    bound = np.maximum(np.abs(g) * 1e-3, 6.0e-8)
    assert np.all(np.abs(decoded - g) <= bound)


@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_powersgd_payload_shapes(m, n, rank, seed):
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(m, n))
    codec = PowerSGDCompressor(rank=rank, seed=seed)
    payload = codec.encode(g)
    p_hat, q = payload.arrays
    r = min(rank, m, n)
    assert p_hat.shape == (m, r)
    assert q.shape == (n, r)
    assert codec.decode(payload).shape == (m, n)


@given(st.integers(min_value=2, max_value=30),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_orthonormalize_produces_orthonormal_columns(n, r, seed):
    rng = np.random.default_rng(seed)
    r = min(r, n)
    q = orthonormalize(rng.normal(size=(n, r)))
    gram = q.T @ q
    np.testing.assert_allclose(gram, np.eye(r), atol=1e-8)


@given(nonzero_vectors, st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_randomk_shared_seed_reproducible(g, round_count):
    a = RandomKCompressor(fraction=0.3, seed=99)
    b = RandomKCompressor(fraction=0.3, seed=99)
    for _ in range(round_count % 5):
        a.advance_round()
        b.advance_round()
    da = a.decode(a.encode(g))
    db = b.decode(b.encode(g))
    np.testing.assert_array_equal(da != 0, db != 0)


@given(nonzero_vectors)
@settings(max_examples=60, deadline=None)
def test_terngrad_decoded_bounded_by_scale(g):
    codec = TernGradCompressor(seed=0)
    decoded = codec.decode(codec.encode(g))
    assert np.abs(decoded).max() <= np.abs(g).max() + 1e-12


@given(nonzero_vectors)
@settings(max_examples=40, deadline=None)
def test_compression_ratio_positive_for_all(g):
    for codec in (SignSGDCompressor(), FP16Compressor(),
                  TopKCompressor(0.25)):
        assert codec.compression_ratio(g) > 0
