"""ASCII charts for terminal-first reporting.

The experiments produce tables; for the figures (scaling curves, sweeps)
a picture helps even in a terminal.  These renderers are intentionally
dependency-free and deterministic so examples and docs can embed their
output verbatim.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Marks assigned to series, in order.
SERIES_MARKS = "ox+*#@%&"


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if math.isfinite(v)]


def line_chart(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 60, height: int = 16,
               x_label: str = "x", y_label: str = "y",
               title: str = "") -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Non-finite y values (OOM points) are skipped.  Series are drawn in
    insertion order with marks from :data:`SERIES_MARKS`; collisions
    render as ``'?'``.
    """
    if not series:
        raise ConfigurationError("line_chart requires at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError(
            f"chart too small ({width}x{height}); min 10x4")
    if len(series) > len(SERIES_MARKS):
        raise ConfigurationError(
            f"too many series ({len(series)}); max {len(SERIES_MARKS)}")

    all_x = _finite([x for pts in series.values() for x, _ in pts])
    all_y = _finite([y for pts in series.values() for _, y in pts
                     if math.isfinite(y)])
    if not all_x or not all_y:
        raise ConfigurationError("no finite points to plot")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (name, pts) in zip(SERIES_MARKS, series.items()):
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark if grid[row][col] in (" ", mark) else "?"

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - i / (height - 1) * y_span
        prefix = f"{y_val:10.3g} |" if i % 4 == 0 or i == height - 1 \
            else f"{'':>10} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>10} +" + "-" * width)
    lines.append(f"{'':>12}{x_lo:<10.3g}{x_label:^{max(0, width - 20)}}"
                 f"{x_hi:>10.3g}")
    legend = "  ".join(f"{mark}={name}"
                       for mark, name in zip(SERIES_MARKS, series))
    lines.append(f"{'':>12}{legend}  ({y_label})")
    return "\n".join(lines)


def bar_chart(values: Dict[str, float], width: int = 50,
              title: str = "", unit: str = "") -> str:
    """Horizontal bar chart of named values (NaN rendered as 'n/a')."""
    if not values:
        raise ConfigurationError("bar_chart requires at least one value")
    finite = _finite(list(values.values()))
    if not finite:
        raise ConfigurationError("no finite values to plot")
    v_max = max(finite)
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        if not math.isfinite(value):
            lines.append(f"  {name:<{label_w}} | n/a")
            continue
        bar = "#" * max(1, int(value / v_max * width)) if v_max > 0 else ""
        lines.append(f"  {name:<{label_w}} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)


def scaling_chart(result, model: str, y_column: str = "mean_ms",
                  x_column: str = "gpus", width: int = 60,
                  height: int = 14) -> str:
    """Chart one model's scaling curves from an
    :class:`~repro.experiments.ExperimentResult` (fig 4/5/6 shapes)."""
    schemes: Dict[str, List[Tuple[float, float]]] = {}
    for row in result.rows:
        if row.get("model") != model:
            continue
        schemes.setdefault(row["scheme"], []).append(
            (float(row[x_column]), float(row[y_column])))
    if not schemes:
        raise ConfigurationError(
            f"{result.experiment_id}: no rows for model {model!r}")
    return line_chart(schemes, width=width, height=height,
                      x_label=x_column, y_label=y_column,
                      title=f"{result.experiment_id}: {model}")
