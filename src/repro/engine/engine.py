"""Sweep execution: fan simulation jobs out over processes, memoize.

The paper's methodology (§6) and every scaling figure reduce to the
same shape of work: a grid of independent ``DDPSimulator.run`` calls —
model × scheme × cluster, 110 iterations each.  The grid is
embarrassingly parallel and heavily redundant across figures (the
syncSGD baseline of Figure 4 is the same simulation as the baseline of
Figures 5 and 6), so the engine does two things:

* **fan-out** — cache misses run on a ``concurrent.futures`` process
  pool (``jobs`` workers); results come back in submission order, so a
  parallel sweep produces *identical* rows to the serial one (every job
  carries its own seed and owns its simulator);
* **memoization** — outcomes (timings *and* deterministic OOMs) are
  stored in a content-addressed :class:`SimulationCache` keyed by the
  fingerprint of everything that determines them (see
  :mod:`repro.engine.fingerprint`).

``ExperimentEngine()`` with no arguments is a serial, cache-less
drop-in for the old inline loops, which is what experiment runners
default to when no engine is passed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..compression.kernel_cost import KernelProfile
from ..compression.schemes import Scheme
from ..errors import ConfigurationError, OutOfMemoryError
from ..hardware import ClusterConfig
from ..models import ModelSpec
from ..network import Fabric
from ..simulator import DDPConfig, DDPSimulator, TimingResult
from ..telemetry.metrics import get_registry
from .cache import CacheStats, SimulationCache
from .fingerprint import (
    FINGERPRINT_VERSION,
    cluster_fingerprint,
    config_fingerprint,
    digest,
    fabric_fingerprint,
    model_fingerprint,
    profile_fingerprint,
    scheme_fingerprint,
)


@dataclass(frozen=True, eq=False)
class SimJob:
    """One fully-specified ``DDPSimulator.run`` invocation.

    Attributes mirror the simulator's constructor plus ``run``'s
    protocol arguments; ``None`` fields mean "the simulator's default"
    and fingerprint as such.
    """

    model: ModelSpec
    cluster: ClusterConfig
    scheme: Optional[Scheme] = None
    fabric: Optional[Fabric] = None
    config: Optional[DDPConfig] = None
    profile: Optional[KernelProfile] = None
    batch_size: Optional[int] = None
    iterations: int = 110
    warmup: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations <= self.warmup:
            raise ConfigurationError(
                f"iterations ({self.iterations}) must exceed warmup "
                f"({self.warmup})")

    def fingerprint(self) -> str:
        """Content hash identifying this job's outcome."""
        return digest({
            "version": FINGERPRINT_VERSION,
            "model": model_fingerprint(self.model),
            "cluster": cluster_fingerprint(self.cluster),
            "scheme": scheme_fingerprint(self.scheme),
            "fabric": fabric_fingerprint(self.fabric),
            "config": config_fingerprint(self.config),
            "profile": profile_fingerprint(self.profile),
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "seed": self.seed,
        })

    def build_simulator(self) -> DDPSimulator:
        return DDPSimulator(
            self.model, self.cluster, scheme=self.scheme,
            fabric=self.fabric, config=self.config,
            kernel_profile=self.profile)

    def describe(self) -> str:
        scheme_label = self.scheme.label if self.scheme else "syncsgd"
        return (f"{self.model.name} x {scheme_label} @ "
                f"{self.cluster.world_size} GPUs")


@dataclass
class JobOutcome:
    """What one job produced: a timing result or a deterministic OOM.

    ``exec_s`` is the simulation's own wall time inside its worker (0
    for cache hits); ``queue_wait_s`` is how long the job sat between
    submission and a worker picking it up.
    """

    job: SimJob
    result: Optional[TimingResult] = None
    oom: Optional[OutOfMemoryError] = None
    cached: bool = False
    exec_s: float = 0.0
    queue_wait_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    def unwrap(self) -> TimingResult:
        """The result, or re-raise the OOM the simulation hit."""
        if self.oom is not None:
            raise self.oom
        assert self.result is not None
        return self.result


def _execute_job(job: SimJob) -> Tuple[str, object, float, float]:
    """Process-pool entry point: run one job, tag the outcome.

    OOM is data (the sweep reports it as a row), so it travels back as a
    value instead of an exception; anything else propagates and fails
    the sweep loudly.  The tag carries the job's own wall time and the
    wall-clock instant it started (``time.time``, comparable across
    processes to ~ms precision), from which the parent derives queue
    wait.
    """
    started_unix = time.time()
    started = time.perf_counter()
    sim = job.build_simulator()
    try:
        result = sim.run(job.batch_size, iterations=job.iterations,
                         warmup=job.warmup, seed=job.seed)
    except OutOfMemoryError as exc:
        return ("oom", (str(exc), exc.required_bytes, exc.budget_bytes),
                time.perf_counter() - started, started_unix)
    return ("ok", result, time.perf_counter() - started, started_unix)


def _outcome_from_tagged(job: SimJob, tagged: Tuple[str, object, float, float],
                         submitted_unix: float,
                         cached: bool = False) -> JobOutcome:
    kind, payload, exec_s, started_unix = tagged
    queue_wait_s = max(0.0, started_unix - submitted_unix)
    if kind == "oom":
        message, required, budget = payload  # type: ignore[misc]
        return JobOutcome(job=job, oom=OutOfMemoryError(
            message, required_bytes=required, budget_bytes=budget),
            cached=cached, exec_s=exec_s, queue_wait_s=queue_wait_s)
    return JobOutcome(job=job, result=payload, cached=cached,  # type: ignore[arg-type]
                      exec_s=exec_s, queue_wait_s=queue_wait_s)


@dataclass(frozen=True)
class EngineStats:
    """Structured snapshot of an engine's counters.

    Previously the cache hit rate was only recoverable by parsing the
    CLI's printed status line; this object is the programmatic form —
    what manifests embed and telemetry mirrors.
    """

    cache: CacheStats
    executed: int
    jobs_completed: int
    busy_s: float
    exec_s_total: float
    queue_wait_s_total: float
    worker_s_total: float

    @property
    def mean_exec_s(self) -> float:
        """Mean wall time of an actually-executed simulation."""
        return self.exec_s_total / self.executed if self.executed else 0.0

    @property
    def pool_utilization(self) -> float:
        """Fraction of allocated worker-seconds spent simulating (1.0 =
        every worker busy the whole time ``run_outcomes`` held it)."""
        return (self.exec_s_total / self.worker_s_total
                if self.worker_s_total > 0 else 0.0)

    def to_dict(self) -> dict:
        """JSON-serializable rendering (for manifests)."""
        return {
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_stores": self.cache.stores,
            "cache_hit_rate": self.cache.hit_rate,
            "executed": self.executed,
            "jobs_completed": self.jobs_completed,
            "busy_s": self.busy_s,
            "exec_s_total": self.exec_s_total,
            "queue_wait_s_total": self.queue_wait_s_total,
            "worker_s_total": self.worker_s_total,
            "mean_exec_s": self.mean_exec_s,
            "pool_utilization": self.pool_utilization,
        }

    def describe(self) -> str:
        return (f"{self.jobs_completed} jobs ({self.executed} executed, "
                f"{self.cache.describe()}), "
                f"{self.exec_s_total:.1f} s simulating, "
                f"{self.pool_utilization:.0%} pool utilization")


class ExperimentEngine:
    """Runs batches of :class:`SimJob` with optional parallelism and
    an optional result cache.

    Attributes:
        jobs: Worker process count; 1 (the default) runs in-process.
        cache: A :class:`SimulationCache`, or ``None`` to recompute
            everything.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[SimulationCache] = None):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Simulations actually executed (cache misses) over the
        #: engine's lifetime.
        self.executed = 0
        #: Wall-clock seconds spent inside ``run_outcomes``.
        self.busy_s = 0.0
        #: Outcomes returned (hits + misses) over the lifetime.
        self.jobs_completed = 0
        #: Summed per-job simulation wall time (inside workers).
        self.exec_s_total = 0.0
        #: Summed submission-to-start wait of executed jobs.
        self.queue_wait_s_total = 0.0
        #: Worker-seconds allocated (workers x batch wall time).
        self.worker_s_total = 0.0

    # ----- execution ---------------------------------------------------------

    def run_outcomes(self, batch: Sequence[SimJob]) -> List[JobOutcome]:
        """Run every job; outcomes come back in input order.

        Cache hits are served without simulating; misses run serially
        or on the process pool, then populate the cache.
        """
        start = time.perf_counter()
        outcomes: List[Optional[JobOutcome]] = [None] * len(batch)
        miss_indices: List[int] = []
        keys: List[Optional[str]] = [None] * len(batch)

        if self.cache is not None:
            for i, job in enumerate(batch):
                key = job.fingerprint()
                keys[i] = key
                hit = self.cache.get(key)
                if hit is None:
                    miss_indices.append(i)
                elif isinstance(hit, OutOfMemoryError):
                    outcomes[i] = JobOutcome(job=job, oom=hit, cached=True)
                else:
                    outcomes[i] = JobOutcome(job=job, result=hit,
                                             cached=True)
        else:
            miss_indices = list(range(len(batch)))

        miss_jobs = [batch[i] for i in miss_indices]
        workers = 1
        if miss_jobs:
            submitted_unix = time.time()
            if self.jobs > 1 and len(miss_jobs) > 1:
                workers = min(self.jobs, len(miss_jobs),
                              (os.cpu_count() or 1))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    tagged_results = list(pool.map(_execute_job, miss_jobs))
            else:
                tagged_results = [_execute_job(job) for job in miss_jobs]
            self.executed += len(miss_jobs)
            for i, tagged in zip(miss_indices, tagged_results):
                outcome = _outcome_from_tagged(batch[i], tagged,
                                               submitted_unix)
                outcomes[i] = outcome
                self.exec_s_total += outcome.exec_s
                self.queue_wait_s_total += outcome.queue_wait_s
                if self.cache is not None:
                    key = keys[i]
                    assert key is not None
                    self.cache.put(
                        key, outcome.result if outcome.ok
                        else outcome.oom)  # type: ignore[arg-type]

        batch_wall = time.perf_counter() - start
        self.busy_s += batch_wall
        if miss_jobs:
            self.worker_s_total += workers * batch_wall
        self.jobs_completed += len(batch)
        self._record_batch(outcomes)
        return [o for o in outcomes if o is not None]

    def _record_batch(self, outcomes: Sequence[Optional[JobOutcome]]) -> None:
        """Mirror one batch's outcomes into the telemetry registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        for outcome in outcomes:
            if outcome is None:
                continue
            registry.counter(
                "engine_jobs_total",
                cached=str(outcome.cached).lower()).inc()
            if outcome.oom is not None:
                registry.counter("engine_oom_outcomes_total").inc()
            if not outcome.cached:
                registry.histogram("engine_job_exec_s").observe(
                    outcome.exec_s)
                registry.histogram("engine_queue_wait_s").observe(
                    outcome.queue_wait_s)
        registry.gauge("engine_pool_utilization").set(
            self.stats().pool_utilization)

    def run(self, job: SimJob) -> TimingResult:
        """Run one job; raises the stored OOM like the raw simulator."""
        return self.run_outcomes([job])[0].unwrap()

    # ----- statistics --------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """The cache's counters (zeros when no cache is attached)."""
        return (self.cache.stats if self.cache is not None
                else CacheStats())

    def stats(self) -> EngineStats:
        """A structured snapshot of every engine counter."""
        return EngineStats(
            cache=self.cache_stats.snapshot(),
            executed=self.executed,
            jobs_completed=self.jobs_completed,
            busy_s=self.busy_s,
            exec_s_total=self.exec_s_total,
            queue_wait_s_total=self.queue_wait_s_total,
            worker_s_total=self.worker_s_total,
        )
