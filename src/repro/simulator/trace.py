"""Timeline traces: the simulator's equivalent of an Nsight profile.

Every simulated iteration produces a list of :class:`Span` records —
(stream, label, start, end) — from which the experiments derive the
quantities the paper measures from real Nsight traces: the stretched
backward duration (for γ), per-bucket communication occupancy, and the
Figure-2-style visualization in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError

#: Stream names used by the DDP simulator.
COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"


@dataclass(frozen=True)
class Span:
    """One contiguous occupancy interval on a stream."""

    stream: str
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"span {self.label!r} ends before it starts "
                f"({self.start} -> {self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IterationTrace:
    """All spans of one simulated training iteration, plus key instants.

    Attributes:
        spans: Every stream occupancy interval.
        forward_end: When the forward pass finished.
        backward_end: When the last backward kernel finished.
        sync_end: When the last gradient byte was aggregated — the end of
            the paper's "gradient computation and synchronization" window.
        iteration_end: After the optimizer step.
    """

    spans: List[Span] = field(default_factory=list)
    forward_end: float = 0.0
    backward_end: float = 0.0
    sync_end: float = 0.0
    iteration_end: float = 0.0

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def stream_spans(self, stream: str) -> List[Span]:
        """Spans of one stream in start order."""
        return sorted((s for s in self.spans if s.stream == stream),
                      key=lambda s: s.start)

    def stream_busy_time(self, stream: str) -> float:
        """Total occupied seconds on a stream (spans never overlap within
        one stream by construction)."""
        return sum(s.duration for s in self.stream_spans(stream))

    def compute_comm_overlap(self) -> float:
        """Seconds during which compute and comm streams are both busy —
        the overlap DDP exists to create."""
        compute = self.stream_spans(COMPUTE_STREAM)
        comm = self.stream_spans(COMM_STREAM)
        overlap = 0.0
        for c in compute:
            for m in comm:
                overlap += max(
                    0.0, min(c.end, m.end) - max(c.start, m.start))
        return overlap

    def sync_time(self) -> float:
        """The paper's per-iteration measurement: backward start (==
        forward end) to the end of gradient aggregation."""
        return self.sync_end - self.forward_end

    def render_ascii(self, width: int = 78) -> str:
        """Render the two streams as an ASCII Gantt chart (Figure 2
        style).  For humans; experiments never parse this."""
        if not self.spans:
            return "(empty trace)"
        t_max = max(s.end for s in self.spans)
        if t_max <= 0:
            return "(zero-length trace)"
        lines = []
        for stream in (COMPUTE_STREAM, COMM_STREAM):
            row = [" "] * width
            for span in self.stream_spans(stream):
                lo = int(span.start / t_max * (width - 1))
                hi = max(lo + 1, int(span.end / t_max * (width - 1)))
                mark = "#" if stream == COMPUTE_STREAM else "="
                for i in range(lo, min(hi, width)):
                    row[i] = mark
            lines.append(f"{stream:>8s} |{''.join(row)}|")
        lines.append(f"{'':>8s}  0.0{'':>{max(1, width - 16)}}{t_max * 1e3:8.1f} ms")
        return "\n".join(lines)


def estimate_gamma(distributed: IterationTrace,
                   standalone_backward_s: float) -> float:
    """The paper's §4.3 γ methodology: the ratio of the backward-pass
    duration seen in a distributed trace to the standalone backward time
    measured on one machine."""
    if standalone_backward_s <= 0:
        raise SimulationError(
            f"standalone backward time must be > 0, "
            f"got {standalone_backward_s}")
    stretched = distributed.backward_end - distributed.forward_end
    return stretched / standalone_backward_s
