"""Encode/decode time model for compression kernels.

The paper's Table 2 measures ``T_encode-decode`` on V100s for ResNet-50 at
4 machines (16 GPUs): PowerSGD rank 4/8/16 = 45/64/130 ms, Top-K
20/10/1 % = 295/289/240 ms, signSGD = 16.34 ms.  We turn those
measurements into a *mechanistic* cost model — per-tensor kernel-launch
overheads, skinny-matmul throughput, orthogonalization throughput,
selection and elementwise throughputs — by solving for the constants that
make the model reproduce Table 2 exactly on our ResNet-50 spec.  The same
constants then generalize to other models (ResNet-101, BERT) and other
ranks/fractions, which is how the paper itself extrapolates.

Structure of each method's cost (all per iteration, seconds):

* **PowerSGD(r)**, per matrix layer ``(m, n)`` with effective rank
  ``r' = min(r, m, n)``: one fixed launch overhead, ``6·m·n·r'`` matmul
  FLOPs (two power-iteration products + reconstruction), and
  ``(m+n)·r'^2`` orthogonalization work.  Extra (non-matrix) parameters
  are charged one elementwise pass.
* **Top-K(f)**: one selection scan over all ``N`` elements, plus
  gather/pack of ``f·N`` selected values, plus — because aggregation is
  an all-gather — a scatter-accumulate of ``f·N`` values *per received
  payload*, i.e. ``f·N·p`` on the decode side.  This is why Table 2's
  Top-K numbers barely depend on ``f``: the ``N``-sized scan dominates.
* **signSGD**: one elementwise pass to sign+pack, and a vote pass over
  all ``p`` unpacked sign vectors — ``N·(1+p)`` elementwise work, the
  linear-in-``p`` decode the paper's BERT OOM/slowdown notes describe.

The profile scales linearly with GPU speed (`scaled`), which is exactly
the assumption the paper's Figure 12 what-if makes ("as compute gets
faster, the encode-decode time also reduces by the same factor").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..errors import CalibrationError, ConfigurationError
from ..models import ModelSpec, get_model
from ..units import seconds_from_ms

#: Table 2 of the paper: the calibration targets (ms).
TABLE2_POWERSGD_MS = {4: 45.0, 8: 64.0, 16: 130.0}
TABLE2_TOPK_MS = {0.20: 295.0, 0.10: 289.0, 0.01: 240.0}
TABLE2_SIGNSGD_MS = 16.34
#: Table 2 was measured on 4 p3.8xlarge machines = 16 GPUs.
TABLE2_WORLD_SIZE = 16


@dataclass(frozen=True)
class KernelProfile:
    """Throughput constants for compression kernels on one GPU.

    Attributes:
        name: Which GPU the constants describe.
        tensor_overhead_s: Fixed cost per compressed tensor (kernel
            launches, shape bookkeeping).
        matmul_flops_per_s: Effective throughput of the skinny matrix
            products low-rank methods perform (far below peak: tall-thin
            GEMMs underutilize the GPU).
        orth_elems_per_s: Orthogonalization throughput, in ``(m+n)``
            elements per ``r^2`` unit of work.
        select_elems_per_s: Top-K selection-scan throughput.
        pack_elems_per_s: Gather/scatter/pack throughput per selected
            element.
        elementwise_elems_per_s: Sign/quantize/cast kernel throughput.
        svd_flops_per_s: Dense SVD throughput (ATOMO); far below matmul.
    """

    name: str
    tensor_overhead_s: float
    matmul_flops_per_s: float
    orth_elems_per_s: float
    select_elems_per_s: float
    pack_elems_per_s: float
    elementwise_elems_per_s: float
    svd_flops_per_s: float

    def __post_init__(self) -> None:
        for field_name in ("tensor_overhead_s", "matmul_flops_per_s",
                           "orth_elems_per_s", "select_elems_per_s",
                           "pack_elems_per_s", "elementwise_elems_per_s",
                           "svd_flops_per_s"):
            # np.any instead of a plain comparison: the grid engine
            # (repro.core.grid) carries a compute-factor *axis* through
            # these fields as NumPy arrays.
            if np.any(np.asarray(getattr(self, field_name)) <= 0):
                raise ConfigurationError(
                    f"{self.name}: {field_name} must be > 0, "
                    f"got {getattr(self, field_name)}")

    def scaled(self, compute_factor: float) -> "KernelProfile":
        """A profile for hardware ``compute_factor`` times faster."""
        if compute_factor <= 0:
            raise ConfigurationError(
                f"compute_factor must be > 0, got {compute_factor}")
        return replace(
            self,
            name=f"{self.name}-x{compute_factor:g}",
            tensor_overhead_s=self.tensor_overhead_s / compute_factor,
            matmul_flops_per_s=self.matmul_flops_per_s * compute_factor,
            orth_elems_per_s=self.orth_elems_per_s * compute_factor,
            select_elems_per_s=self.select_elems_per_s * compute_factor,
            pack_elems_per_s=self.pack_elems_per_s * compute_factor,
            elementwise_elems_per_s=self.elementwise_elems_per_s * compute_factor,
            svd_flops_per_s=self.svd_flops_per_s * compute_factor,
        )


# ----- per-method cost functions ---------------------------------------------


def _effective_rank(rank: int, m: int, n: int) -> int:
    return max(1, min(rank, m, n))


def powersgd_encode_decode_time(model: ModelSpec, rank: int,
                                profile: KernelProfile) -> float:
    """PowerSGD encode+decode seconds for one iteration."""
    if rank < 1:
        raise ConfigurationError(f"rank must be >= 1, got {rank}")
    total = 0.0
    extras = 0
    for layer in model.trainable_layers:
        if layer.has_matrix:
            m, n = layer.matrix_shape
            r = _effective_rank(rank, m, n)
            total += profile.tensor_overhead_s
            total += 6.0 * m * n * r / profile.matmul_flops_per_s
            total += (m + n) * r * r / profile.orth_elems_per_s
            extras += layer.extra_params
        else:
            extras += layer.num_params
    total += extras / profile.elementwise_elems_per_s
    return total


def topk_encode_decode_time(model: ModelSpec, fraction: float,
                            profile: KernelProfile,
                            world_size: int) -> float:
    """Top-K encode+decode seconds: selection scan + pack + per-payload
    scatter on the all-gather decode path (linear in ``world_size``)."""
    if not 0 < fraction <= 1:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    _check_world(world_size)
    numel = model.num_params
    selected = fraction * numel
    encode = (profile.tensor_overhead_s
              + numel / profile.select_elems_per_s
              + selected / profile.pack_elems_per_s)
    decode = selected * world_size / profile.pack_elems_per_s
    return encode + decode


def signsgd_encode_decode_time(model: ModelSpec, profile: KernelProfile,
                               world_size: int) -> float:
    """signSGD encode+decode seconds: one sign/pack pass, then a majority
    vote over all ``p`` gathered sign vectors."""
    _check_world(world_size)
    numel = model.num_params
    return (profile.tensor_overhead_s
            + numel * (1.0 + world_size) / profile.elementwise_elems_per_s)


def fp16_encode_decode_time(model: ModelSpec,
                            profile: KernelProfile) -> float:
    """fp16 cast down + cast up: two elementwise passes, no p term
    (the all-reduce sums halves directly)."""
    return (profile.tensor_overhead_s
            + 2.0 * model.num_params / profile.elementwise_elems_per_s)


def qsgd_encode_decode_time(model: ModelSpec, profile: KernelProfile,
                            world_size: int) -> float:
    """QSGD: ~3 elementwise passes to normalize/round/pack, then a
    dequantize pass per gathered payload."""
    _check_world(world_size)
    numel = model.num_params
    return (profile.tensor_overhead_s
            + numel * (3.0 + world_size) / profile.elementwise_elems_per_s)


def terngrad_encode_decode_time(model: ModelSpec, profile: KernelProfile,
                                world_size: int) -> float:
    """TernGrad: ~2 elementwise passes encode, one per payload decode."""
    _check_world(world_size)
    numel = model.num_params
    return (profile.tensor_overhead_s
            + numel * (2.0 + world_size) / profile.elementwise_elems_per_s)


def onebit_encode_decode_time(model: ModelSpec, profile: KernelProfile,
                              world_size: int) -> float:
    """1-bit SGD: two passes encode (threshold + means), per-payload
    unpack on decode."""
    _check_world(world_size)
    numel = model.num_params
    return (profile.tensor_overhead_s
            + numel * (2.0 + world_size) / profile.elementwise_elems_per_s)


def randomk_encode_decode_time(model: ModelSpec, fraction: float,
                               profile: KernelProfile) -> float:
    """Shared-seed Random-K: gather + scatter of ``f·N`` values; the
    index draw is a counter-based RNG pass over the selection only.  No
    ``p`` term — aggregation all-reduces."""
    if not 0 < fraction <= 1:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    selected = fraction * model.num_params
    return (profile.tensor_overhead_s
            + 3.0 * selected / profile.pack_elems_per_s)


def dgc_encode_decode_time(model: ModelSpec, fraction: float,
                           profile: KernelProfile,
                           world_size: int) -> float:
    """DGC: sampled-quantile threshold (cheap scan), mask+pack, and the
    same linear-in-``p`` scatter decode as Top-K."""
    if not 0 < fraction <= 1:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    _check_world(world_size)
    numel = model.num_params
    selected = fraction * numel
    encode = (profile.tensor_overhead_s
              + numel / profile.elementwise_elems_per_s  # threshold mask
              + 0.01 * numel / profile.select_elems_per_s  # sampled quantile
              + selected / profile.pack_elems_per_s)
    decode = selected * world_size / profile.pack_elems_per_s
    return encode + decode


def atomo_encode_decode_time(model: ModelSpec, rank: int,
                             profile: KernelProfile,
                             world_size: int) -> float:
    """ATOMO: a full SVD per matrix layer (the expensive part), plus a
    rank-``r`` reconstruction per gathered payload."""
    if rank < 1:
        raise ConfigurationError(f"rank must be >= 1, got {rank}")
    _check_world(world_size)
    total = 0.0
    for layer in model.matrix_layers:
        m, n = layer.matrix_shape
        r = _effective_rank(rank, m, n)
        total += profile.tensor_overhead_s
        total += 8.0 * m * n * min(m, n) / profile.svd_flops_per_s
        total += 2.0 * m * n * r * world_size / profile.matmul_flops_per_s
    return total


def gradiveq_encode_decode_time(model: ModelSpec, block: int, dims: int,
                                profile: KernelProfile) -> float:
    """GradiVeq-style projection: encode+decode are two dense products
    against the shared basis: ``4·N·dims`` FLOPs total."""
    if block < 1 or dims < 1 or dims > block:
        raise ConfigurationError(
            f"invalid block/dims ({block}, {dims})")
    return (profile.tensor_overhead_s
            + 4.0 * model.num_params * dims / profile.matmul_flops_per_s)


def _check_world(world_size: int) -> None:
    if world_size < 1:
        raise ConfigurationError(
            f"world_size must be >= 1, got {world_size}")


# ----- calibration -----------------------------------------------------------


def calibrate_v100_profile(reference: Optional[ModelSpec] = None) -> KernelProfile:
    """Solve for the V100 kernel constants from the paper's Table 2.

    PowerSGD's three rank rows form a 3x3 linear system in
    (tensor overhead, 1/matmul throughput, 1/orth throughput) given the
    reference model's exact layer shapes; Top-K's three fraction rows give
    a least-squares fit of (1/select, 1/pack); signSGD's single row pins
    the elementwise throughput given the world size it was measured at.
    SVD throughput cannot be calibrated from Table 2 (ATOMO is not
    measured there); it is set to a third of the skinny-matmul
    throughput, the ballpark LAPACK-on-GPU ratio.

    Raises:
        CalibrationError: if the solve produces non-positive constants,
            which would mean the cost structure cannot explain Table 2.
    """
    model = reference if reference is not None else get_model("resnet50")

    # --- PowerSGD: t(r) = overhead_count*x + matmul_work(r)*y + orth_work(r)*z
    ranks = sorted(TABLE2_POWERSGD_MS)
    rows = []
    for rank in ranks:
        n_tensors = 0
        matmul_work = 0.0
        orth_work = 0.0
        for layer in model.matrix_layers:
            m, n = layer.matrix_shape
            r = _effective_rank(rank, m, n)
            n_tensors += 1
            matmul_work += 6.0 * m * n * r
            orth_work += (m + n) * r * r
        rows.append((n_tensors, matmul_work, orth_work))
    a = np.array(rows, dtype=np.float64)
    b = np.array([seconds_from_ms(TABLE2_POWERSGD_MS[r]) for r in ranks])
    try:
        x, y, z = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise CalibrationError(f"PowerSGD calibration system singular: {exc}")
    if x <= 0 or y <= 0 or z <= 0:
        raise CalibrationError(
            f"PowerSGD calibration produced non-positive constants "
            f"(overhead={x:g}, matmul={y:g}, orth={z:g})")

    # --- Top-K: t(f) = N*s + f*N*(1 + p)*g, least squares over 3 rows.
    numel = model.num_params
    p = TABLE2_WORLD_SIZE
    fractions = sorted(TABLE2_TOPK_MS)
    design = np.array(
        [[numel, f * numel * (1.0 + p)] for f in fractions])
    target = np.array([seconds_from_ms(TABLE2_TOPK_MS[f]) for f in fractions])
    (s_inv, g_inv), *_ = np.linalg.lstsq(design, target, rcond=None)
    if s_inv <= 0 or g_inv <= 0:
        raise CalibrationError(
            f"Top-K calibration produced non-positive constants "
            f"(select={s_inv:g}, pack={g_inv:g})")

    # --- signSGD: t = N*(1 + p)*e.
    e_inv = seconds_from_ms(TABLE2_SIGNSGD_MS) / (numel * (1.0 + p))

    matmul = 1.0 / y
    return KernelProfile(
        name="V100-table2",
        tensor_overhead_s=float(x),
        matmul_flops_per_s=float(matmul),
        orth_elems_per_s=float(1.0 / z),
        select_elems_per_s=float(1.0 / s_inv),
        pack_elems_per_s=float(1.0 / g_inv),
        elementwise_elems_per_s=float(1.0 / e_inv),
        svd_flops_per_s=float(matmul / 3.0),
    )


_V100_PROFILE: Optional[KernelProfile] = None


def v100_kernel_profile() -> KernelProfile:
    """The Table-2-calibrated V100 profile (computed once, cached)."""
    global _V100_PROFILE
    if _V100_PROFILE is None:
        _V100_PROFILE = calibrate_v100_profile()
    return _V100_PROFILE
