#!/usr/bin/env python
"""Design a compression scheme against the paper's criteria (§5, §7).

The paper ends with a spec for a *useful* gradient compressor: it must be
all-reduce compatible, need only ~4x compression, and spend well under
the syncSGD-vs-ideal headroom on encode/decode.  This example builds a
new method against the public API — "ChunkMean", which averages every
group of 4 consecutive gradient values (4x ratio, one elementwise pass,
linear and therefore all-reducible) — and walks it through the full
evaluation pipeline:

  1. numeric codec + convergence on the training substrate,
  2. a Scheme for the cost model,
  3. headroom check against Figure 10,
  4. predicted speedups vs syncSGD and PowerSGD at the paper's scales.

Run:  python examples/design_a_compressor.py
"""

import numpy as np

from repro.compression import (
    MeanAllReduceAggregator,
    Compressor,
    Payload,
    PowerSGDScheme,
    Scheme,
    SchemeCost,
)
from repro.core import PerfModelInputs, headroom_curve, predict, syncsgd_time
from repro.models import get_model
from repro.training import MLP, DistributedTrainer, MLPConfig, gaussian_blobs
from repro.units import FLOAT32_BYTES, gbps_to_bytes_per_s


class ChunkMeanCompressor(Compressor):
    """Average every ``chunk`` consecutive values; decode by broadcast.

    Linear in the gradient, so payloads sum correctly across workers —
    all-reduce compatible by construction.
    """

    name = "chunkmean"
    all_reducible = True
    layerwise = True

    def __init__(self, chunk: int = 4):
        self.chunk = chunk

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        pad = (-flat.size) % self.chunk
        padded = np.pad(flat, (0, pad))
        means = padded.reshape(-1, self.chunk).mean(axis=1)
        return Payload(arrays=(means,),
                       wire_bytes=float(means.size * FLOAT32_BYTES),
                       shape=arr.shape, meta={"pad": float(pad)})

    def decode(self, payload: Payload) -> np.ndarray:
        means = payload.arrays[0]
        flat = np.repeat(means, self.chunk)
        pad = int(payload.meta["pad"])
        if pad:
            flat = flat[:-pad]
        return flat.reshape(payload.shape)


class ChunkMeanScheme(Scheme):
    """Cost model: ~4x ratio, one message, two elementwise passes."""

    name = "chunkmean"
    all_reducible = True
    layerwise = True

    def __init__(self, chunk: int = 4):
        self.chunk = chunk

    @property
    def label(self) -> str:
        return f"chunkmean(x{self.chunk})"

    def cost(self, model, world_size, profile=None) -> SchemeCost:
        prof = self._profile(profile)
        return SchemeCost(
            wire_bytes=np.ceil(model.num_params / self.chunk)
            * FLOAT32_BYTES,
            messages=1,
            encode_decode_s=(prof.tensor_overhead_s
                            + 2.0 * model.num_params
                            / prof.elementwise_elems_per_s),
            all_reducible=True,
            gather_stack_bytes=0.0,
        )


def main() -> None:
    # 1 --- does it train? (It is biased, so pair it with the mean
    # all-reduce path and watch convergence.)
    dataset = gaussian_blobs(num_samples=512, num_features=16,
                             num_classes=4, seed=3)
    model = MLP(MLPConfig(input_dim=16, hidden_dims=(32,), num_classes=4,
                          seed=3))
    trainer = DistributedTrainer(model, dataset, num_workers=4, lr=0.2,
                                 seed=3)
    trainer.aggregators = {
        name: MeanAllReduceAggregator(4, ChunkMeanCompressor(4))
        for name in model.param_names()}
    history = trainer.train(steps=150, batch_size=32)
    print(f"1. convergence: loss {history.losses[0]:.3f} -> "
          f"{history.final_loss:.3f}, accuracy "
          f"{history.final_accuracy:.1%}")

    # 2 --- the paper's criteria.
    scheme = ChunkMeanScheme(4)
    rn50 = get_model("resnet50")
    cost = scheme.cost(rn50, 96)
    print(f"2. criteria: ratio {cost.compression_ratio(rn50):.1f}x "
          f"(paper asks ~4x), all-reducible: {cost.all_reducible}, "
          f"encode/decode {cost.encode_decode_s * 1e3:.1f} ms")

    # 3 --- headroom check (Figure 10): encode must fit in the gap.
    headroom = headroom_curve(rn50, [96], gbps_to_bytes_per_s(10),
                              batch_size=64)[0].headroom_s
    fits = cost.encode_decode_s < headroom
    print(f"3. headroom at 96 GPUs / 10 Gbit/s: "
          f"{headroom * 1e3:.0f} ms available, "
          f"{cost.encode_decode_s * 1e3:.1f} ms needed -> "
          f"{'fits' if fits else 'does NOT fit'}")

    # 4 --- predicted end-to-end comparison.
    inputs = PerfModelInputs(world_size=96,
                             bandwidth_bytes_per_s=gbps_to_bytes_per_s(10),
                             batch_size=64)
    sync = syncsgd_time(rn50, inputs).total
    mine = predict(rn50, scheme, inputs).total
    power = predict(rn50, PowerSGDScheme(4), inputs).total
    print(f"4. ResNet-50 @ 96 GPUs, 10 Gbit/s (model):")
    print(f"     syncSGD   {sync * 1e3:7.1f} ms")
    print(f"     chunkmean {mine * 1e3:7.1f} ms ({(sync - mine) / sync:+.1%})")
    print(f"     PowerSGD  {power * 1e3:7.1f} ms ({(sync - power) / sync:+.1%})")
    print("\na boring 4x all-reducible method with near-zero encode cost "
          "competes with 60x PowerSGD — the paper's point, in code.")


if __name__ == "__main__":
    main()
