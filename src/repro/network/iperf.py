"""iperf3-style bandwidth probing of a :class:`~repro.network.Fabric`.

The paper's methodology (§4.3): *"Before each run we calculate available
bandwidth between each pair of instances using iperf3 and take the minimum
of these values as BW."*  This module reproduces that probe against the
simulated fabric, including the measurement being a finite-length transfer
(so the α term biases short probes low, as it does in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import MIB
from .fabric import Fabric

#: Default probe payload; iperf3 defaults to a 10 s stream, we price a
#: fixed transfer instead so results are deterministic.
DEFAULT_PROBE_BYTES = 128 * MIB


@dataclass(frozen=True)
class BandwidthReport:
    """Result of probing every node pair.

    Attributes:
        matrix: Symmetric (nodes x nodes) measured bandwidth, bytes/s;
            the diagonal is NaN (a node does not probe itself).
        min_bandwidth: The pairwise minimum, the paper's ``BW``.
        alpha_s: Estimated per-message latency (see
            :func:`estimate_alpha`).
    """

    matrix: np.ndarray
    min_bandwidth: float
    alpha_s: float

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]


def measure_pair(fabric: Fabric, node_a: int, node_b: int,
                 probe_bytes: float = DEFAULT_PROBE_BYTES) -> float:
    """Measure one pair like a single iperf3 stream: bytes over elapsed
    wall time, which includes the α setup cost."""
    if probe_bytes <= 0:
        raise ConfigurationError(f"probe_bytes must be > 0, got {probe_bytes}")
    if node_a == node_b:
        raise ConfigurationError("iperf probes require two distinct nodes")
    elapsed = fabric.transfer_time(probe_bytes, node_a, node_b)
    return probe_bytes / elapsed


def measure_cluster(fabric: Fabric,
                    probe_bytes: float = DEFAULT_PROBE_BYTES) -> BandwidthReport:
    """Probe every node pair and summarize, as the paper does before a run.

    Single-node clusters have no inter-node links; the report's minimum
    falls back to NVLink bandwidth so downstream formulas stay finite.
    """
    n = fabric.cluster.num_nodes
    matrix = np.full((n, n), np.nan)
    for a in range(n):
        for b in range(a + 1, n):
            bw = measure_pair(fabric, a, b, probe_bytes)
            matrix[a, b] = matrix[b, a] = bw
    if n > 1:
        min_bw = float(np.nanmin(matrix))
    else:
        min_bw = fabric.min_bandwidth()
    return BandwidthReport(
        matrix=matrix, min_bandwidth=min_bw, alpha_s=estimate_alpha(fabric))


def estimate_alpha(fabric: Fabric, num_gpus: int = 0) -> float:
    """Estimate the latency coefficient α the way §4.3 describes.

    The paper performs a ring all-reduce on a tiny tensor and divides the
    elapsed time by ``p - 1``.  A tiny ring all-reduce costs
    ``2 * alpha * (p - 1)`` plus negligible bandwidth time, so the
    estimate recovers ~2α per hop; we divide the simulated elapsed time by
    ``2 (p - 1)`` to report α itself.
    """
    p = num_gpus or fabric.cluster.world_size
    if p < 2:
        return fabric.alpha_s
    tiny_bytes = 4.0 * p  # "a vector of size equivalent to number of machines"
    per_hop = fabric.alpha_s + tiny_bytes / fabric.min_bandwidth()
    elapsed = 2.0 * (p - 1) * per_hop
    return elapsed / (2.0 * (p - 1))
