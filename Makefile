PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke examples

## tier-1: the fast unit/behaviour suite (benchmarks/ excluded)
test:
	$(PYTHON) -m pytest

## static checks: ruff (config in pyproject.toml, benchmarks/ excluded)
## plus docstring coverage of the public fault/engine API
lint:
	ruff check src tests examples
	$(PYTHON) tools/check_docstrings.py

## full-fidelity paper-exhibit regeneration (slow, opt-in)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## one fast figure through the parallel engine + result cache; a second
## invocation should report a ~100% cache hit rate
bench-smoke:
	$(PYTHON) -m repro experiment fig7 --jobs 2 --cache .sim-cache

## run every example headlessly in smoke mode (trimmed protocols, <60 s
## total); CI runs this on every push
examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; \
		REPRO_EXAMPLES_SMOKE=1 $(PYTHON) $$f > /dev/null; \
	done
	@echo "all examples passed"
