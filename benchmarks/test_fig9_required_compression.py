"""Figure 9: compression required for near-linear scaling is modest."""

import math

from repro.experiments import run_fig9


def test_fig9_required_compression(run_once, show):
    result = run_once(run_fig9)
    show(result, "{:.2f}")

    finite = [row for row in result.rows
              if math.isfinite(row["required_ratio"])]
    assert finite

    # --- The headline: at 10 Gbit/s, single-digit ratios even at the
    # smallest batches the figure sweeps (paper reads "at most ~7x");
    # and <= 4x from batch 16 up.
    at_10g = [row for row in finite if row["bandwidth_gbps"] == 10.0]
    assert max(row["required_ratio"] for row in at_10g) < 9.0
    assert max(row["required_ratio"] for row in at_10g
               if row["batch_size"] >= 16) < 4.0

    # --- BERT at its default batch needs < 2x.
    bert = result.single(model="bert-base", bandwidth_gbps=10.0,
                         batch_size=12)
    assert bert["required_ratio"] < 2.0

    # --- Larger batches need less compression (Figure 7's cause).
    for model, batches in (("resnet50", (8, 64)), ("resnet101", (8, 64)),
                           ("bert-base", (2, 12))):
        small = result.single(model=model, bandwidth_gbps=10.0,
                              batch_size=batches[0])["required_ratio"]
        large = result.single(model=model, bandwidth_gbps=10.0,
                              batch_size=batches[1])["required_ratio"]
        assert large <= small, model

    # --- More bandwidth needs less compression.
    for row10 in at_10g:
        row25 = result.single(model=row10["model"], bandwidth_gbps=25.0,
                              batch_size=row10["batch_size"])
        assert row25["required_ratio"] <= row10["required_ratio"]
