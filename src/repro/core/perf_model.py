"""The paper's performance model (§4).

For synchronous SGD with DDP-style bucketing and overlap (§4.1)::

    T_obs ≈ max(γ·T_comp, (k-1)·T_comm(b, p, BW)) + T_comm(b̂, p, BW)

where the first ``k-1`` buckets of size ``b`` overlap the (γ-stretched)
backward pass and the last bucket ``b̂`` is serialized after it.

For gradient compression executed sequentially (§4.2, after the §3.1
finding that overlap loses)::

    T_obs ≈ T_comp + T_encode-decode + Σ_messages T_comm(payload, p, BW)

with ``T_comm`` being ring all-reduce for all-reducible schemes and
all-gather (linear in ``p``) otherwise.  PowerSGD pays two messages (P and
Q); Top-K pays two (values and indices); signSGD one.

These functions consume a :class:`PerfModelInputs` bundle — the calibrated
quantities the paper measures before each run (bandwidth via iperf3, α via
a tiny all-reduce, γ via Nsight, ``T_comp`` on a single machine) — so
predictions and what-ifs are driven the same way the paper drives them.
Deliberately, *no incast correction* is applied: the analytic model's
~14% underestimate of signSGD (Figure 8) comes exactly from this omission,
and reproducing that gap is part of reproducing the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..collectives import allgather_time, ring_allreduce_time
from ..compute import ComputeModel
from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme, SchemeCost, SyncSGDScheme
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..units import MIB


@dataclass(frozen=True)
class PerfModelInputs:
    """Calibrated inputs to the performance model.

    Attributes:
        world_size: Number of GPU workers ``p``.
        bandwidth_bytes_per_s: The iperf3-style pairwise-minimum ``BW``.
        alpha_s: Latency coefficient α.
        gamma: Backward stretch while communication overlaps (>= 1).
        batch_size: Per-worker batch size.
        bucket_cap_bytes: DDP bucket capacity.
    """

    world_size: int
    bandwidth_bytes_per_s: float
    alpha_s: float = 10e-6
    gamma: float = 1.10
    batch_size: Optional[int] = None
    bucket_cap_bytes: float = 25 * MIB

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ConfigurationError(
                f"world_size must be >= 1, got {self.world_size}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        if self.alpha_s < 0:
            raise ConfigurationError("alpha must be >= 0")
        if self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be >= 1, got {self.gamma}")
        if self.bucket_cap_bytes <= 0:
            raise ConfigurationError("bucket_cap_bytes must be > 0")

    def with_bandwidth(self, bandwidth_bytes_per_s: float) -> "PerfModelInputs":
        """Copy with a different bandwidth (Figure 11 sweeps)."""
        return replace(self, bandwidth_bytes_per_s=bandwidth_bytes_per_s)

    def with_world_size(self, world_size: int) -> "PerfModelInputs":
        """Copy with a different worker count (scaling sweeps)."""
        return replace(self, world_size=world_size)


@dataclass(frozen=True)
class PredictedTime:
    """A performance-model prediction, with its additive breakdown.

    ``total`` is the paper's per-iteration metric (backward + gradient
    synchronization).  The components are the model's terms, not a
    timeline: for syncSGD ``comm_exposed`` is only the communication that
    could *not* be hidden under the backward pass.
    """

    total: float
    compute: float
    encode_decode: float
    comm_exposed: float

    def __post_init__(self) -> None:
        for value, label in ((self.total, "total"), (self.compute, "compute"),
                             (self.encode_decode, "encode_decode"),
                             (self.comm_exposed, "comm_exposed")):
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {value}")


def bucket_pipeline_end(ready: np.ndarray, durations: np.ndarray,
                        start: np.ndarray) -> np.ndarray:
    """Finish time of a FIFO bucket pipeline, vectorized over iterations.

    The §4.1 model ``T_obs ≈ max(γ·T_comp, (k-1)·T_comm) + T_comm(b̂)``
    is the closed form of a simple recurrence on one communication
    stream: bucket ``k`` starts at ``max(ready_k, end_{k-1})`` and runs
    for ``durations_k``, with the stream idle until ``start``.  This
    function evaluates that recurrence exactly — in O(buckets) array
    steps over any leading batch of Monte-Carlo iterations — instead of
    the algebraic approximation, so it matches the event-driven
    simulator bit for bit (each step is the same ``max`` and ``+`` the
    event queue performs, in the same order).

    Args:
        ready: ``(..., k)`` bucket-ready times (gradient available).
        durations: ``(..., k)`` collective durations, broadcastable
            against ``ready``.
        start: ``(...)`` time the communication stream becomes free.

    Returns:
        ``(...)`` completion time of the last bucket; ``start``
        unchanged when there are no buckets.
    """
    ready = np.asarray(ready, dtype=float)
    durations = np.broadcast_to(
        np.asarray(durations, dtype=float), ready.shape)
    end = np.asarray(start, dtype=float)
    for k in range(ready.shape[-1]):
        end = np.maximum(ready[..., k], end) + durations[..., k]
    return end


def syncsgd_time(model: ModelSpec, inputs: PerfModelInputs,
                 gpu: GPUSpec = V100) -> PredictedTime:
    """§4.1 model for synchronous SGD with bucketing and overlap."""
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    t_comp = compute.backward_time(bs)
    p = inputs.world_size
    if p == 1:
        return PredictedTime(total=t_comp, compute=t_comp,
                             encode_decode=0.0, comm_exposed=0.0)

    bucket_sizes = model.bucket_sizes_bytes(inputs.bucket_cap_bytes)
    bw, alpha = inputs.bandwidth_bytes_per_s, inputs.alpha_s
    overlappable = sum(
        ring_allreduce_time(b, p, bw, alpha) for b in bucket_sizes[:-1])
    last = ring_allreduce_time(bucket_sizes[-1], p, bw, alpha)

    stretched = inputs.gamma * t_comp
    total = max(stretched, overlappable) + last
    return PredictedTime(
        total=total,
        compute=stretched,
        encode_decode=0.0,
        comm_exposed=total - stretched if total > stretched else last,
    )


def compressed_time(model: ModelSpec, scheme: Scheme,
                    inputs: PerfModelInputs, gpu: GPUSpec = V100,
                    profile: Optional[KernelProfile] = None) -> PredictedTime:
    """§4.2 model for sequential compression (the general form, with the
    per-scheme message/collective structure supplied by the scheme)."""
    if isinstance(scheme, SyncSGDScheme):
        return syncsgd_time(model, inputs, gpu)
    prof = profile if profile is not None else v100_kernel_profile()
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    t_comp = compute.backward_time(bs)
    p = inputs.world_size
    cost = scheme.cost(model, p, prof)

    if scheme.ddp_overlap:
        # Per-bucket compression inside the DDP hook: same structure as
        # the syncSGD model with bucket payloads scaled down, plus the
        # (small) cast cost on the critical path.
        if p == 1:
            return PredictedTime(total=t_comp, compute=t_comp,
                                 encode_decode=cost.encode_decode_s,
                                 comm_exposed=0.0)
        ratio = cost.wire_bytes / model.grad_bytes
        buckets = model.bucket_sizes_bytes(inputs.bucket_cap_bytes)
        bw, alpha = inputs.bandwidth_bytes_per_s, inputs.alpha_s
        overlappable = sum(
            ring_allreduce_time(b * ratio, p, bw, alpha)
            for b in buckets[:-1])
        last = ring_allreduce_time(buckets[-1] * ratio, p, bw, alpha)
        stretched = inputs.gamma * t_comp
        total = (max(stretched, overlappable) + last
                 + cost.encode_decode_s)
        return PredictedTime(
            total=total, compute=stretched,
            encode_decode=cost.encode_decode_s,
            comm_exposed=max(0.0, total - stretched
                             - cost.encode_decode_s))

    if p == 1:
        comm = 0.0
    else:
        per_message = cost.wire_bytes / cost.messages
        bw, alpha = inputs.bandwidth_bytes_per_s, inputs.alpha_s
        if cost.all_reducible:
            single = ring_allreduce_time(per_message, p, bw, alpha)
        else:
            single = allgather_time(per_message, p, bw, alpha)
        comm = single * cost.messages

    total = t_comp + cost.encode_decode_s + comm
    return PredictedTime(
        total=total,
        compute=t_comp,
        encode_decode=cost.encode_decode_s,
        comm_exposed=comm,
    )


def predict(model: ModelSpec, scheme: Scheme, inputs: PerfModelInputs,
            gpu: GPUSpec = V100,
            profile: Optional[KernelProfile] = None) -> PredictedTime:
    """Route to the right model for ``scheme`` (the public entry point)."""
    return compressed_time(model, scheme, inputs, gpu, profile)


def speedup_over_syncsgd(model: ModelSpec, scheme: Scheme,
                         inputs: PerfModelInputs, gpu: GPUSpec = V100,
                         profile: Optional[KernelProfile] = None) -> float:
    """Fractional speedup of ``scheme`` over the syncSGD baseline:
    positive when compression helps, negative when it hurts."""
    baseline = syncsgd_time(model, inputs, gpu).total
    candidate = predict(model, scheme, inputs, gpu, profile).total
    return (baseline - candidate) / baseline
