"""Simulation result cache: key semantics, round-trips, statistics."""

import json
from dataclasses import replace

import pytest

from repro.compression.schemes import PowerSGDScheme, SignSGDScheme
from repro.engine import (
    CacheStats,
    ExperimentEngine,
    SimJob,
    SimulationCache,
)
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.network import Fabric
from repro.simulator import DDPConfig, DDPSimulator


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


@pytest.fixture(scope="module")
def base_job(rn50):
    return SimJob(model=rn50, cluster=cluster_for_gpus(8),
                  scheme=PowerSGDScheme(4), batch_size=64,
                  iterations=8, warmup=2, seed=0)


class TestFingerprintSensitivity:
    """The key must change when — and only when — something that
    determines the simulation's output changes."""

    def test_stable_across_calls(self, base_job):
        assert base_job.fingerprint() == base_job.fingerprint()

    def test_equal_jobs_share_a_key(self, rn50):
        a = SimJob(model=rn50, cluster=cluster_for_gpus(8),
                   scheme=PowerSGDScheme(4), batch_size=64,
                   iterations=8, warmup=2)
        b = SimJob(model=rn50, cluster=cluster_for_gpus(8),
                   scheme=PowerSGDScheme(4), batch_size=64,
                   iterations=8, warmup=2)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("mutation", [
        dict(batch_size=32),
        dict(iterations=10),
        dict(warmup=3),
        dict(seed=1),
        dict(scheme=PowerSGDScheme(8)),
        dict(scheme=SignSGDScheme()),
        dict(scheme=None),
        dict(cluster=cluster_for_gpus(16)),
        dict(cluster=cluster_for_gpus(8, seed=5)),
        dict(config=DDPConfig(gamma=1.2)),
        dict(config=DDPConfig(bucket_cap_bytes=10 * 2**20)),
    ])
    def test_any_field_change_changes_key(self, base_job, mutation):
        assert replace(base_job, **mutation).fingerprint() \
            != base_job.fingerprint()

    def test_model_change_changes_key(self, base_job):
        other = replace(base_job, model=get_model("resnet101"))
        assert other.fingerprint() != base_job.fingerprint()

    def test_degraded_fabric_changes_key(self, base_job):
        cluster = base_job.cluster
        pristine = Fabric(cluster)
        degraded = Fabric(cluster)
        degraded.degrade_link(0, 1, 0.5)
        with_pristine = replace(base_job, fabric=pristine)
        with_degraded = replace(base_job, fabric=degraded)
        assert with_pristine.fingerprint() != with_degraded.fingerprint()
        # And an explicit default-parameter fabric still differs from
        # "no fabric given" (the simulator-built default).
        assert with_pristine.fingerprint() != base_job.fingerprint()


class TestCacheRoundTrip:
    def test_cached_result_identical_to_fresh(self, base_job, tmp_path):
        fresh = base_job.build_simulator().run(
            base_job.batch_size, iterations=base_job.iterations,
            warmup=base_job.warmup, seed=base_job.seed)
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        first = engine.run(base_job)
        cached = engine.run(base_job)
        assert first == fresh
        assert cached == fresh  # bit-identical through JSON round-trip
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_oom_outcome_cached(self, tmp_path):
        bert = get_model("bert-base")
        job = SimJob(model=bert, cluster=cluster_for_gpus(48),
                     scheme=SignSGDScheme(), batch_size=12,
                     iterations=5, warmup=1)
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        with pytest.raises(OutOfMemoryError):
            engine.run(job)
        executed_after_first = engine.executed
        with pytest.raises(OutOfMemoryError) as exc_info:
            engine.run(job)
        assert engine.executed == executed_after_first  # served from disk
        assert exc_info.value.required_bytes > 0

    def test_corrupt_entry_is_a_miss(self, base_job, tmp_path):
        cache = SimulationCache(str(tmp_path))
        engine = ExperimentEngine(cache=cache)
        key = base_job.fingerprint()
        with open(cache.path_for(key), "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert engine.run(base_job) is not None  # recomputed, re-stored
        assert cache.stats.quarantined == 1
        # The re-store lands in the pack tier: a fresh cache instance
        # over the same directory serves the key without re-simulating.
        reopened = SimulationCache(str(tmp_path))
        assert key in reopened
        assert reopened.get(key) is not None

    def test_len_and_contains(self, base_job, tmp_path):
        cache = SimulationCache(str(tmp_path))
        key = base_job.fingerprint()
        assert key not in cache
        assert len(cache) == 0
        ExperimentEngine(cache=cache).run(base_job)
        assert key in cache
        assert len(cache) == 1

    def test_empty_directory_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationCache("")


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=9, misses=1)
        assert stats.hit_rate == pytest.approx(0.9)
        assert CacheStats().hit_rate == 0.0

    def test_since_snapshot(self):
        stats = CacheStats(hits=5, misses=3, stores=3)
        snap = stats.snapshot()
        stats.hits += 2
        stats.misses += 1
        delta = stats.since(snap)
        assert (delta.hits, delta.misses, delta.stores) == (2, 1, 0)

    def test_describe_mentions_counts(self):
        text = CacheStats(hits=3, misses=1).describe()
        assert "3 hits" in text and "1 misses" in text


class TestMinBandwidthCacheInvalidation:
    """The engine leans on Fabric.min_bandwidth() being memoized; the
    memo must drop whenever the matrix is degraded."""

    def test_degrade_link_invalidates(self):
        fabric = Fabric(cluster_for_gpus(16))
        before = fabric.min_bandwidth()
        fabric.degrade_link(0, 1, 0.5)
        after = fabric.min_bandwidth()
        assert after == pytest.approx(
            fabric.pair_bandwidth(0, 1), rel=1e-12)
        assert after < before

    def test_degrade_node_invalidates(self):
        fabric = Fabric(cluster_for_gpus(16))
        before = fabric.min_bandwidth()
        fabric.degrade_node(2, 0.25)
        assert fabric.min_bandwidth() == pytest.approx(0.25 * before,
                                                       rel=0.05)

    def test_memoized_value_consistent_with_scan(self):
        import numpy as np
        fabric = Fabric(cluster_for_gpus(24))
        n = fabric.cluster.num_nodes
        scan = float(fabric._pair_bw[~np.eye(n, dtype=bool)].min())
        assert fabric.min_bandwidth() == scan
        assert fabric.min_bandwidth() == scan  # second read from memo

    def test_simulator_sees_degradation(self, rn50):
        cluster = cluster_for_gpus(8)
        fabric = Fabric(cluster)
        sim = DDPSimulator(rn50, cluster, fabric=fabric)
        healthy = sim.run(64, iterations=6, warmup=1).mean
        fabric.degrade_link(0, 1, 0.1)
        limping = DDPSimulator(rn50, cluster, fabric=fabric).run(
            64, iterations=6, warmup=1).mean
        assert limping > healthy
