"""Analytic cost models for communication collectives.

All functions price a collective over ``p`` workers exchanging ``n`` bytes
(per worker) at ``bandwidth`` bytes/s with per-message latency ``alpha``,
using the α+βn model of the paper (§2.2, §4).  They return seconds.

Two families matter for the paper's argument:

* **all-reduce** (ring, double-tree): bandwidth cost ``2n(p-1)/(p*BW)`` —
  essentially constant in ``p``.  Only associative aggregations can use
  it.
* **all-gather**: bandwidth cost ``n(p-1)/BW`` — *linear* in ``p``.  This
  is what non-all-reducible compressors (signSGD, Top-K) are stuck with,
  and why they stop scaling (§3.2).

An optional ``incast_factor`` multiplies the bandwidth term of fan-in
collectives; the simulator passes the fabric's estimate, while the
analytic performance model keeps the default 1.0 (the paper's model does
not include incast either — that omission is its documented source of
signSGD error in Figure 8).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.metrics import get_registry

#: Block size double-tree all-reduce splits messages into; the per-block
#: pipeline fill cost is what makes tree reduce slower at small scale [2].
TREE_BLOCK_BYTES = 512 * 1024


def _record(algorithm: str, num_bytes: float, p: int,
            incast_factor: float = 1.0) -> None:
    """Count one collective pricing call (no-op when telemetry is off;
    the enabled check keeps the disabled hot path to one attribute
    load)."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter("collective_calls_total", algorithm=algorithm).inc()
    registry.counter("collective_bytes_total",
                     algorithm=algorithm).inc(num_bytes)
    if incast_factor > 1.0 and p > 1:
        registry.counter("collective_incast_degraded_total",
                         algorithm=algorithm).inc()


def _validate(num_bytes: float, p: int, bandwidth: float, alpha: float) -> None:
    if num_bytes < 0:
        raise ConfigurationError(f"num_bytes must be >= 0, got {num_bytes}")
    if p < 1:
        raise ConfigurationError(f"world size must be >= 1, got {p}")
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth}")
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha}")


def ring_allreduce_time(num_bytes: float, p: int, bandwidth: float,
                        alpha: float) -> float:
    """Ring all-reduce: ``2α(p-1) + 2n(p-1)/(p·BW)``.

    Reduce-scatter then all-gather, each ``p-1`` pipelined steps moving
    ``n/p`` bytes.  This is Equation (1) of the paper (their α absorbs
    the step constant).
    """
    _validate(num_bytes, p, bandwidth, alpha)
    _record("ring_allreduce", num_bytes, p)
    if p == 1:
        return 0.0
    latency = 2.0 * alpha * (p - 1)
    transfer = 2.0 * num_bytes * (p - 1) / (p * bandwidth)
    return latency + transfer


def double_tree_allreduce_time(num_bytes: float, p: int, bandwidth: float,
                               alpha: float,
                               block_bytes: float = TREE_BLOCK_BYTES) -> float:
    """Double-binary-tree all-reduce [50]: ``2α·log2(p)`` latency, the
    same ``2n(p-1)/(p·BW)`` bandwidth, plus a pipeline-fill penalty of one
    block per tree level (the "high overhead at small scale" NCCL
    documents).
    """
    _validate(num_bytes, p, bandwidth, alpha)
    if block_bytes <= 0:
        raise ConfigurationError(f"block_bytes must be > 0, got {block_bytes}")
    _record("double_tree_allreduce", num_bytes, p)
    if p == 1:
        return 0.0
    levels = math.ceil(math.log2(p))
    latency = 2.0 * alpha * levels
    transfer = 2.0 * num_bytes * (p - 1) / (p * bandwidth)
    pipeline_fill = levels * min(block_bytes, num_bytes) / bandwidth
    return latency + transfer + pipeline_fill


def allgather_time(num_bytes: float, p: int, bandwidth: float, alpha: float,
                   incast_factor: float = 1.0) -> float:
    """Ring all-gather of ``n`` bytes per worker: every worker ends up
    receiving ``n(p-1)`` bytes — **linear in p** (the paper's §4.2 model
    for Top-K and signSGD)."""
    _validate(num_bytes, p, bandwidth, alpha)
    if incast_factor < 1.0:
        raise ConfigurationError(
            f"incast_factor must be >= 1, got {incast_factor}")
    _record("allgather", num_bytes, p, incast_factor)
    if p == 1:
        return 0.0
    latency = alpha * (p - 1)
    transfer = num_bytes * (p - 1) / bandwidth * incast_factor
    return latency + transfer


def ring_allreduce_time_batch(num_bytes: np.ndarray, p: int,
                              bandwidth, alpha: float) -> np.ndarray:
    """Vectorized :func:`ring_allreduce_time` over an array of payloads.

    Prices every element of ``num_bytes`` in one broadcasted expression
    instead of one Python call per payload — the pricing kernel of the
    batch simulation fast path (:mod:`repro.simulator.batch`), which
    needs all of a model's gradient buckets costed at once.

    ``bandwidth`` may itself be an array (broadcast against the
    payloads): the faulted fast path prices per-iteration *degraded*
    bandwidths — link and NIC faults scale the fabric's minimum — in
    the same call.

    The arithmetic is the scalar function's, applied elementwise (every
    IEEE-754 elementary operation is exactly rounded, so a batched
    multiply/divide produces bit-identical doubles to the scalar path);
    equivalence is pinned by tests.  Telemetry counts one pricing call
    per element, matching what the scalar loop would have recorded.
    """
    payloads = np.asarray(num_bytes, dtype=float)
    bw = np.asarray(bandwidth, dtype=float)
    if payloads.size and float(payloads.min()) < 0:
        raise ConfigurationError(
            f"num_bytes must be >= 0, got {float(payloads.min())}")
    if bw.size and float(bw.min()) <= 0:
        raise ConfigurationError(
            f"bandwidth must be > 0, got {float(bw.min())}")
    _validate(0.0, p, float(bw.max()) if bw.size else 1.0, alpha)
    _record_batch("ring_allreduce", payloads, p)
    if p == 1:
        return np.zeros(np.broadcast_shapes(payloads.shape, bw.shape))
    latency = 2.0 * alpha * (p - 1)
    transfer = 2.0 * payloads * (p - 1) / (p * bw)
    return latency + transfer


def allgather_time_batch(num_bytes: np.ndarray, p: int, bandwidth,
                         alpha: float,
                         incast_factor=1.0) -> np.ndarray:
    """Vectorized :func:`allgather_time` over an array of payloads.

    Same contract as :func:`ring_allreduce_time_batch`: elementwise the
    scalar formula, bit-identical per payload, one telemetry count per
    element.  ``bandwidth`` and ``incast_factor`` may be arrays
    (broadcast against the payloads) for per-iteration degraded
    fabrics.
    """
    payloads = np.asarray(num_bytes, dtype=float)
    bw = np.asarray(bandwidth, dtype=float)
    incast = np.asarray(incast_factor, dtype=float)
    if payloads.size and float(payloads.min()) < 0:
        raise ConfigurationError(
            f"num_bytes must be >= 0, got {float(payloads.min())}")
    if bw.size and float(bw.min()) <= 0:
        raise ConfigurationError(
            f"bandwidth must be > 0, got {float(bw.min())}")
    _validate(0.0, p, float(bw.max()) if bw.size else 1.0, alpha)
    if incast.size and float(incast.min()) < 1.0:
        raise ConfigurationError(
            f"incast_factor must be >= 1, got {float(incast.min())}")
    _record_batch("allgather", payloads, p,
                  float(incast.max()) if incast.size else 1.0)
    if p == 1:
        return np.zeros(np.broadcast_shapes(
            payloads.shape, bw.shape, incast.shape))
    latency = alpha * (p - 1)
    transfer = payloads * (p - 1) / bw * incast
    return latency + transfer


def ring_allreduce_time_grid(num_bytes, p, bandwidth,
                             alpha) -> np.ndarray:
    """N-D broadcasting :func:`ring_allreduce_time`.

    Unlike :func:`ring_allreduce_time_batch` (array payloads, scalar
    world size and bandwidth), every argument here may be an array, and
    they broadcast against each other — the pricing kernel of the
    grid-vectorized what-if engine (:mod:`repro.core.grid`), which
    sweeps payload x world size x bandwidth in one call.

    Elementwise the arithmetic is the scalar function's (IEEE-754
    elementary operations are exactly rounded, so each grid cell is
    bit-identical to the scalar call with the same operands); world
    sizes of 1 price to exactly 0.0, like the scalar early return.
    Telemetry counts one pricing call per grid cell.
    """
    payloads = np.asarray(num_bytes, dtype=float)
    p_arr = np.asarray(p)
    bw = np.asarray(bandwidth, dtype=float)
    alpha_arr = np.asarray(alpha, dtype=float)
    _validate_grid(payloads, p_arr, bw, alpha_arr)
    _record_grid("ring_allreduce", payloads, p_arr, bw, alpha_arr)
    latency = 2.0 * alpha_arr * (p_arr - 1)
    transfer = 2.0 * payloads * (p_arr - 1) / (p_arr * bw)
    return np.where(p_arr == 1, 0.0, latency + transfer)


def allgather_time_grid(num_bytes, p, bandwidth, alpha,
                        incast_factor: float = 1.0) -> np.ndarray:
    """N-D broadcasting :func:`allgather_time` (same contract as
    :func:`ring_allreduce_time_grid`: every argument may be an array,
    cells are bit-identical to the scalar formula, p == 1 prices to
    0.0)."""
    payloads = np.asarray(num_bytes, dtype=float)
    p_arr = np.asarray(p)
    bw = np.asarray(bandwidth, dtype=float)
    alpha_arr = np.asarray(alpha, dtype=float)
    _validate_grid(payloads, p_arr, bw, alpha_arr)
    if incast_factor < 1.0:
        raise ConfigurationError(
            f"incast_factor must be >= 1, got {incast_factor}")
    _record_grid("allgather", payloads, p_arr, bw, alpha_arr,
                 incast_factor)
    latency = alpha_arr * (p_arr - 1)
    transfer = payloads * (p_arr - 1) / bw * incast_factor
    return np.where(p_arr == 1, 0.0, latency + transfer)


def _validate_grid(payloads: np.ndarray, p_arr: np.ndarray,
                   bw: np.ndarray, alpha_arr: np.ndarray) -> None:
    """Array-aware form of :func:`_validate` (reports the worst value)."""
    if payloads.size and float(payloads.min()) < 0:
        raise ConfigurationError(
            f"num_bytes must be >= 0, got {float(payloads.min())}")
    if p_arr.size and int(p_arr.min()) < 1:
        raise ConfigurationError(
            f"world size must be >= 1, got {int(p_arr.min())}")
    if bw.size and float(bw.min()) <= 0:
        raise ConfigurationError(
            f"bandwidth must be > 0, got {float(bw.min())}")
    if alpha_arr.size and float(alpha_arr.min()) < 0:
        raise ConfigurationError(
            f"alpha must be >= 0, got {float(alpha_arr.min())}")


def _record_grid(algorithm: str, payloads: np.ndarray, p_arr: np.ndarray,
                 bw: np.ndarray, alpha_arr: np.ndarray,
                 incast_factor: float = 1.0) -> None:
    """Telemetry for one grid pricing call: advance the counters by what
    the equivalent nest of scalar calls would have recorded."""
    registry = get_registry()
    if not registry.enabled:
        return
    shape = np.broadcast_shapes(payloads.shape, p_arr.shape, bw.shape,
                                alpha_arr.shape)
    cells = int(np.prod(shape))
    if cells == 0:
        return
    registry.counter("collective_calls_total",
                     algorithm=algorithm).inc(cells)
    registry.counter("collective_bytes_total", algorithm=algorithm).inc(
        float(np.broadcast_to(payloads, shape).sum()))
    if incast_factor > 1.0:
        degraded = int((np.broadcast_to(p_arr, shape) > 1).sum())
        if degraded:
            registry.counter("collective_incast_degraded_total",
                             algorithm=algorithm).inc(degraded)


def _record_batch(algorithm: str, payloads: np.ndarray, p: int,
                  incast_factor: float = 1.0) -> None:
    """Telemetry for one batched pricing call: the counters advance by
    exactly what the equivalent scalar loop would have recorded."""
    registry = get_registry()
    if not registry.enabled or payloads.size == 0:
        return
    registry.counter("collective_calls_total",
                     algorithm=algorithm).inc(payloads.size)
    registry.counter("collective_bytes_total",
                     algorithm=algorithm).inc(float(payloads.sum()))
    if incast_factor > 1.0 and p > 1:
        registry.counter("collective_incast_degraded_total",
                         algorithm=algorithm).inc(payloads.size)


def reduce_scatter_time(num_bytes: float, p: int, bandwidth: float,
                        alpha: float) -> float:
    """Ring reduce-scatter: half of a ring all-reduce."""
    _validate(num_bytes, p, bandwidth, alpha)
    _record("reduce_scatter", num_bytes, p)
    if p == 1:
        return 0.0
    return alpha * (p - 1) + num_bytes * (p - 1) / (p * bandwidth)


def broadcast_time(num_bytes: float, p: int, bandwidth: float,
                   alpha: float) -> float:
    """Binomial-tree broadcast: ``log2(p)`` rounds of the full payload."""
    _validate(num_bytes, p, bandwidth, alpha)
    _record("broadcast", num_bytes, p)
    if p == 1:
        return 0.0
    levels = math.ceil(math.log2(p))
    return levels * (alpha + num_bytes / bandwidth)


def parameter_server_time(num_bytes: float, p: int, bandwidth: float,
                          alpha: float, incast_factor: float = 1.0) -> float:
    """Central parameter server: the server ingests ``n`` bytes from each
    of ``p-1`` workers through one NIC, then broadcasts back — the
    topology all-reduce displaced (§2.2)."""
    _validate(num_bytes, p, bandwidth, alpha)
    if incast_factor < 1.0:
        raise ConfigurationError(
            f"incast_factor must be >= 1, got {incast_factor}")
    _record("parameter_server", num_bytes, p, incast_factor)
    if p == 1:
        return 0.0
    gather = alpha + num_bytes * (p - 1) / bandwidth * incast_factor
    scatter = alpha + num_bytes * (p - 1) / bandwidth
    return gather + scatter


def pick_allreduce_time(num_bytes: float, p: int, bandwidth: float,
                        alpha: float) -> float:
    """NCCL-style dynamic algorithm choice: the faster of ring and
    double-tree for this size/scale (the behaviour the paper disables
    with ``NCCL_TREE_THRESHOLD=0``; experiments use the ring model)."""
    return min(ring_allreduce_time(num_bytes, p, bandwidth, alpha),
               double_tree_allreduce_time(num_bytes, p, bandwidth, alpha))
