"""FLOP accounting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    attention_flops,
    conv2d_flops,
    linear_flops,
    norm_flops,
    pool_flops,
)


class TestConv2dFlops:
    def test_known_value(self):
        # 3x3 conv, 64->64 channels, 56x56 output:
        # 2 * 9 * 64 * 64 * 56 * 56
        assert conv2d_flops(64, 64, 3, 56, 56) == pytest.approx(
            2 * 9 * 64 * 64 * 56 * 56)

    def test_grouped_conv_divides_input_channels(self):
        full = conv2d_flops(64, 64, 3, 8, 8)
        grouped = conv2d_flops(64, 64, 3, 8, 8, groups=4)
        assert grouped == pytest.approx(full / 4)

    def test_groups_must_divide_channels(self):
        with pytest.raises(ConfigurationError):
            conv2d_flops(10, 10, 3, 4, 4, groups=3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            conv2d_flops(0, 64, 3, 8, 8)
        with pytest.raises(ConfigurationError):
            conv2d_flops(64, 64, 3, 0, 8)


class TestLinearFlops:
    def test_known_value(self):
        assert linear_flops(2048, 1000) == pytest.approx(2 * 2048 * 1000)

    def test_tokens_multiply(self):
        assert linear_flops(768, 768, tokens=128) == pytest.approx(
            128 * linear_flops(768, 768))

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            linear_flops(0, 10)


class TestAttentionFlops:
    def test_quadratic_in_sequence(self):
        short = attention_flops(128, 768, 12)
        long = attention_flops(256, 768, 12)
        assert long == pytest.approx(4 * short)

    def test_heads_do_not_change_total(self):
        assert attention_flops(128, 768, 12) == attention_flops(128, 768, 4)

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ConfigurationError):
            attention_flops(128, 700, 12)


class TestNormAndPool:
    def test_norm_scales_with_positions(self):
        assert norm_flops(64, 100) == pytest.approx(100 * norm_flops(64, 1))

    def test_pool_counts_window(self):
        assert pool_flops(64, 8, 8, 3) == pytest.approx(64 * 8 * 8 * 9)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            norm_flops(0)
        with pytest.raises(ConfigurationError):
            pool_flops(8, 8, 8, 0)
