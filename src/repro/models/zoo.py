"""Model registry.

Central lookup used by experiments, examples and the CLI-ish helpers so a
model can be named by string (``"resnet50"``) everywhere.  Builders are
lazy: a spec is constructed on first request and cached, since specs are
immutable.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .layers import ModelSpec
from .resnet import resnet50, resnet101, resnet152
from .transformer import bert_base, bert_large, gpt2_small
from .vgg import vgg16

_BUILDERS: Dict[str, Callable[[], ModelSpec]] = {
    "resnet50": resnet50,
    "resnet101": resnet101,
    "resnet152": resnet152,
    "bert-base": bert_base,
    "bert-large": bert_large,
    "gpt2-small": gpt2_small,
    "vgg16": vgg16,
}

_CACHE: Dict[str, ModelSpec] = {}

#: The three models the paper's evaluation section uses throughout.
PAPER_MODELS = ("resnet50", "resnet101", "bert-base")


def get_model(name: str) -> ModelSpec:
    """Return the spec registered under ``name``.

    Raises:
        ConfigurationError: for unknown names, listing what is available.
    """
    if name not in _BUILDERS:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {available_models()}")
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def available_models() -> List[str]:
    """Sorted names of all registered models."""
    return sorted(_BUILDERS)


def register_model(name: str, builder: Callable[[], ModelSpec],
                   overwrite: bool = False) -> None:
    """Register a custom model builder under ``name``.

    Args:
        name: Registry key.
        builder: Zero-argument callable returning a :class:`ModelSpec`.
        overwrite: Allow replacing an existing entry.

    Raises:
        ConfigurationError: if the name is taken and ``overwrite`` is
            False.
    """
    if name in _BUILDERS and not overwrite:
        raise ConfigurationError(
            f"model {name!r} already registered; pass overwrite=True to "
            f"replace it")
    _BUILDERS[name] = builder
    _CACHE.pop(name, None)
