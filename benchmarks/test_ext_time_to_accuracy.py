"""Extension: end-to-end wall-clock-to-accuracy (DESIGN.md §5b).

Combines the two substrates on one consistent workload: the training
substrate supplies steps-to-target per method, the performance model
prices each iteration of the same MLP architecture.  Asserts the
paper-synthesis shape: compression wins wall-clock on slow networks,
dense wins on datacenter networks, and signSGD's statistical plateau
erases its per-iteration advantage entirely.
"""

import math

from repro.experiments.ext_time_to_accuracy import run_ext_tta


def test_ext_time_to_accuracy(run_once, show):
    result = run_once(run_ext_tta)
    show(result, "{:.3f}")

    def wallclock(method, gbps):
        return result.single(method=method,
                             bandwidth_gbps=gbps)["wallclock_to_target_s"]

    # On the slow network, PowerSGD beats dense to the target...
    assert wallclock("powersgd", 1.0) < wallclock("syncsgd", 1.0)
    # ...on the datacenter network, dense wins.
    assert wallclock("syncsgd", 10.0) < wallclock("powersgd", 10.0)

    # fp16 is never far from the best feasible option (finding 1).
    for gbps in (1.0, 10.0):
        finite = [wallclock(m, gbps)
                  for m in ("syncsgd", "fp16", "powersgd", "topk")
                  if math.isfinite(wallclock(m, gbps))]
        assert wallclock("fp16", gbps) < 2.5 * min(finite)

    # signSGD touches the target transiently and then diverges (its
    # fixed-magnitude updates oscillate near optima): cheapest
    # iterations, infinite sustained time-to-accuracy — the caveat the
    # paper's timing analysis sets aside.
    assert math.isinf(wallclock("signsgd", 1.0))
    sign_iter = result.single(method="signsgd",
                              bandwidth_gbps=10.0)["iteration_ms"]
    sync_iter = result.single(method="syncsgd",
                              bandwidth_gbps=1.0)["iteration_ms"]
    assert sign_iter < sync_iter

    # Every method that converges reaches full accuracy on this problem.
    for row in result.rows:
        if math.isfinite(row["wallclock_to_target_s"]):
            assert row["final_accuracy"] > 0.95
