"""Gradient compression: codecs, distributed aggregators, cost schemes."""

from .base import AggregationResult, Aggregator, Compressor, Payload
from .error_feedback import ErrorFeedback
from .hybrid import HybridPowerSGDScheme
from .identity import FP16Compressor, FP32Compressor
from .kernel_cost import (
    TABLE2_POWERSGD_MS,
    TABLE2_SIGNSGD_MS,
    TABLE2_TOPK_MS,
    TABLE2_WORLD_SIZE,
    KernelProfile,
    calibrate_v100_profile,
    v100_kernel_profile,
)
from .lowrank import (
    ATOMOCompressor,
    GatherDecodeAggregator,
    GradiVeqCompressor,
    PowerSGDAggregator,
    PowerSGDCompressor,
    orthonormalize,
)
from .natural import EFSignCompressor, NaturalCompressor
from .quantization import OneBitCompressor, QSGDCompressor, TernGradCompressor
from .registry import (
    available_methods,
    available_schemes,
    make_aggregator,
    make_compressor,
    make_scheme,
    scheme_from_spec,
)
from .schemes import (
    ATOMOScheme,
    DGCScheme,
    EFSignScheme,
    FP16Scheme,
    GradiVeqScheme,
    NaturalScheme,
    OneBitScheme,
    PowerSGDScheme,
    QSGDScheme,
    RandomKScheme,
    Scheme,
    SchemeCost,
    SignSGDScheme,
    SyncSGDScheme,
    TernGradScheme,
    TopKScheme,
    table1_schemes,
)
from .signsgd import MajorityVoteAggregator, SignSGDCompressor, majority_vote
from .sparsification import (
    DGCCompressor,
    MeanAllReduceAggregator,
    RandomKCompressor,
    SparseGatherAggregator,
    TopKCompressor,
)

__all__ = [
    "Compressor", "Payload", "Aggregator", "AggregationResult",
    "ErrorFeedback",
    "FP32Compressor", "FP16Compressor",
    "SignSGDCompressor", "MajorityVoteAggregator", "majority_vote",
    "TopKCompressor", "RandomKCompressor", "DGCCompressor",
    "SparseGatherAggregator", "MeanAllReduceAggregator",
    "QSGDCompressor", "TernGradCompressor", "OneBitCompressor",
    "PowerSGDCompressor", "PowerSGDAggregator", "ATOMOCompressor",
    "GradiVeqCompressor", "GatherDecodeAggregator", "orthonormalize",
    "KernelProfile", "calibrate_v100_profile", "v100_kernel_profile",
    "TABLE2_POWERSGD_MS", "TABLE2_TOPK_MS", "TABLE2_SIGNSGD_MS",
    "TABLE2_WORLD_SIZE",
    "Scheme", "SchemeCost", "SyncSGDScheme", "FP16Scheme", "PowerSGDScheme",
    "TopKScheme", "SignSGDScheme", "QSGDScheme", "TernGradScheme",
    "OneBitScheme", "ATOMOScheme", "RandomKScheme", "DGCScheme",
    "GradiVeqScheme", "NaturalScheme", "EFSignScheme", "table1_schemes",
    "HybridPowerSGDScheme",
    "NaturalCompressor", "EFSignCompressor",
    "make_compressor", "make_scheme", "make_aggregator", "available_methods",
    "available_schemes", "scheme_from_spec",
]
