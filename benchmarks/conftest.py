"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures at full
fidelity (the paper's GPU sweep and its 110-iterations-drop-10 protocol),
times the regeneration with pytest-benchmark, prints the rows, and asserts
the paper's *shape* claims — orderings, crossovers, scaling slopes — not
absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_collection_modifyitems(items):
    """Stamp everything under benchmarks/ with the ``bench`` marker so
    ``-m "not bench"`` deselects the suite no matter how it was
    collected."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture
def run_once(benchmark):
    """Time a callable with a single round (experiments are deterministic
    and expensive; statistical repetition adds nothing)."""
    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return _run


@pytest.fixture
def show():
    """Print an ExperimentResult table so bench logs double as the
    paper-facing output."""
    def _show(result, float_format="{:.1f}"):
        print()
        print(result.render_table(float_format))
        return result
    return _show
