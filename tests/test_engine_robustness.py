"""Engine survival of its own failures: crashes, timeouts, bad cache.

The chaos hooks (``REPRO_CHAOS_*``) make a *real* pool worker die or
hang exactly once, which is the only honest way to test the recovery
path — monkeypatching the executor never exercises
``BrokenProcessPool``.
"""

import time

import pytest

from repro.engine import ExperimentEngine, SimJob, SimulationCache
from repro.engine import engine as engine_module
from repro.engine.engine import CHAOS_KILL_ENV, CHAOS_SLEEP_ENV
from repro.errors import ConfigurationError, EngineError
from repro.hardware import cluster_for_gpus


@pytest.fixture
def small_jobs(tiny_model):
    return [
        SimJob(model=tiny_model, cluster=cluster_for_gpus(4),
               batch_size=4, iterations=6, warmup=1, seed=seed)
        for seed in range(4)
    ]


class TestPolicyValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ExperimentEngine(retry_backoff_s=-0.1)
        with pytest.raises(ConfigurationError):
            ExperimentEngine(job_timeout_s=0)


class TestSerialRetry:
    # chunking=False keeps these jobs (which differ only by seed, so
    # they would otherwise batch as one kernel family) on the per-job
    # serial path whose retry loop is under test.
    def test_transient_failure_is_retried(self, small_jobs, monkeypatch):
        calls = {"n": 0}
        real = engine_module._execute_job

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient blip")
            return real(job)

        monkeypatch.setattr(engine_module, "_execute_job", flaky)
        engine = ExperimentEngine(max_retries=2, retry_backoff_s=0.0,
                                  chunking=False)
        outcomes = engine.run_outcomes(small_jobs[:2])
        assert all(o.ok for o in outcomes)
        assert outcomes[0].attempts == 2
        assert outcomes[1].attempts == 1
        assert engine.stats().retries == 1
        assert engine.stats().failures == 0

    def test_permanent_failure_degrades_not_raises(self, small_jobs,
                                                   monkeypatch):
        def doomed(job):
            raise RuntimeError("the disk is on fire")

        monkeypatch.setattr(engine_module, "_execute_job", doomed)
        engine = ExperimentEngine(max_retries=1, retry_backoff_s=0.0,
                                  chunking=False)
        outcomes = engine.run_outcomes(small_jobs[:3])
        assert all(o.failed for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert "the disk is on fire" in outcomes[0].error
        stats = engine.stats()
        assert stats.failures == 3
        assert stats.retries == 3
        with pytest.raises(EngineError, match="after 2 attempt"):
            outcomes[0].unwrap()
        assert ", 3 retried, 3 failed" in stats.describe()

    def test_zero_retries_fails_immediately(self, small_jobs, monkeypatch):
        monkeypatch.setattr(
            engine_module, "_execute_job",
            lambda job: (_ for _ in ()).throw(RuntimeError("boom")))
        engine = ExperimentEngine(max_retries=0)
        outcomes = engine.run_outcomes(small_jobs[:1])
        assert outcomes[0].failed and outcomes[0].attempts == 1
        assert engine.stats().retries == 0

    def test_family_failure_is_retried_wholesale(self, small_jobs,
                                                 monkeypatch):
        # Jobs differing only by seed batch into one kernel family;
        # an unexpected failure there retries the whole family.
        import repro.simulator.batch as batch_module
        calls = {"n": 0}
        real = batch_module.run_batch_many

        def flaky(sims, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient kernel blip")
            return real(sims, *args, **kwargs)

        monkeypatch.setattr(batch_module, "run_batch_many", flaky)
        engine = ExperimentEngine(max_retries=2, retry_backoff_s=0.0)
        outcomes = engine.run_outcomes(small_jobs)
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert engine.stats().retries == 1
        assert engine.stats().failures == 0
        assert engine.jobs_batched == len(small_jobs)

    def test_failures_are_never_cached(self, small_jobs, monkeypatch,
                                       tmp_path):
        monkeypatch.setattr(
            engine_module, "_execute_job",
            lambda job: (_ for _ in ()).throw(RuntimeError("boom")))
        cache = SimulationCache(tmp_path)
        engine = ExperimentEngine(cache=cache, max_retries=0)
        engine.run_outcomes(small_jobs[:1])
        assert cache.stats.stores == 0
        # A later, healthy engine re-executes and succeeds.
        monkeypatch.undo()
        healthy = ExperimentEngine(cache=cache)
        assert healthy.run_outcomes(small_jobs[:1])[0].ok


class TestChaosKill:
    def test_sweep_survives_a_dying_worker(self, small_jobs, tmp_path,
                                           monkeypatch):
        serial = ExperimentEngine().run_outcomes(small_jobs)
        monkeypatch.setenv(CHAOS_KILL_ENV, str(tmp_path / "kill.sentinel"))
        engine = ExperimentEngine(jobs=2, retry_backoff_s=0.0)
        outcomes = engine.run_outcomes(small_jobs)
        assert all(o.ok for o in outcomes)
        stats = engine.stats()
        assert stats.retries >= 1
        assert stats.failures == 0
        # The recovered sweep is numerically identical to serial.
        for s, p in zip(serial, outcomes):
            assert s.unwrap().sync_times == p.unwrap().sync_times
        # At least one job needed more than one attempt.
        assert max(o.attempts for o in outcomes) >= 2

    def test_kill_with_no_retry_budget_degrades(self, small_jobs,
                                                tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, str(tmp_path / "kill.sentinel"))
        engine = ExperimentEngine(jobs=2, max_retries=0,
                                  retry_backoff_s=0.0)
        outcomes = engine.run_outcomes(small_jobs)
        failed = [o for o in outcomes if o.failed]
        assert failed  # the killed worker's jobs gave up
        assert any("worker died" in o.error for o in failed)
        assert engine.stats().failures == len(failed)
        # Every outcome is accounted for: ok or failed, never missing.
        assert all(o.ok or o.failed for o in outcomes)


class TestTimeout:
    def test_hung_job_is_timed_out(self, small_jobs, tmp_path,
                                   monkeypatch):
        monkeypatch.setenv(
            CHAOS_SLEEP_ENV, f"{tmp_path / 'sleep.sentinel'}:30")
        engine = ExperimentEngine(jobs=2, max_retries=0,
                                  job_timeout_s=1.5,
                                  retry_backoff_s=0.0)
        start = time.perf_counter()
        outcomes = engine.run_outcomes(small_jobs)
        wall = time.perf_counter() - start
        assert wall < 15, "timeout did not fire; waited on the sleeper"
        stats = engine.stats()
        assert stats.timeouts == 1
        assert stats.failures == 1
        timed_out = [o for o in outcomes if o.failed]
        assert len(timed_out) == 1
        assert "timed out after 1.5 s" in timed_out[0].error
        assert sum(o.ok for o in outcomes) == len(small_jobs) - 1

    def test_hung_job_retried_when_budget_allows(self, small_jobs,
                                                 tmp_path, monkeypatch):
        # The sentinel claims once: the retry execution runs clean.
        monkeypatch.setenv(
            CHAOS_SLEEP_ENV, f"{tmp_path / 'sleep.sentinel'}:30")
        engine = ExperimentEngine(jobs=2, max_retries=1,
                                  job_timeout_s=1.5,
                                  retry_backoff_s=0.0)
        outcomes = engine.run_outcomes(small_jobs)
        assert all(o.ok for o in outcomes)
        stats = engine.stats()
        assert stats.timeouts == 1
        assert stats.retries >= 1
        assert stats.failures == 0


class TestCacheQuarantine:
    def _store_one(self, cache, job):
        engine = ExperimentEngine(cache=cache)
        engine.run_outcomes([job])
        return job.fingerprint()

    def test_corrupt_entry_quarantined_and_reexecuted(self, tiny_model,
                                                      tmp_path):
        cache = SimulationCache(tmp_path)
        job = SimJob(model=tiny_model, cluster=cluster_for_gpus(4),
                     batch_size=4, iterations=6, warmup=1)
        key = self._store_one(cache, job)
        cache.close()
        # Strip the pack tier so the directory looks like a legacy-era
        # cache whose only copy of the entry is the corrupt per-key file.
        for pack_file in tmp_path.glob("pack-*"):
            pack_file.unlink()
        entry = tmp_path / f"{key}.json"
        entry.write_text("{ truncated garbag")

        fresh = SimulationCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.quarantined == 1
        assert not entry.exists()
        assert (tmp_path / "quarantine" / f"{key}.json").exists()
        assert "1 quarantined" in fresh.stats.describe()
        # The engine treats it as a miss and repopulates.
        engine = ExperimentEngine(cache=fresh)
        assert engine.run_outcomes([job])[0].ok
        assert fresh.get(key) is not None

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = SimulationCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.stats.quarantined == 0
        assert not (tmp_path / "quarantine").exists()

    def test_healthy_describe_unchanged(self, tmp_path):
        cache = SimulationCache(tmp_path)
        cache.get("0" * 64)
        assert "quarantined" not in cache.stats.describe()
