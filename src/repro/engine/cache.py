"""Content-addressed, tiered cache of simulation results.

Three tiers answer a lookup, cheapest first:

* **hot** — a sharded in-process LRU of payloads
  (:class:`~repro.engine.memcache.MemoryCache`), enabled by a byte
  budget (``--cache-mem-mb``).  Write-through: every disk hit and every
  store lands here, so repeat traffic in a long-lived process (the
  serving scheduler) never touches the filesystem again.
* **pack** — append-only ``pack-*.jsonl`` segments plus an offset
  index (:class:`~repro.engine.pack.PackStore`).  Batched stores go
  here: one segment append and one fsync per engine batch instead of
  one file per key.
* **legacy** — the original one-JSON-file-per-key layout.  Still
  written by single-key :meth:`SimulationCache.put`, still read (and
  compactable into packs via ``repro cache compact``) so existing
  cache directories keep serving without re-simulation.

Every tier stores the same JSON payload and every hit rehydrates
through the same converters, so a hot hit, a pack hit, and a legacy
hit return byte-identical outcomes.  An entry stores either a full
:class:`~repro.simulator.TimingResult`, the
:class:`~repro.errors.OutOfMemoryError` the simulation
deterministically raises, or a closed-form
:class:`~repro.core.perf_model.PredictedTime`.

The cache never trusts its files blindly: a *legacy* payload that
fails to parse counts as a miss and the file is *quarantined* — moved
aside into ``<directory>/quarantine/`` — so a truncated write cannot
poison later sweeps.  A torn *pack* record is cheaper to handle: the
index entry is dropped (the segments are append-only, so there is
nothing to move) and the key reads as a miss; ``repro cache verify``
reports the damage without any quarantine churn.

Batched I/O (:meth:`SimulationCache.lookup_many` /
:meth:`SimulationCache.store_many`) serves a whole engine batch in one
pass under one lock acquisition — the engine and the serving
scheduler's drain loop call these instead of looping single-key
round-trips.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.perf_model import PredictedTime
from ..errors import ConfigurationError, OutOfMemoryError
from ..simulator import TimingResult
from ..telemetry.logs import get_logger
from ..telemetry.metrics import get_registry
from ..telemetry.tracing import get_tracer
from .advisorjobs import AdvisorShardResult
from .memcache import MemoryCache, payload_nbytes
from .pack import PackStore

#: What a cache lookup can yield: a simulated result, the deterministic
#: OOM, a closed-form model prediction (``ModelEvalJob`` entries), or
#: an advisor pricing shard (``AdvisorShardJob`` entries).
CachedOutcome = Union[TimingResult, OutOfMemoryError, PredictedTime,
                      AdvisorShardResult]

#: Legacy per-key entries are ``<sha256-hex>.json`` — the pattern keeps
#: sidecar files (``manifest.json``) out of entry counts and compaction.
LEGACY_ENTRY_PATTERN = re.compile(r"^[0-9a-f]{64}\.json$")


@dataclass
class CacheStats:
    """Hit/miss counters, exposed on the CLI after every sweep.

    ``hits`` stays the all-tier total (existing output is unchanged);
    ``memory_hits`` / ``pack_hits`` attribute hits to the hot tier and
    the packed cold tier, so legacy-file hits are
    ``hits - memory_hits - pack_hits``.  Both default to zero and stay
    zero when the hot tier is disabled and no packs exist, so
    :meth:`describe` renders exactly what it always did in that case.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    memory_hits: int = 0
    pack_hits: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def disk_hits(self) -> int:
        """Hits served by the legacy one-file-per-key tier."""
        return self.hits - self.memory_hits - self.pack_hits

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counter values."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores,
                          quarantined=self.quarantined,
                          memory_hits=self.memory_hits,
                          pack_hits=self.pack_hits,
                          evictions=self.evictions)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          stores=self.stores - earlier.stores,
                          quarantined=self.quarantined - earlier.quarantined,
                          memory_hits=self.memory_hits - earlier.memory_hits,
                          pack_hits=self.pack_hits - earlier.pack_hits,
                          evictions=self.evictions - earlier.evictions)

    def describe(self) -> str:
        """One-line human rendering; mentions tiers only when a
        non-legacy tier served anything and quarantines only when any
        happened, so historical output is unchanged."""
        text = (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.0%} hit rate)")
        if self.memory_hits or self.pack_hits:
            text += (f" [{self.memory_hits} mem / {self.pack_hits} pack / "
                     f"{self.disk_hits} disk]")
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


def result_to_payload(result: TimingResult) -> dict:
    """JSON-serializable form of a timing result cache entry."""
    return {
        "kind": "result",
        "model": result.model,
        "scheme": result.scheme,
        "world_size": result.world_size,
        "batch_size": result.batch_size,
        "sync_times": list(result.sync_times),
        "iteration_times": list(result.iteration_times),
    }


def payload_to_result(payload: dict) -> TimingResult:
    """Inverse of :func:`result_to_payload`."""
    return TimingResult(
        model=payload["model"],
        scheme=payload["scheme"],
        world_size=payload["world_size"],
        batch_size=payload["batch_size"],
        sync_times=tuple(payload["sync_times"]),
        iteration_times=tuple(payload["iteration_times"]),
    )


def oom_to_payload(error: OutOfMemoryError) -> dict:
    """JSON-serializable form of a deterministic-OOM cache entry."""
    return {
        "kind": "oom",
        "message": str(error),
        "required_bytes": error.required_bytes,
        "budget_bytes": error.budget_bytes,
    }


def payload_to_oom(payload: dict) -> OutOfMemoryError:
    """Inverse of :func:`oom_to_payload`."""
    return OutOfMemoryError(
        payload["message"],
        required_bytes=payload["required_bytes"],
        budget_bytes=payload["budget_bytes"],
    )


def predicted_to_payload(predicted: PredictedTime) -> dict:
    """JSON-serializable form of a model-prediction cache entry.

    Floats survive the JSON round trip exactly (``repr`` rendering), so
    a warm-cache sweep reproduces its cold run byte for byte.
    """
    return {
        "kind": "predicted",
        "total": predicted.total,
        "compute": predicted.compute,
        "encode_decode": predicted.encode_decode,
        "comm_exposed": predicted.comm_exposed,
    }


def payload_to_predicted(payload: dict) -> PredictedTime:
    """Inverse of :func:`predicted_to_payload`."""
    return PredictedTime(
        total=payload["total"],
        compute=payload["compute"],
        encode_decode=payload["encode_decode"],
        comm_exposed=payload["comm_exposed"],
    )


def advisor_shard_to_payload(shard: AdvisorShardResult) -> dict:
    """JSON-serializable form of an advisor pricing-shard cache entry.

    Like :func:`predicted_to_payload`, the floats survive the JSON
    round trip exactly, so a warm-cache ``repro advise`` reproduces its
    cold run byte for byte.
    """
    return {
        "kind": "advisor-shard",
        "total_s": list(shard.total_s),
    }


def payload_to_advisor_shard(payload: dict) -> AdvisorShardResult:
    """Inverse of :func:`advisor_shard_to_payload`."""
    return AdvisorShardResult(total_s=tuple(payload["total_s"]))


def outcome_to_payload(outcome: CachedOutcome) -> dict:
    """The JSON payload for any cacheable outcome kind."""
    if isinstance(outcome, TimingResult):
        return result_to_payload(outcome)
    if isinstance(outcome, PredictedTime):
        return predicted_to_payload(outcome)
    if isinstance(outcome, AdvisorShardResult):
        return advisor_shard_to_payload(outcome)
    return oom_to_payload(outcome)


def payload_to_outcome(payload: dict) -> CachedOutcome:
    """Rehydrate any tier's payload; raises ``KeyError`` on an unknown
    kind or missing fields — every tier shares this one converter, which
    is what makes hot, pack and legacy hits byte-identical."""
    kind = payload.get("kind")
    if kind == "result":
        return payload_to_result(payload)
    if kind == "oom":
        return payload_to_oom(payload)
    if kind == "predicted":
        return payload_to_predicted(payload)
    if kind == "advisor-shard":
        return payload_to_advisor_shard(payload)
    raise KeyError(kind)


class SimulationCache:
    """Maps fingerprint keys to simulation outcomes across three tiers.

    Attributes:
        directory: The cache directory (legacy files, pack segments,
            the pack index and the quarantine subdirectory all live
            here).
        memory: The hot tier, or ``None`` when no byte budget was
            given — in which case every path behaves exactly as the
            disk-only cache always did.
        packs: The packed cold tier (always constructed; empty for a
            purely legacy directory).

    Thread-safe: disk-tier access is serialized by one internal lock,
    acquired **once** per batched call; the hot tier has its own
    per-shard locks.
    """

    def __init__(self, directory: str, memory_mb: float = 0.0,
                 shards: int = 8):
        """Open (creating if needed) the cache at ``directory``.

        ``memory_mb`` > 0 enables the write-through hot tier with that
        byte budget, sharded ``shards`` ways.
        """
        if not directory:
            raise ConfigurationError("cache directory must be non-empty")
        if memory_mb < 0:
            raise ConfigurationError(
                f"memory_mb must be >= 0, got {memory_mb}")
        self.directory = directory
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {directory!r} as a cache directory: {exc}")
        self.memory: Optional[MemoryCache] = None
        if memory_mb > 0:
            self.memory = MemoryCache(
                max_bytes=int(memory_mb * 1024 * 1024), shards=shards)
        self.packs = PackStore(directory)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._evictions_seen = 0

    def path_for(self, key: str) -> str:
        """Filesystem path of ``key``'s legacy entry (whether or not it
        exists)."""
        return os.path.join(self.directory, f"{key}.json")

    # ----- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[CachedOutcome]:
        """Look up ``key``; counts a hit or a miss on the stats.

        Tier order: hot (when enabled), pack index, legacy file.  An
        absent entry is a plain miss.  A *present but unreadable*
        legacy entry is also a miss, but the file is moved into the
        ``quarantine/`` subdirectory first; an unreadable pack record
        is dropped from the index instead (append-only segments have
        nothing to move aside).
        """
        if self.memory is not None:
            payload = self.memory.get(key)
            if payload is not None:
                return self._count_hit(key, payload, "memory",
                                       write_through=False)
        with self._lock:
            payload, tier = self._disk_lookup_locked(key)
        if payload is None:
            self._count_miss()
            return None
        return self._count_hit(key, payload, tier)

    def lookup_many(self, keys: Sequence[str],
                    ) -> Dict[str, CachedOutcome]:
        """Resolve a whole batch of keys in one pass per tier.

        The hot tier is consulted with one lock acquisition per shard,
        the disk tiers with ONE acquisition of the cache lock for the
        entire batch — this is what the engine and the serving
        scheduler's drain loop call, so a 200-job batch costs one cache
        pass, not 200.  Returns ``{key: outcome}`` for the hits; every
        *occurrence* in ``keys`` counts toward hit/miss stats exactly
        as per-key :meth:`get` calls would have.
        """
        unique = list(dict.fromkeys(keys))
        mem_payloads: Dict[str, dict] = {}
        if self.memory is not None and unique:
            mem_payloads = self.memory.get_many(unique)
        outcomes: Dict[str, CachedOutcome] = {}
        tiers: Dict[str, str] = {}
        for key, payload in mem_payloads.items():
            # Hot-tier payloads were validated on the way in.
            outcomes[key] = payload_to_outcome(payload)
            tiers[key] = "memory"
        remaining = [k for k in unique if k not in mem_payloads]
        writeback: List[Tuple[str, dict, Optional[int]]] = []
        if remaining:
            with self._lock:
                for key in remaining:
                    payload, tier = self._disk_lookup_locked(key)
                    if payload is None:
                        continue
                    try:
                        outcome = payload_to_outcome(payload)
                    except (KeyError, TypeError) as exc:
                        # Structurally bad despite a plausible "kind":
                        # same treatment as single-key get() — legacy
                        # bytes are quarantined, pack records just miss.
                        if tier == "disk":
                            self._quarantine(key, exc)
                        continue
                    outcomes[key] = outcome
                    tiers[key] = tier
                    writeback.append((key, payload, None))
        if self.memory is not None and writeback:
            self.memory.put_many(writeback)
            self._note_evictions()
        # Per-occurrence accounting, to match a loop of get() calls —
        # but aggregated into one counter increment per tier, so the
        # bookkeeping itself stays O(tiers), not O(keys).
        tier_counts = {"memory": 0, "pack": 0, "disk": 0}
        misses = 0
        for key in keys:
            tier = tiers.get(key)
            if tier is None:
                misses += 1
            else:
                tier_counts[tier] += 1
        hits = len(keys) - misses
        self.stats.misses += misses
        self.stats.hits += hits
        self.stats.memory_hits += tier_counts["memory"]
        self.stats.pack_hits += tier_counts["pack"]
        registry = get_registry()
        if misses:
            registry.counter("cache_misses_total").inc(misses)
        if hits:
            registry.counter("cache_hits_total").inc(hits)
        for tier, count in tier_counts.items():
            if count:
                registry.counter("cache_tier_hits_total",
                                 tier=tier).inc(count)
        return outcomes

    def _disk_lookup_locked(self, key: str,
                            ) -> Tuple[Optional[dict], str]:
        """Resolve ``key`` against the pack index, then the legacy
        file.  Returns ``(payload, tier)``; ``(None, "")`` for a miss.
        Caller holds the lock."""
        if key in self.packs:
            payload = self.packs.lookup(key)
            if payload is not None and "kind" in payload:
                return payload, "pack"
            # A torn record already dropped itself from the index; fall
            # through to the legacy file, which may still hold the key.
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) \
                    or payload.get("kind") not in (
                        "result", "oom", "predicted", "advisor-shard"):
                raise KeyError(payload.get("kind")
                               if isinstance(payload, dict) else None)
        except FileNotFoundError:
            return None, ""
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self._quarantine(key, exc)
            return None, ""
        return payload, "disk"

    def _count_hit(self, key: str, payload: dict, tier: str,
                   write_through: bool = True) -> CachedOutcome:
        """Book one hit: stats, telemetry, hot-tier write-through."""
        try:
            outcome = payload_to_outcome(payload)
        except (KeyError, TypeError) as exc:
            # A structurally-bad payload that slipped past the tier
            # checks (e.g. a hand-edited legacy file with the right
            # "kind" but missing fields): treat exactly like the old
            # single-tier code — quarantine legacy bytes, count a miss.
            if tier == "disk":
                with self._lock:
                    self._quarantine(key, exc)
            self._count_miss()
            return None  # type: ignore[return-value]
        self.stats.hits += 1
        if tier == "memory":
            self.stats.memory_hits += 1
        elif tier == "pack":
            self.stats.pack_hits += 1
        registry = get_registry()
        registry.counter("cache_hits_total").inc()
        registry.counter("cache_tier_hits_total", tier=tier).inc()
        if write_through and self.memory is not None:
            self.memory.put(key, payload)
            self._note_evictions()
        return outcome

    def _count_miss(self) -> None:
        self.stats.misses += 1
        get_registry().counter("cache_misses_total").inc()

    def _quarantine(self, key: str, exc: Exception) -> None:
        """Move ``key``'s corrupt legacy file aside and count the
        event."""
        source = self.path_for(key)
        if not os.path.exists(source):
            return
        quarantine_dir = os.path.join(self.directory, "quarantine")
        with get_tracer().span("cache-quarantine", track="cache",
                               key=key, reason=type(exc).__name__):
            try:
                os.makedirs(quarantine_dir, exist_ok=True)
                os.replace(source,
                           os.path.join(quarantine_dir, f"{key}.json"))
            except OSError:
                # A racing process beat us to it (or the FS is
                # read-only); either way the lookup already counted as
                # a miss.
                return
        self.stats.quarantined += 1
        get_registry().counter("cache_quarantined_total").inc()
        get_logger("cache").warning(
            "cache.entry_quarantined", key=key,
            reason=f"{type(exc).__name__}: {exc}",
            moved_to=quarantine_dir)

    # ----- stores ------------------------------------------------------------

    def put(self, key: str, outcome: CachedOutcome) -> None:
        """Store ``outcome`` under ``key`` as a legacy per-key file,
        atomically (write + rename), so a killed process can never
        leave a half-written entry.  Write-through to the hot tier."""
        payload = outcome_to_payload(outcome)
        with self._lock:
            fd, tmp_path = tempfile.mkstemp(dir=self.directory,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_path, self.path_for(key))
            finally:
                # The rename can fail after the write succeeded (e.g.
                # the target landed on another filesystem): without
                # this, every such failure would leak one orphan .tmp
                # file into the cache directory.
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
        if self.memory is not None:
            self.memory.put(key, payload)
            self._note_evictions()
        self.stats.stores += 1
        get_registry().counter("cache_stores_total").inc()

    def store_many(self, entries: Sequence[Tuple[str, CachedOutcome]],
                   ) -> None:
        """Store a whole batch: ONE pack append, ONE fsync, one lock.

        This is the batch-granularity write path the engine uses for
        its misses — entries land in the packed cold tier (and the hot
        tier) instead of one file per key.  Duplicate keys keep the
        last entry, matching a sequence of :meth:`put` calls.
        """
        if not entries:
            return
        payloads = [(key, outcome_to_payload(outcome))
                    for key, outcome in entries]
        with self._lock:
            written = self.packs.append_many(payloads)
        if self.memory is not None:
            sizes = dict(written)
            self.memory.put_many(
                (key, payload, sizes.get(key))
                for key, payload in payloads)
            self._note_evictions()
        self.stats.stores += len(payloads)
        registry = get_registry()
        registry.counter("cache_stores_total").inc(len(payloads))
        registry.counter("cache_pack_appends_total").inc()

    def _note_evictions(self) -> None:
        """Mirror hot-tier evictions into stats and telemetry."""
        assert self.memory is not None
        total = self.memory.evictions
        delta = total - self._evictions_seen
        if delta:
            self._evictions_seen = total
            self.stats.evictions += delta
            get_registry().counter(
                "cache_memory_evictions_total").inc(delta)

    # ----- warm start --------------------------------------------------------

    def preload(self, memory: bool = False) -> Dict[str, int]:
        """Warm the cache up front instead of on first traffic.

        The pack index is already resident (loaded at open); this
        touches every indexed record so a cold server's first burst
        reads pre-faulted pages, and with ``memory=True`` (and the hot
        tier enabled) loads payloads — packs first, then legacy files —
        into the hot tier until its budget is full.  Returns counters
        for the CLI to print.
        """
        memory = memory and self.memory is not None
        loaded = 0
        mem_loaded = 0
        skipped = 0

        def admit(key: str, payload: dict) -> int:
            # Best-effort hot-tier fill: stop charging once the global
            # budget would overflow (per-shard eviction may still trim
            # a little — preload warms, it does not guarantee pinning).
            nbytes = payload_nbytes(payload)
            assert self.memory is not None
            if self.memory.current_bytes + nbytes > self.memory.max_bytes:
                return 0
            self.memory.put(key, payload, nbytes)
            return 1

        with self._lock:
            for key in list(self.packs.index):
                payload = self.packs.lookup(key)
                if payload is None:
                    skipped += 1
                    continue
                loaded += 1
                if memory:
                    mem_loaded += admit(key, payload)
            if memory:
                for key in self._legacy_keys():
                    if key in self.packs:
                        continue
                    payload, tier = self._disk_lookup_locked(key)
                    if payload is None:
                        skipped += 1
                        continue
                    loaded += 1
                    mem_loaded += admit(key, payload)
        if self.memory is not None:
            self._note_evictions()
        return {"entries": loaded, "memory_entries": mem_loaded,
                "skipped": skipped}

    # ----- maintenance (repro cache …) ---------------------------------------

    def _legacy_keys(self) -> List[str]:
        """Keys with a legacy per-key file (sidecars excluded)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [name[:-len(".json")] for name in names
                if LEGACY_ENTRY_PATTERN.match(name)]

    def compact(self, batch_size: int = 256) -> Dict[str, int]:
        """Pack the legacy per-key files and delete them.

        Entries are read, appended to pack segments in ``batch_size``
        batches (one fsync each), and their per-key files removed only
        after the batch is durable — a kill mid-compaction loses no
        data, it just leaves some files uncompacted.  Unreadable legacy
        files are *reported and left in place* (no quarantine churn:
        compaction is a maintenance pass, not a lookup).  Returns
        counters for ``repro cache compact``.
        """
        packed = 0
        corrupt = 0
        with self._lock:
            keys = [k for k in self._legacy_keys()
                    if k not in self.packs]
            duplicate = [k for k in self._legacy_keys()
                         if k in self.packs]
            batch: List[Tuple[str, dict]] = []

            def flush() -> int:
                if not batch:
                    return 0
                self.packs.append_many(batch)
                for key, _ in batch:
                    try:
                        os.unlink(self.path_for(key))
                    except OSError:
                        pass
                n = len(batch)
                batch.clear()
                return n

            for key in keys:
                try:
                    with open(self.path_for(key), "r",
                              encoding="utf-8") as handle:
                        payload = json.load(handle)
                    payload_to_outcome(payload)  # validates structure
                except (OSError, ValueError, KeyError, TypeError):
                    corrupt += 1
                    continue
                batch.append((key, payload))
                if len(batch) >= batch_size:
                    packed += flush()
            packed += flush()
            # Per-key files whose keys the packs already hold are pure
            # duplicates; drop them without re-packing.
            for key in duplicate:
                try:
                    os.unlink(self.path_for(key))
                except OSError:
                    continue
                packed += 1
        return {"packed": packed, "corrupt": corrupt,
                "segments": self.packs.info()["segments"]}

    def verify(self) -> Dict[str, int]:
        """Re-read every entry in both disk tiers; mutate nothing.

        Returns counters: legacy ``ok``/``corrupt``, the pack tier's
        :meth:`~repro.engine.pack.PackStore.verify` report, and the
        total.  ``repro cache verify`` exits non-zero when anything is
        corrupt or truncated, which is how the chaos tests prove a
        killed pack flush is *detected*, not served.
        """
        legacy_ok = 0
        legacy_corrupt = 0
        with self._lock:
            for key in self._legacy_keys():
                try:
                    with open(self.path_for(key), "r",
                              encoding="utf-8") as handle:
                        payload_to_outcome(json.load(handle))
                except (OSError, ValueError, KeyError, TypeError):
                    legacy_corrupt += 1
                else:
                    legacy_ok += 1
            pack_report = self.packs.verify()
        return {
            "legacy_ok": legacy_ok,
            "legacy_corrupt": legacy_corrupt,
            "pack_entries": pack_report["entries"],
            "pack_ok": pack_report["ok"],
            "pack_corrupt": pack_report["corrupt"],
            "pack_truncated": pack_report["truncated"],
            "entries": legacy_ok + legacy_corrupt
            + pack_report["entries"],
            "corrupt": legacy_corrupt + pack_report["corrupt"]
            + pack_report["truncated"],
        }

    def info(self) -> dict:
        """JSON-serializable tier snapshot (manifests, ``cache stats``)."""
        with self._lock:
            legacy = self._legacy_keys()
            legacy_bytes = 0
            for key in legacy:
                try:
                    legacy_bytes += os.path.getsize(self.path_for(key))
                except OSError:
                    continue
            payload = {
                "directory": self.directory,
                "legacy": {"entries": len(legacy), "bytes": legacy_bytes},
                "pack": self.packs.info(),
                "memory": (self.memory.info()
                           if self.memory is not None else None),
                "stats": {
                    "hits": self.stats.hits,
                    "misses": self.stats.misses,
                    "stores": self.stats.stores,
                    "quarantined": self.stats.quarantined,
                    "memory_hits": self.stats.memory_hits,
                    "pack_hits": self.stats.pack_hits,
                    "evictions": self.stats.evictions,
                },
            }
        return payload

    def close(self) -> None:
        """Release pack file handles (safe to call more than once)."""
        with self._lock:
            self.packs.close()

    # ----- membership --------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        """Membership probe that does not disturb the stats."""
        if self.memory is not None and key in self.memory:
            return True
        if key in self.packs:
            return True
        return os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        """Distinct keys across the disk tiers (hot tier is a subset)."""
        with self._lock:
            keys = set(self._legacy_keys())
            keys.update(self.packs.index)
        return len(keys)
