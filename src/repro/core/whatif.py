"""What-if analyses (§6: Figures 11, 12, 13).

The performance model makes hardware hypotheticals cheap: sweep the
network bandwidth (Figure 11), scale the compute (Figure 12) — which
shrinks both the backward pass *and* the encode/decode time, the paper's
key observation about why faster GPUs favour compression — or trade
encode time against compression ratio for a hypothetical scheme
(Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..collectives import allgather_time, ring_allreduce_time
from ..compute import ComputeModel
from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..units import gbps_to_bytes_per_s
from .perf_model import PerfModelInputs, compressed_time, syncsgd_time


@dataclass(frozen=True)
class WhatIfPoint:
    """One sweep point: baseline vs compressed prediction."""

    x: float                   # the swept quantity (Gbit/s, factor, k...)
    syncsgd_s: float
    compressed_s: float

    @property
    def speedup(self) -> float:
        """Fractional speedup of compression (+ helps, - hurts)."""
        return (self.syncsgd_s - self.compressed_s) / self.syncsgd_s


def bandwidth_sweep(model: ModelSpec, scheme: Scheme,
                    bandwidths_gbps: Sequence[float],
                    inputs: PerfModelInputs, gpu: GPUSpec = V100,
                    profile: Optional[KernelProfile] = None,
                    ) -> Tuple[WhatIfPoint, ...]:
    """Figure 11: vary the network from e.g. 1 to 30 Gbit/s."""
    points: List[WhatIfPoint] = []
    for gbps in bandwidths_gbps:
        swept = inputs.with_bandwidth(gbps_to_bytes_per_s(gbps))
        base = syncsgd_time(model, swept, gpu).total
        comp = compressed_time(model, scheme, swept, gpu, profile).total
        points.append(WhatIfPoint(x=gbps, syncsgd_s=base, compressed_s=comp))
    return tuple(points)


def compute_sweep(model: ModelSpec, scheme: Scheme,
                  compute_factors: Sequence[float],
                  inputs: PerfModelInputs, gpu: GPUSpec = V100,
                  profile: Optional[KernelProfile] = None,
                  ) -> Tuple[WhatIfPoint, ...]:
    """Figure 12: scale GPU speed while the network stays fixed.

    Scaling the GPU scales the backward pass *and* the kernel profile, so
    encode/decode shrinks too — the two effects §6 credits for
    compression becoming attractive on faster hardware.
    """
    prof = profile if profile is not None else v100_kernel_profile()
    points: List[WhatIfPoint] = []
    for factor in compute_factors:
        if factor <= 0:
            raise ConfigurationError(
                f"compute factors must be > 0, got {factor}")
        fast_gpu = gpu.scaled(factor)
        fast_prof = prof.scaled(factor)
        base = syncsgd_time(model, inputs, fast_gpu).total
        comp = compressed_time(model, scheme, inputs, fast_gpu,
                               fast_prof).total
        points.append(WhatIfPoint(x=factor, syncsgd_s=base,
                                  compressed_s=comp))
    return tuple(points)


@dataclass(frozen=True)
class TradeoffPoint:
    """Figure-13 grid cell: hypothetical scheme with encode time /k and
    wire size *(l*k), relative to a real base scheme."""

    k: float
    l: float
    predicted_s: float
    syncsgd_s: float

    @property
    def speedup(self) -> float:
        return (self.syncsgd_s - self.predicted_s) / self.syncsgd_s


def encode_tradeoff_grid(model: ModelSpec, base_scheme: Scheme,
                         ks: Sequence[float], ls: Sequence[float],
                         inputs: PerfModelInputs, gpu: GPUSpec = V100,
                         profile: Optional[KernelProfile] = None,
                         ) -> Tuple[TradeoffPoint, ...]:
    """Figure 13: for each ``(k, l)``, price a hypothetical scheme whose
    encode/decode time is the base scheme's divided by ``k`` and whose
    payload is multiplied by ``l*k`` (the paper's example: k=2, l=2 means
    2x faster encode for 4x more data on the wire)."""
    prof = profile if profile is not None else v100_kernel_profile()
    compute = ComputeModel(model, gpu)
    bs = inputs.batch_size or model.default_batch_size
    t_comp = compute.backward_time(bs)
    p = inputs.world_size
    base_cost = base_scheme.cost(model, p, prof)
    baseline = syncsgd_time(model, inputs, gpu).total

    points: List[TradeoffPoint] = []
    for k in ks:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        for l in ls:
            if l < 1:
                raise ConfigurationError(f"l must be >= 1, got {l}")
            wire = min(base_cost.wire_bytes * l * k,
                       float(model.grad_bytes))
            enc = base_cost.encode_decode_s / k
            if p == 1:
                comm = 0.0
            else:
                per_message = wire / base_cost.messages
                if base_cost.all_reducible:
                    single = ring_allreduce_time(
                        per_message, p, inputs.bandwidth_bytes_per_s,
                        inputs.alpha_s)
                else:
                    single = allgather_time(
                        per_message, p, inputs.bandwidth_bytes_per_s,
                        inputs.alpha_s)
                comm = single * base_cost.messages
            points.append(TradeoffPoint(
                k=k, l=l, predicted_s=t_comp + enc + comm,
                syncsgd_s=baseline))
    return tuple(points)


def find_crossover_gbps(points: Sequence[WhatIfPoint]) -> Optional[float]:
    """Bandwidth at which compression stops helping: the first swept
    value where the speedup goes non-positive, linearly interpolated
    between neighbouring points.  ``None`` if compression helps (or
    hurts) across the whole sweep."""
    ordered = sorted(points, key=lambda pt: pt.x)
    for prev, curr in zip(ordered, ordered[1:]):
        if prev.speedup > 0 >= curr.speedup:
            span = prev.speedup - curr.speedup
            if span <= 0:
                return curr.x
            frac = prev.speedup / span
            return prev.x + frac * (curr.x - prev.x)
    return None
