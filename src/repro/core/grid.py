"""Grid-vectorized performance model: whole parameter grids per call.

The what-if analyses (§6) evaluate the closed-form model of §4 over
*configuration grids* — bandwidth × world size × compute factor × batch
size × compression ratio.  The scalar entry points in
:mod:`repro.core.perf_model` price one point per Python call; here the
same model is evaluated over N-D NumPy grids in one broadcasted kernel
call, with the bucket-FIFO term reused from
:func:`repro.core.perf_model.bucket_pipeline_end` and the collective
pricing from the broadcasting grid functions in
:mod:`repro.collectives`.

**Bit-identity contract.**  Every cell of a :class:`TimingGrid` is
bit-identical to the scalar functions called with the same operands:
each IEEE-754 elementary operation is exactly rounded, so elementwise
array arithmetic applied in the scalar code's operation order produces
the same float64s.  The what-if sweeps (:mod:`repro.core.whatif`) and
the engine's model-eval fast path (:mod:`repro.engine.modeljobs`) rely
on this — their grid-backed outputs are byte-identical to the scalar
loops they replaced, which is pinned by tests.

Axis semantics: each of ``bandwidth_bytes_per_s`` / ``world_size`` /
``compute_factor`` / ``batch_size`` may be a scalar (default: the value
in ``inputs``) or an array; arrays broadcast against each other under
normal NumPy rules, so callers shape their axes (e.g. ``bw[:, None]``
vs ``factor[None, :]``) to get an outer-product grid or keep them
aligned 1-D for a zipped sweep.

World size deserves a note: the per-scheme cost model
(:meth:`repro.compression.schemes.Scheme.cost`) takes an integer world
size (gather decodes are linear in ``p``), so the grid prices each
*unique* world size once and mask-fills the results — still one NumPy
kernel per distinct ``p``, not one per point.  The compute-factor axis
rides through :class:`repro.compression.kernel_cost.KernelProfile`
fields as arrays (the dataclass validation is array-aware for exactly
this purpose).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..collectives import allgather_time_grid, ring_allreduce_time_grid
from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme, SchemeCost, SyncSGDScheme
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..telemetry.metrics import get_registry
from .perf_model import PerfModelInputs, PredictedTime


@dataclass(frozen=True)
class TimingGrid:
    """N-D grid of performance-model predictions.

    The four component arrays share one broadcast shape and carry the
    same additive breakdown as :class:`repro.core.perf_model.
    PredictedTime`; :meth:`at` extracts one cell as a scalar
    ``PredictedTime`` (bit-identical to the scalar model at that
    point).
    """

    total: np.ndarray
    compute: np.ndarray
    encode_decode: np.ndarray
    comm_exposed: np.ndarray

    def __post_init__(self) -> None:
        shape = self.total.shape
        for label in ("compute", "encode_decode", "comm_exposed"):
            if getattr(self, label).shape != shape:
                raise ConfigurationError(
                    f"TimingGrid component {label} has shape "
                    f"{getattr(self, label).shape}, expected {shape}")

    @property
    def shape(self) -> Tuple[int, ...]:
        """Broadcast shape of the evaluated grid."""
        return self.total.shape

    @property
    def size(self) -> int:
        """Number of grid cells."""
        return int(self.total.size)

    def at(self, index) -> PredictedTime:
        """One cell as a scalar :class:`PredictedTime` (``index`` is any
        NumPy index selecting a single element)."""
        return PredictedTime(
            total=float(self.total[index]),
            compute=float(self.compute[index]),
            encode_decode=float(self.encode_decode[index]),
            comm_exposed=float(self.comm_exposed[index]),
        )


#: Largest grid one call may materialize.  A :class:`TimingGrid` holds
#: four float64 arrays, so this bound caps a single evaluation at about
#: 512 MB; anything larger must be sliced into shards (the advisor's
#: sweep slices its bandwidth axis, see :mod:`repro.analysis.advisor`).
MAX_GRID_POINTS = 1 << 24


def _count_grid_points(shape: Tuple[int, ...],
                       axes: Optional[dict] = None) -> None:
    """Gate grid size and advance ``grid_eval_points_total``.

    Grids beyond :data:`MAX_GRID_POINTS` raise a
    :class:`ConfigurationError` that names the offending axes (largest
    first) and suggests a shard size for the dominant one, instead of
    letting the caller hit an opaque allocation failure; ``axes`` maps
    axis name to requested length for that message.
    """
    cells = int(np.prod(shape))
    if cells > MAX_GRID_POINTS:
        named = sorted((axes or {}).items(), key=lambda kv: (-kv[1], kv[0]))
        wide = [(name, size) for name, size in named if size > 1]
        detail = ("; largest axes: "
                  + ", ".join(f"{name} ({size:,} points)"
                              for name, size in wide[:3]) if wide else "")
        if wide:
            big_name, big_size = wide[0]
            fit = max(1, MAX_GRID_POINTS * big_size // cells)
            hint = (f"; evaluate in bounded shards instead — slice "
                    f"{big_name} into runs of <= {fit:,} points per call "
                    f"(repro.analysis.advisor shards its bandwidth axis "
                    f"this way)")
        else:
            hint = "; evaluate in bounded shards instead"
        raise ConfigurationError(
            f"grid has {cells:,} cells, over the {MAX_GRID_POINTS:,}-cell "
            f"per-call limit{detail}{hint}")
    registry = get_registry()
    if not registry.enabled:
        return
    if cells:
        registry.counter("grid_eval_points_total").inc(cells)


def _axis_sizes(bw: np.ndarray, p: np.ndarray, factor: np.ndarray,
                bs: np.ndarray) -> dict:
    """Axis-name → requested length, for oversize-grid diagnostics."""
    return {"bandwidth_bytes_per_s": int(bw.size),
            "world_size": int(p.size),
            "compute_factor": int(factor.size),
            "batch_size": int(bs.size)}


def _axes(model: ModelSpec, inputs: PerfModelInputs,
          bandwidth_bytes_per_s, world_size, compute_factor, batch_size,
          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve axis overrides against ``inputs`` defaults and validate
    them with the same bounds the scalar constructors enforce."""
    bw = np.asarray(inputs.bandwidth_bytes_per_s if bandwidth_bytes_per_s
                    is None else bandwidth_bytes_per_s, dtype=float)
    p = np.asarray(inputs.world_size if world_size is None else world_size)
    factor = np.asarray(1.0 if compute_factor is None else compute_factor,
                        dtype=float)
    default_bs = inputs.batch_size or model.default_batch_size
    bs = np.asarray(default_bs if batch_size is None else batch_size)
    if bw.size and float(bw.min()) <= 0:
        raise ConfigurationError("bandwidth must be > 0")
    if p.size and int(p.min()) < 1:
        raise ConfigurationError(
            f"world_size must be >= 1, got {int(p.min())}")
    if factor.size and float(factor.min()) <= 0:
        raise ConfigurationError(
            f"compute factors must be > 0, got {float(factor.min())}")
    if bs.size and int(bs.min()) < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {int(bs.min())}")
    return bw, p, factor, bs


def backward_time_grid(model: ModelSpec, gpu: GPUSpec,
                       batch_size: np.ndarray,
                       compute_factor: np.ndarray) -> np.ndarray:
    """``T_comp`` over batch-size × compute-factor arrays.

    Mirrors :meth:`repro.compute.ComputeModel.backward_time` on
    ``gpu.scaled(factor)`` exactly: the scalar path computes
    ``(((peak·f)·eff_train)·eff_model)·saturation`` and divides
    ``bs · bwd_flops(1)`` by it; both reductions here apply the same
    operations in the same order (``x·1.0`` and ``x/1.0`` are exact, so
    the unscaled case matches too).
    """
    saturation = 1.0 / (1.0 + model.batch_half_saturation / batch_size)
    eff = (gpu.peak_fp32_flops * compute_factor * gpu.training_efficiency
           * model.compute_efficiency * saturation)
    return batch_size * model.bwd_flops(1) / eff


def _scaled_profile_grid(profile: KernelProfile,
                         compute_factor: np.ndarray) -> KernelProfile:
    """Array-factor form of :meth:`KernelProfile.scaled` (same per-field
    arithmetic; the name stays a plain string because ``{:g}`` cannot
    format an array)."""
    return replace(
        profile,
        name=f"{profile.name}-grid",
        tensor_overhead_s=profile.tensor_overhead_s / compute_factor,
        matmul_flops_per_s=profile.matmul_flops_per_s * compute_factor,
        orth_elems_per_s=profile.orth_elems_per_s * compute_factor,
        select_elems_per_s=profile.select_elems_per_s * compute_factor,
        pack_elems_per_s=profile.pack_elems_per_s * compute_factor,
        elementwise_elems_per_s=(profile.elementwise_elems_per_s
                                 * compute_factor),
        svd_flops_per_s=profile.svd_flops_per_s * compute_factor,
    )


def _scheme_cost_grid(model: ModelSpec, scheme: Scheme, p: np.ndarray,
                      profile: KernelProfile, shape: Tuple[int, ...],
                      ) -> Tuple[np.ndarray, np.ndarray, SchemeCost]:
    """Price ``scheme`` across a world-size axis: one :meth:`Scheme.cost`
    call per *unique* world size, mask-filled into ``shape``.

    Returns ``(wire_bytes, encode_decode_s, representative_cost)`` —
    the arrays broadcast to ``shape``; the representative cost carries
    the p-independent structure (messages, all_reducible).  Schemes
    whose message count or collective family varied with ``p`` would
    not fit one broadcast expression; none of the built-ins do, and the
    guard makes the assumption explicit.
    """
    if p.ndim == 0:
        cost = scheme.cost(model, int(p), profile)
        wire = np.broadcast_to(np.asarray(cost.wire_bytes, dtype=float),
                               shape)
        enc = np.broadcast_to(np.asarray(cost.encode_decode_s, dtype=float),
                              shape)
        return wire, enc, cost
    wire = np.zeros(shape)
    enc = np.zeros(shape)
    rep: Optional[SchemeCost] = None
    for unique_p in np.unique(p):
        cost = scheme.cost(model, int(unique_p), profile)
        if rep is None:
            rep = cost
        elif (cost.messages != rep.messages
              or cost.all_reducible != rep.all_reducible):
            raise ConfigurationError(
                f"{scheme.label}: message structure varies with world "
                f"size; the grid model cannot vectorize it")
        mask = np.broadcast_to(p == unique_p, shape)
        wire = np.where(mask, cost.wire_bytes, wire)
        enc = np.where(mask, cost.encode_decode_s, enc)
    assert rep is not None
    return wire, enc, rep


def syncsgd_time_grid(model: ModelSpec, inputs: PerfModelInputs,
                      gpu: GPUSpec = V100, *,
                      bandwidth_bytes_per_s=None, world_size=None,
                      compute_factor=None, batch_size=None) -> TimingGrid:
    """§4.1 syncSGD model over an N-D configuration grid.

    Every cell is bit-identical to
    :func:`repro.core.perf_model.syncsgd_time` at the same point
    (including the ``world_size == 1`` early return, realized here with
    ``np.where``).
    """
    bw, p, factor, bs = _axes(model, inputs, bandwidth_bytes_per_s,
                              world_size, compute_factor, batch_size)
    shape = np.broadcast_shapes(bw.shape, p.shape, factor.shape, bs.shape)
    _count_grid_points(shape, _axis_sizes(bw, p, factor, bs))
    t_comp = backward_time_grid(model, gpu, bs, factor)

    bucket_sizes = model.bucket_sizes_bytes(inputs.bucket_cap_bytes)
    alpha = inputs.alpha_s
    overlappable = sum(
        ring_allreduce_time_grid(b, p, bw, alpha)
        for b in bucket_sizes[:-1])
    last = ring_allreduce_time_grid(bucket_sizes[-1], p, bw, alpha)

    stretched = inputs.gamma * t_comp
    total = np.maximum(stretched, overlappable) + last
    comm_exposed = np.where(total > stretched, total - stretched, last)

    single = p == 1
    zeros = np.zeros(shape)
    return TimingGrid(
        total=np.where(single, t_comp, np.broadcast_to(total, shape)),
        compute=np.where(single, t_comp, np.broadcast_to(stretched, shape)),
        encode_decode=zeros,
        comm_exposed=np.where(single, 0.0,
                              np.broadcast_to(comm_exposed, shape)),
    )


def compressed_time_grid(model: ModelSpec, scheme: Scheme,
                         inputs: PerfModelInputs, gpu: GPUSpec = V100,
                         profile: Optional[KernelProfile] = None, *,
                         bandwidth_bytes_per_s=None, world_size=None,
                         compute_factor=None, batch_size=None) -> TimingGrid:
    """§4.2 sequential-compression model over an N-D configuration grid
    (cellwise bit-identical to
    :func:`repro.core.perf_model.compressed_time`, which the
    equivalence tests pin across every built-in scheme and axis)."""
    if isinstance(scheme, SyncSGDScheme):
        return syncsgd_time_grid(
            model, inputs, gpu, bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            world_size=world_size, compute_factor=compute_factor,
            batch_size=batch_size)
    prof = profile if profile is not None else v100_kernel_profile()
    bw, p, factor, bs = _axes(model, inputs, bandwidth_bytes_per_s,
                              world_size, compute_factor, batch_size)
    shape = np.broadcast_shapes(bw.shape, p.shape, factor.shape, bs.shape)
    _count_grid_points(shape, _axis_sizes(bw, p, factor, bs))
    t_comp = backward_time_grid(model, gpu, bs, factor)
    if compute_factor is not None:
        # The scalar compute sweep prices encode/decode on
        # profile.scaled(factor); ride the factor axis through the
        # profile fields (same per-field multiply/divide).
        prof = _scaled_profile_grid(prof, factor)
    wire, enc, rep = _scheme_cost_grid(model, scheme, p, prof, shape)
    alpha = inputs.alpha_s
    single_p = p == 1

    if scheme.ddp_overlap:
        ratio = wire / model.grad_bytes
        buckets = model.bucket_sizes_bytes(inputs.bucket_cap_bytes)
        overlappable = sum(
            ring_allreduce_time_grid(b * ratio, p, bw, alpha)
            for b in buckets[:-1])
        last = ring_allreduce_time_grid(buckets[-1] * ratio, p, bw, alpha)
        stretched = inputs.gamma * t_comp
        total = (np.maximum(stretched, overlappable) + last + enc)
        comm = np.maximum(0.0, total - stretched - enc)
        return TimingGrid(
            total=np.where(single_p, np.broadcast_to(t_comp, shape),
                           np.broadcast_to(total, shape)),
            compute=np.where(single_p, np.broadcast_to(t_comp, shape),
                             np.broadcast_to(stretched, shape)),
            encode_decode=np.broadcast_to(enc, shape).copy(),
            comm_exposed=np.where(single_p, 0.0,
                                  np.broadcast_to(comm, shape)),
        )

    per_message = wire / rep.messages
    if rep.all_reducible:
        single = ring_allreduce_time_grid(per_message, p, bw, alpha)
    else:
        single = allgather_time_grid(per_message, p, bw, alpha)
    comm = np.where(single_p, 0.0,
                    np.broadcast_to(single * rep.messages, shape))
    total = t_comp + enc + comm
    return TimingGrid(
        total=np.broadcast_to(total, shape).copy(),
        compute=np.broadcast_to(t_comp, shape).copy(),
        encode_decode=np.broadcast_to(enc, shape).copy(),
        comm_exposed=comm,
    )


def tradeoff_time_grid(model: ModelSpec, base_scheme: Scheme,
                       k, l, inputs: PerfModelInputs,
                       gpu: GPUSpec = V100,
                       profile: Optional[KernelProfile] = None,
                       ) -> TimingGrid:
    """Figure-13 hypothetical-scheme model over ``(k, l)`` arrays.

    For each cell: encode/decode is the base scheme's divided by ``k``,
    the wire payload is multiplied by ``l·k`` (capped at the dense
    gradient size).  ``k`` and ``l`` broadcast against each other —
    pass ``ks[:, None]`` and ``ls[None, :]`` for the paper's 2-D grid.
    Cellwise bit-identical to the scalar loop in
    :func:`repro.core.whatif.encode_tradeoff_grid`.
    """
    prof = profile if profile is not None else v100_kernel_profile()
    k_arr = np.asarray(k, dtype=float)
    l_arr = np.asarray(l, dtype=float)
    if k_arr.size and float(k_arr.min()) < 1:
        raise ConfigurationError(
            f"k must be >= 1, got {float(k_arr.min())}")
    if l_arr.size and float(l_arr.min()) < 1:
        raise ConfigurationError(
            f"l must be >= 1, got {float(l_arr.min())}")
    shape = np.broadcast_shapes(k_arr.shape, l_arr.shape)
    _count_grid_points(shape, {"k": int(k_arr.size), "l": int(l_arr.size)})

    bs = inputs.batch_size or model.default_batch_size
    t_comp = backward_time_grid(model, gpu, np.asarray(bs),
                                np.asarray(1.0))
    p = inputs.world_size
    base_cost = base_scheme.cost(model, p, prof)

    wire = np.minimum(base_cost.wire_bytes * l_arr * k_arr,
                      float(model.grad_bytes))
    enc = base_cost.encode_decode_s / k_arr
    if p == 1:
        comm = np.zeros(shape)
    else:
        per_message = wire / base_cost.messages
        if base_cost.all_reducible:
            single = ring_allreduce_time_grid(
                per_message, p, inputs.bandwidth_bytes_per_s,
                inputs.alpha_s)
        else:
            single = allgather_time_grid(
                per_message, p, inputs.bandwidth_bytes_per_s,
                inputs.alpha_s)
        comm = single * base_cost.messages
    total = t_comp + enc + comm
    return TimingGrid(
        total=np.broadcast_to(total, shape).copy(),
        compute=np.broadcast_to(t_comp, shape).copy(),
        encode_decode=np.broadcast_to(enc, shape).copy(),
        comm_exposed=np.broadcast_to(comm, shape).copy(),
    )
