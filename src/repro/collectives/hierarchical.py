"""Hierarchical (two-level) all-reduce.

p3.8xlarge nodes hold 4 NVLink-connected GPUs behind one 10 Gbit/s NIC.
NCCL exploits this: reduce within each node over NVLink, ring-reduce one
contribution per node over the network, broadcast back over NVLink.  The
paper's model flattens this (p = GPU count, BW = NIC speed), which is
numerically equivalent for the bandwidth term; the hierarchical model
differs in the latency term (hops over nodes, not GPUs) and gives the
simulator an ablation axis.

Cost structure for ``n`` bytes, ``g`` GPUs/node, ``m`` nodes::

    intra reduce:    2·n·(g-1)/(g·BW_nvlink)      (ring within the node)
    inter allreduce: 2·α·(m-1) + 2·n·(m-1)/(m·BW_nic)
    intra bcast:     n/BW_nvlink

Numeric counterpart: the same three phases over per-worker arrays, so
tests can check the hierarchy is value-equivalent to a flat sum.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import CollectiveError, ConfigurationError
from .cost import ring_allreduce_time
from .numeric import ReduceOp, _add, ring_allreduce


def hierarchical_allreduce_time(num_bytes: float, num_nodes: int,
                                gpus_per_node: int,
                                nic_bytes_per_s: float,
                                nvlink_bytes_per_s: float,
                                alpha_s: float) -> float:
    """Two-level all-reduce cost (seconds)."""
    if num_bytes < 0:
        raise ConfigurationError(f"num_bytes must be >= 0, got {num_bytes}")
    if num_nodes < 1 or gpus_per_node < 1:
        raise ConfigurationError(
            f"invalid topology: {num_nodes} nodes x {gpus_per_node} GPUs")
    if nic_bytes_per_s <= 0 or nvlink_bytes_per_s <= 0:
        raise ConfigurationError("bandwidths must be > 0")
    if alpha_s < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha_s}")

    intra = 0.0
    if gpus_per_node > 1:
        # Intra-node ring reduce-scatter+gather over NVLink; NVLink hops
        # have negligible latency.
        intra = (2.0 * num_bytes * (gpus_per_node - 1)
                 / (gpus_per_node * nvlink_bytes_per_s))
    inter = ring_allreduce_time(num_bytes, num_nodes, nic_bytes_per_s,
                                alpha_s)
    bcast = num_bytes / nvlink_bytes_per_s if gpus_per_node > 1 else 0.0
    return intra + inter + bcast


def hierarchical_allreduce(arrays: Sequence[np.ndarray],
                           gpus_per_node: int,
                           op: ReduceOp = _add) -> List[np.ndarray]:
    """Numeric two-level all-reduce.

    ``arrays`` is ordered by rank, ranks grouped by node (ranks
    ``[k*g, (k+1)*g)`` live on node ``k``).  The world size must be a
    multiple of ``gpus_per_node``.
    """
    if gpus_per_node < 1:
        raise ConfigurationError(
            f"gpus_per_node must be >= 1, got {gpus_per_node}")
    p = len(arrays)
    if p == 0:
        raise CollectiveError("collective requires at least one worker")
    if p % gpus_per_node != 0:
        raise CollectiveError(
            f"world size {p} is not a multiple of gpus_per_node="
            f"{gpus_per_node}")

    num_nodes = p // gpus_per_node
    # Phase 1: reduce within each node (leader = first rank on the node).
    node_sums: List[np.ndarray] = []
    for node in range(num_nodes):
        local = arrays[node * gpus_per_node:(node + 1) * gpus_per_node]
        acc = np.array(local[0], copy=True)
        for buf in local[1:]:
            acc = op(acc, np.asarray(buf))
        node_sums.append(acc)
    # Phase 2: ring all-reduce across node leaders.
    reduced = ring_allreduce(node_sums, op)
    # Phase 3: broadcast within each node.
    out: List[np.ndarray] = []
    for node in range(num_nodes):
        for _ in range(gpus_per_node):
            out.append(reduced[node].copy())
    return out
