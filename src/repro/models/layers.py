"""Layer and model descriptors.

A :class:`ModelSpec` is a *metadata-only* description of a neural network:
per-layer parameter shapes, gradient sizes, FLOP counts and activation
footprints, in execution order.  It is what the performance model, the
cluster simulator and the compression cost models consume — none of them
ever run the real network, but all of them need its exact shapes.

The backward pass traverses layers in reverse order; that ordering is what
makes gradient bucketing and communication/computation overlap work, so
:meth:`ModelSpec.backward_layers` and :meth:`ModelSpec.gradient_buckets`
are defined here rather than in the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import FLOAT32_BYTES, MIB
from .flops import BACKWARD_FLOP_RATIO


@dataclass(frozen=True)
class LayerSpec:
    """Metadata for one trainable (or compute-only) layer.

    Attributes:
        name: Unique name within the model, e.g. ``"layer3.5.conv2"``.
        kind: One of ``conv``, ``linear``, ``norm``, ``embedding``,
            ``attention`` (compute-only), ``pool`` (compute-only).
        param_shape: Shape of the weight tensor; ``()`` for compute-only
            layers.  Biases are folded into their layer's parameter count
            via ``extra_params``.
        matrix_shape: The 2D ``(m, n)`` view low-rank compressors reshape
            the gradient to (the paper: 4D conv kernels are reshaped to
            2D).  ``(0, 0)`` when the layer has no compressible matrix
            (biases, norms) — such gradients are sent uncompressed.
        extra_params: Parameters not part of the matrix view (bias,
            norm scale/shift); still communicated, never rank-compressed.
        fwd_flops_per_sample: Forward FLOPs for one sample.
        activation_bytes_per_sample: Bytes of output activation kept for
            the backward pass, per sample.
    """

    name: str
    kind: str
    param_shape: Tuple[int, ...] = ()
    matrix_shape: Tuple[int, int] = (0, 0)
    extra_params: int = 0
    fwd_flops_per_sample: float = 0.0
    activation_bytes_per_sample: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("layer name must be non-empty")
        if self.extra_params < 0:
            raise ConfigurationError(f"{self.name}: extra_params must be >= 0")
        if self.fwd_flops_per_sample < 0:
            raise ConfigurationError(f"{self.name}: fwd_flops must be >= 0")
        matrix_params = self.matrix_shape[0] * self.matrix_shape[1]
        if matrix_params and matrix_params != self._shape_numel():
            raise ConfigurationError(
                f"{self.name}: matrix_shape {self.matrix_shape} does not "
                f"cover param_shape {self.param_shape} "
                f"({matrix_params} vs {self._shape_numel()})")

    def _shape_numel(self) -> int:
        return math.prod(self.param_shape) if self.param_shape else 0

    @cached_property
    def num_params(self) -> int:
        """Total trainable parameters, including bias/affine extras.

        Cached: the dataclass is frozen, and hot paths (memory checks,
        bucketing, trace reconstruction) re-read it thousands of times.
        """
        return self._shape_numel() + self.extra_params

    @cached_property
    def grad_bytes(self) -> int:
        """Dense fp32 gradient size in bytes."""
        return self.num_params * FLOAT32_BYTES

    @property
    def has_matrix(self) -> bool:
        """Whether the layer exposes a 2D view for low-rank compression."""
        return self.matrix_shape[0] > 0 and self.matrix_shape[1] > 0

    def bwd_flops_per_sample(self) -> float:
        """Backward FLOPs for one sample (2x forward for trainable layers)."""
        return self.fwd_flops_per_sample * BACKWARD_FLOP_RATIO


@dataclass(frozen=True)
class ModelSpec:
    """An ordered collection of layers plus training-workload metadata.

    Attributes:
        name: Registry name, e.g. ``"resnet50"``.
        layers: Layers in forward execution order.
        default_batch_size: The per-GPU batch size the paper uses for this
            model (64 for the ResNets, 12 for BERT).
        sample_description: What one sample is (for docs/logs).
        compute_efficiency: Relative kernel efficiency of this model
            family on GPUs, multiplying the GPU's own sustained fraction.
            cuDNN convolutions at ImageNet shapes run much closer to peak
            than fp32 transformer kernels, which is why a single global
            efficiency cannot reproduce the paper's measured backward
            times for both families.
        batch_half_saturation: Batch size at which per-sample throughput
            reaches half of its asymptote.  Models the GPU-underutilized
            small-batch regime: backward time scales as
            ``flops(bs) * (1 + half/bs)``.  Large-token transformers
            saturate immediately (0); image CNNs need tens of samples.
        gather_granularity: How the reference implementation of
            non-all-reducible methods stacks gathered payloads when
            decoding: ``"model"`` materializes all ``p`` dense gradients
            at once (the transformer fine-tuning integrations the paper
            used — this is what makes BERT OOM beyond 32 GPUs), while
            ``"layer"`` stacks one layer at a time (the torchvision CNN
            hooks).  Affects the memory model only.
    """

    name: str
    layers: Tuple[LayerSpec, ...]
    default_batch_size: int = 32
    sample_description: str = ""
    compute_efficiency: float = 1.0
    batch_half_saturation: float = 0.0
    gather_granularity: str = "model"

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(f"{self.name}: model has no layers")
        if self.default_batch_size < 1:
            raise ConfigurationError(
                f"{self.name}: default_batch_size must be >= 1")
        if self.compute_efficiency <= 0:
            raise ConfigurationError(
                f"{self.name}: compute_efficiency must be > 0")
        if self.batch_half_saturation < 0:
            raise ConfigurationError(
                f"{self.name}: batch_half_saturation must be >= 0")
        if self.gather_granularity not in ("model", "layer"):
            raise ConfigurationError(
                f"{self.name}: gather_granularity must be 'model' or "
                f"'layer', got {self.gather_granularity!r}")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"{self.name}: duplicate layer names {dupes}")

    # ----- aggregate sizes -------------------------------------------------

    @cached_property
    def num_params(self) -> int:
        """Total trainable parameters.

        Cached (the spec is frozen): memory checks and per-run trace
        reconstruction re-read the aggregate on every call, and
        re-summing hundreds of layers each time dominated their cost.
        """
        return sum(layer.num_params for layer in self.layers)

    @cached_property
    def grad_bytes(self) -> int:
        """Dense fp32 gradient size (== fp32 model size) in bytes."""
        return self.num_params * FLOAT32_BYTES

    @cached_property
    def trainable_layers(self) -> Tuple[LayerSpec, ...]:
        """Layers that own parameters (and therefore gradients)."""
        return tuple(layer for layer in self.layers if layer.num_params > 0)

    @cached_property
    def matrix_layers(self) -> Tuple[LayerSpec, ...]:
        """Layers with a 2D view usable by low-rank compression."""
        return tuple(layer for layer in self.layers if layer.has_matrix)

    # ----- compute costs ---------------------------------------------------

    @cached_property
    def _fwd_flops_per_sample(self) -> float:
        return sum(l.fwd_flops_per_sample for l in self.layers)

    @cached_property
    def _bwd_flops_per_sample(self) -> float:
        return sum(l.bwd_flops_per_sample() for l in self.layers)

    @cached_property
    def _activation_bytes_per_sample(self) -> float:
        return sum(l.activation_bytes_per_sample for l in self.layers)

    def fwd_flops(self, batch_size: int) -> float:
        """Forward-pass FLOPs for one iteration at ``batch_size``."""
        self._check_batch(batch_size)
        return batch_size * self._fwd_flops_per_sample

    def bwd_flops(self, batch_size: int) -> float:
        """Backward-pass FLOPs for one iteration at ``batch_size``."""
        self._check_batch(batch_size)
        return batch_size * self._bwd_flops_per_sample

    def iteration_flops(self, batch_size: int) -> float:
        """Forward + backward FLOPs for one iteration."""
        return self.fwd_flops(batch_size) + self.bwd_flops(batch_size)

    def activation_bytes(self, batch_size: int) -> float:
        """Activation memory retained for the backward pass."""
        self._check_batch(batch_size)
        return batch_size * self._activation_bytes_per_sample

    def _check_batch(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"{self.name}: batch_size must be >= 1, got {batch_size}")

    # ----- backward ordering and bucketing ----------------------------------

    def backward_layers(self) -> Tuple[LayerSpec, ...]:
        """Layers in the order their gradients become available."""
        return tuple(reversed(self.layers))

    @property
    def largest_layer_grad_bytes(self) -> int:
        """Gradient bytes of the biggest single layer (the unit of
        ``"layer"``-granularity gather stacking)."""
        return max(layer.grad_bytes for layer in self.trainable_layers)

    def gradient_buckets(self, bucket_cap_bytes: float = 25 * MIB,
                         ) -> Tuple[Tuple[LayerSpec, ...], ...]:
        """Group gradients into DDP-style fixed-capacity buckets.

        Buckets are filled in backward order (PyTorch DDP semantics): the
        first bucket holds the gradients that become ready first — those
        of the *last* layers.  A bucket is closed once adding the next
        gradient would exceed ``bucket_cap_bytes``; a single gradient
        larger than the cap gets a bucket of its own.

        Returns a tuple of buckets, each a tuple of layers; the final
        bucket is the one whose communication cannot be overlapped with
        computation (the ``b-hat`` term of the paper's performance model).
        """
        if bucket_cap_bytes <= 0:
            raise ConfigurationError(
                f"bucket_cap_bytes must be > 0, got {bucket_cap_bytes}")
        buckets: List[Tuple[LayerSpec, ...]] = []
        current: List[LayerSpec] = []
        current_bytes = 0.0
        for layer in self.backward_layers():
            if layer.num_params == 0:
                continue
            if current and current_bytes + layer.grad_bytes > bucket_cap_bytes:
                buckets.append(tuple(current))
                current, current_bytes = [], 0.0
            current.append(layer)
            current_bytes += layer.grad_bytes
        if current:
            buckets.append(tuple(current))
        return tuple(buckets)

    def bucket_sizes_bytes(self, bucket_cap_bytes: float = 25 * MIB,
                           ) -> Tuple[float, ...]:
        """Byte size of each gradient bucket, in ready order."""
        return tuple(
            float(sum(layer.grad_bytes for layer in bucket))
            for bucket in self.gradient_buckets(bucket_cap_bytes))

    # ----- misc --------------------------------------------------------------

    def layer_named(self, name: str) -> LayerSpec:
        """Look up a layer by exact name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise ConfigurationError(f"{self.name}: no layer named {name!r}")

    def summary(self) -> str:
        """Multi-line human-readable summary used by examples and docs."""
        lines = [
            f"model: {self.name}",
            f"  layers:        {len(self.layers)} "
            f"({len(self.trainable_layers)} trainable)",
            f"  parameters:    {self.num_params / 1e6:.1f} M",
            f"  gradient size: {self.grad_bytes / 1e6:.0f} MB (fp32)",
            f"  fwd flops:     "
            f"{self.fwd_flops(1) / 1e9:.2f} GFLOP / sample",
            f"  default batch: {self.default_batch_size}",
        ]
        if self.sample_description:
            lines.append(f"  sample:        {self.sample_description}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
