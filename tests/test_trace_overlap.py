"""Stream-overlap sweep: equivalence with the old pairwise algorithm."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator
from repro.simulator.trace import (
    COMM_STREAM,
    COMPUTE_STREAM,
    IterationTrace,
    Span,
)


def pairwise_overlap(trace, stream_a, stream_b):
    """The previous O(n*m) implementation, kept as the test oracle."""
    overlap = 0.0
    for a in trace.stream_spans(stream_a):
        for b in trace.stream_spans(stream_b):
            overlap += max(0.0, min(a.end, b.end) - max(a.start, b.start))
    return overlap


def random_trace(rng, n_a, n_b, stream_b=COMM_STREAM):
    """A trace whose per-stream spans never overlap (as the simulator
    guarantees): random gaps and widths laid end to end."""
    trace = IterationTrace()
    for stream, count in ((COMPUTE_STREAM, n_a), (stream_b, n_b)):
        t = rng.uniform(0.0, 0.5)
        for i in range(count):
            t += rng.uniform(0.0, 0.3)          # gap (may be zero)
            width = rng.uniform(0.0, 1.0)       # span (may be a point)
            trace.add(Span(stream, f"{stream}{i}", t, t + width))
            t += width
    return trace


class TestSweepEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_pairwise_on_random_traces(self, seed):
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, int(rng.integers(0, 40)),
                             int(rng.integers(0, 40)))
        assert trace.compute_comm_overlap() == pytest.approx(
            pairwise_overlap(trace, COMPUTE_STREAM, COMM_STREAM))

    def test_matches_pairwise_on_simulated_iteration(self):
        sim = DDPSimulator(get_model("resnet50"), cluster_for_gpus(8),
                           config=DDPConfig(compute_jitter=0.0,
                                            comm_jitter=0.0))
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        assert trace.compute_comm_overlap() == pytest.approx(
            pairwise_overlap(trace, COMPUTE_STREAM, COMM_STREAM))
        assert trace.compute_comm_overlap() > 0  # DDP overlaps by design

    def test_empty_streams(self):
        trace = IterationTrace()
        assert trace.compute_comm_overlap() == 0.0
        trace.add(Span(COMPUTE_STREAM, "fwd", 0.0, 1.0))
        assert trace.compute_comm_overlap() == 0.0

    def test_disjoint_streams(self):
        trace = IterationTrace()
        trace.add(Span(COMPUTE_STREAM, "a", 0.0, 1.0))
        trace.add(Span(COMM_STREAM, "b", 1.0, 2.0))
        assert trace.compute_comm_overlap() == 0.0

    def test_nested_interval(self):
        trace = IterationTrace()
        trace.add(Span(COMPUTE_STREAM, "a", 0.0, 10.0))
        trace.add(Span(COMM_STREAM, "b", 2.0, 3.0))
        trace.add(Span(COMM_STREAM, "c", 5.0, 6.5))
        assert trace.compute_comm_overlap() == pytest.approx(2.5)

    def test_generalizes_to_named_streams(self):
        rng = np.random.default_rng(7)
        trace = random_trace(rng, 15, 15, stream_b="encode")
        assert trace.stream_overlap(COMPUTE_STREAM, "encode") \
            == pytest.approx(pairwise_overlap(trace, COMPUTE_STREAM,
                                              "encode"))


class TestSpanWireBytes:
    def test_default_zero(self):
        assert Span(COMPUTE_STREAM, "fwd", 0.0, 1.0).bytes_on_wire == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Span(COMM_STREAM, "b", 0.0, 1.0, bytes_on_wire=-1.0)

    def test_wire_bytes_total_sums(self):
        trace = IterationTrace()
        trace.add(Span(COMM_STREAM, "a", 0.0, 1.0, bytes_on_wire=100.0))
        trace.add(Span(COMM_STREAM, "b", 1.0, 2.0, bytes_on_wire=50.0))
        trace.add(Span(COMPUTE_STREAM, "c", 0.0, 2.0))
        assert trace.wire_bytes_total() == pytest.approx(150.0)

    def test_simulated_comm_spans_carry_bytes(self):
        model = get_model("resnet50")
        sim = DDPSimulator(model, cluster_for_gpus(8),
                           config=DDPConfig(compute_jitter=0.0,
                                            comm_jitter=0.0))
        trace = sim.simulate_iteration(64, np.random.default_rng(0))
        # The uncompressed baseline puts exactly the gradient payload on
        # the wire, split across buckets.
        assert trace.wire_bytes_total() == pytest.approx(model.grad_bytes)

    def test_streams_in_first_appearance_order(self):
        trace = IterationTrace()
        trace.add(Span(COMPUTE_STREAM, "a", 0.0, 1.0))
        trace.add(Span(COMM_STREAM, "b", 0.0, 1.0))
        trace.add(Span("encode", "c", 0.0, 1.0))
        trace.add(Span(COMPUTE_STREAM, "d", 1.0, 2.0))
        assert trace.streams() == [COMPUTE_STREAM, COMM_STREAM, "encode"]
