"""GPU specifications used by the compute model.

The simulator does not model microarchitecture; it needs three things per
GPU: how fast dense training math runs (an *effective* throughput, i.e.
peak FLOP/s times an achieved-efficiency factor), how fast small
bandwidth-bound kernels run (for compression encode/decode), and how much
memory is available.

The V100 numbers are calibrated so that the model zoo's backward-pass FLOP
counts reproduce the paper's measured times (ResNet-50 backward ~122 ms at
per-GPU batch 64 — Table 2), via ``effective = peak * gpu.efficiency *
model.compute_efficiency * saturation(batch)``; the per-model-family
factors live on :class:`repro.models.ModelSpec`.  Other entries are taken
from vendor spec sheets with plausible efficiency factors, which is all
the what-if analyses in the paper require (Figure 12 varies compute speed
as a pure multiplier).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import ConfigurationError
from ..units import GIB, tflops_to_flops


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes:
        name: Marketing name, e.g. ``"V100-SXM2-16GB"``.
        peak_fp32_flops: Peak dense fp32 throughput in FLOP/s.
        training_efficiency: Fraction of peak sustained by real training
            kernels (cuDNN convolutions, fused attention, ...).  The
            product ``peak_fp32_flops * training_efficiency`` is the
            effective throughput the compute model divides FLOPs by.
        memcpy_bytes_per_s: Device-memory streaming rate for elementwise /
            bandwidth-bound kernels (sign, pack, scatter).
        memory_bytes: Usable device memory.
        kernel_launch_overhead_s: Fixed cost of launching one kernel;
            dominates per-layer compression cost for networks with many
            small layers (PowerSGD on ResNet).
    """

    name: str
    peak_fp32_flops: float
    training_efficiency: float
    memcpy_bytes_per_s: float
    memory_bytes: float
    kernel_launch_overhead_s: float

    def __post_init__(self) -> None:
        if self.peak_fp32_flops <= 0:
            raise ConfigurationError(f"{self.name}: peak_fp32_flops must be > 0")
        if not 0 < self.training_efficiency <= 1:
            raise ConfigurationError(
                f"{self.name}: training_efficiency must be in (0, 1], "
                f"got {self.training_efficiency}")
        if self.memcpy_bytes_per_s <= 0:
            raise ConfigurationError(f"{self.name}: memcpy_bytes_per_s must be > 0")
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"{self.name}: memory_bytes must be > 0")
        if self.kernel_launch_overhead_s < 0:
            raise ConfigurationError(
                f"{self.name}: kernel_launch_overhead_s must be >= 0")

    @property
    def effective_training_flops(self) -> float:
        """Sustained FLOP/s for forward/backward training kernels."""
        return self.peak_fp32_flops * self.training_efficiency

    def scaled(self, compute_factor: float) -> "GPUSpec":
        """Return a hypothetical GPU ``compute_factor`` times faster.

        Used for the paper's Figure 12 what-if ("what if compute becomes
        4x faster but the network does not?").  Scales compute throughput,
        streaming bandwidth and launch overhead together, exactly as the
        paper assumes encode/decode time shrinks with faster compute.
        """
        if compute_factor <= 0:
            raise ConfigurationError(
                f"compute_factor must be > 0, got {compute_factor}")
        return replace(
            self,
            name=f"{self.name}-x{compute_factor:g}",
            peak_fp32_flops=self.peak_fp32_flops * compute_factor,
            memcpy_bytes_per_s=self.memcpy_bytes_per_s * compute_factor,
            kernel_launch_overhead_s=self.kernel_launch_overhead_s / compute_factor,
        )


#: The GPU the paper's measurements were taken on (AWS p3.8xlarge).
V100 = GPUSpec(
    name="V100-SXM2-16GB",
    peak_fp32_flops=tflops_to_flops(15.7),
    training_efficiency=0.69,
    memcpy_bytes_per_s=700e9,
    memory_bytes=16 * GIB,
    kernel_launch_overhead_s=9e-6,
)

A100 = GPUSpec(
    name="A100-SXM4-40GB",
    peak_fp32_flops=tflops_to_flops(19.5),
    training_efficiency=0.90,
    memcpy_bytes_per_s=1555e9,
    memory_bytes=40 * GIB,
    kernel_launch_overhead_s=7e-6,
)

T4 = GPUSpec(
    name="T4-16GB",
    peak_fp32_flops=tflops_to_flops(8.1),
    training_efficiency=0.55,
    memcpy_bytes_per_s=300e9,
    memory_bytes=16 * GIB,
    kernel_launch_overhead_s=9e-6,
)

P100 = GPUSpec(
    name="P100-16GB",
    peak_fp32_flops=tflops_to_flops(9.3),
    training_efficiency=0.55,
    memcpy_bytes_per_s=732e9,
    memory_bytes=16 * GIB,
    kernel_launch_overhead_s=10e-6,
)

_REGISTRY: Dict[str, GPUSpec] = {g.name: g for g in (V100, A100, T4, P100)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a built-in GPU spec by name.

    Raises:
        ConfigurationError: if the name is unknown; the message lists the
            available names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown GPU {name!r}; available: {sorted(_REGISTRY)}") from None


def available_gpus() -> Dict[str, GPUSpec]:
    """Return a copy of the built-in GPU registry."""
    return dict(_REGISTRY)
