"""Compute-time model: calibration targets and scaling behaviour."""

import pytest

from repro.compute import ComputeModel
from repro.errors import ConfigurationError
from repro.hardware import V100
from repro.models import get_model


@pytest.fixture
def rn50_compute(resnet50):
    return ComputeModel(resnet50, V100)


class TestCalibratedBackwardTimes:
    """The paper's published V100 timings the compute model must hit."""

    def test_resnet50_backward_matches_table2(self, rn50_compute):
        # Table 2 discussion: T_comp ~ 122 ms for ResNet-50 (batch 64).
        assert rn50_compute.backward_time(64) * 1e3 == pytest.approx(
            122, rel=0.05)

    def test_bert_backward_near_540ms(self, bert_base):
        compute = ComputeModel(bert_base, V100)
        assert compute.backward_time(12) * 1e3 == pytest.approx(540, rel=0.05)

    def test_resnet101_between_rn50_and_bert(self, resnet101):
        compute = ComputeModel(resnet101, V100)
        t = compute.backward_time(64) * 1e3
        assert 180 < t < 300


class TestScalingBehaviour:
    def test_backward_scales_sublinearly_at_small_batch(self, rn50_compute):
        # Batch saturation: 4x batch < 4x time below saturation.
        t16 = rn50_compute.backward_time(16)
        t64 = rn50_compute.backward_time(64)
        assert t64 < 4 * t16
        assert t64 > 2 * t16

    def test_forward_is_half_backward(self, rn50_compute):
        assert rn50_compute.forward_time(32) == pytest.approx(
            rn50_compute.backward_time(32) / 2)

    def test_faster_gpu_reduces_time(self, resnet50):
        slow = ComputeModel(resnet50, V100)
        fast = ComputeModel(resnet50, V100.scaled(2.0))
        assert fast.backward_time(64) == pytest.approx(
            slow.backward_time(64) / 2)

    def test_layer_times_sum_to_backward(self, rn50_compute, resnet50):
        total = sum(rn50_compute.layer_backward_time(l, 32)
                    for l in resnet50.layers)
        assert total == pytest.approx(rn50_compute.backward_time(32))

    def test_layer_from_other_model_rejected(self, rn50_compute,
                                             bert_base):
        with pytest.raises(ConfigurationError):
            rn50_compute.layer_backward_time(bert_base.layers[0], 8)

    def test_zero_batch_rejected(self, rn50_compute):
        with pytest.raises(ConfigurationError):
            rn50_compute.backward_time(0)


class TestMemoryModel:
    def test_model_states_are_3x_params(self, rn50_compute, resnet50):
        assert rn50_compute.model_state_bytes() == pytest.approx(
            3 * resnet50.grad_bytes)

    def test_training_memory_includes_activations(self, rn50_compute,
                                                  resnet50):
        small = rn50_compute.training_memory_bytes(1)
        large = rn50_compute.training_memory_bytes(64)
        assert large - small == pytest.approx(
            63 * resnet50.activation_bytes(1))

    def test_peak_is_max_of_phases(self, rn50_compute):
        # Huge aggregation working set dominates.
        peak = rn50_compute.peak_memory_bytes(1, aggregation_bytes=100e9)
        assert peak == pytest.approx(
            rn50_compute.model_state_bytes() + 100e9)
        # Tiny working set: training phase dominates.
        peak2 = rn50_compute.peak_memory_bytes(64, aggregation_bytes=1.0)
        assert peak2 == pytest.approx(
            rn50_compute.training_memory_bytes(64))

    def test_resnet50_fits_on_v100(self, rn50_compute):
        fits, required = rn50_compute.fits_in_memory(64)
        assert fits
        assert required < V100.memory_bytes

    def test_bert_gather_working_set_ooms(self, bert_base):
        compute = ComputeModel(bert_base, V100)
        working = bert_base.grad_bytes * 48  # signSGD stack at 48 GPUs
        fits, _ = compute.fits_in_memory(12, extra_bytes=working)
        assert not fits

    def test_bert_gather_at_32_fits(self, bert_base):
        compute = ComputeModel(bert_base, V100)
        working = bert_base.grad_bytes * 32
        fits, _ = compute.fits_in_memory(12, extra_bytes=working)
        assert fits

    def test_optimizer_time_positive(self, rn50_compute):
        assert rn50_compute.optimizer_time() > 0
