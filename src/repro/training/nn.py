"""A small numpy neural network with manual backprop.

This is the *numeric* training substrate: real forward/backward math on
real data, so the compression aggregators can be validated end-to-end
(does error feedback actually recover convergence? does majority-vote
signSGD train?).  It deliberately stays small — dense layers, ReLU,
softmax cross-entropy — because the timing questions live in the
simulator; this substrate answers *correctness* questions only.

Parameters and gradients are dictionaries keyed by parameter name, the
same granularity the aggregators operate at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log likelihood of integer ``labels``."""
    n = probs.shape[0]
    eps = 1e-12
    return float(-np.log(probs[np.arange(n), labels] + eps).mean())


@dataclass
class MLPConfig:
    """Architecture of the test network."""

    input_dim: int
    hidden_dims: Tuple[int, ...]
    num_classes: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.input_dim < 1 or self.num_classes < 2:
            raise ConfigurationError(
                f"invalid dims: input={self.input_dim}, "
                f"classes={self.num_classes}")
        if any(h < 1 for h in self.hidden_dims):
            raise ConfigurationError(
                f"hidden dims must be >= 1, got {self.hidden_dims}")


class MLP:
    """Fully connected ReLU network with softmax cross-entropy loss.

    All state lives in :attr:`params`; :meth:`loss_and_grads` is pure with
    respect to it, which makes data-parallel replication trivial (share
    params, shard data).
    """

    def __init__(self, config: MLPConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        dims = (config.input_dim, *config.hidden_dims, config.num_classes)
        self.params: Params = {}
        for i, (fan_in, fan_out) in enumerate(zip(dims, dims[1:])):
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU stacks
            self.params[f"w{i}"] = rng.normal(
                0.0, scale, size=(fan_in, fan_out))
            self.params[f"b{i}"] = np.zeros(fan_out)
        self.num_layers = len(dims) - 1

    def param_names(self) -> List[str]:
        """Parameter names in definition order."""
        return [f"{kind}{i}" for i in range(self.num_layers)
                for kind in ("w", "b")]

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Return logits and the per-layer inputs needed for backward."""
        if x.ndim != 2 or x.shape[1] != self.config.input_dim:
            raise ConfigurationError(
                f"expected input of shape (n, {self.config.input_dim}), "
                f"got {x.shape}")
        inputs = [x]
        h = x
        for i in range(self.num_layers):
            z = h @ self.params[f"w{i}"] + self.params[f"b{i}"]
            h = np.maximum(z, 0.0) if i < self.num_layers - 1 else z
            inputs.append(h)
        return h, inputs

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions."""
        logits, _ = self.forward(x)
        return logits.argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct predictions."""
        return float((self.predict(x) == y).mean())

    def loss_and_grads(self, x: np.ndarray,
                       y: np.ndarray) -> Tuple[float, Grads]:
        """Mean cross-entropy loss and its gradient w.r.t. every param."""
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        logits, inputs = self.forward(x)
        probs = softmax(logits)
        loss = cross_entropy(probs, y)

        n = x.shape[0]
        delta = probs.copy()
        delta[np.arange(n), y] -= 1.0
        delta /= n

        grads: Grads = {}
        for i in reversed(range(self.num_layers)):
            layer_in = inputs[i]
            grads[f"w{i}"] = layer_in.T @ delta
            grads[f"b{i}"] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self.params[f"w{i}"].T
                delta *= (inputs[i] > 0.0)  # ReLU mask
        return loss, grads

    def apply_update(self, updates: Grads, lr: float) -> None:
        """Gradient-descent step: ``param -= lr * update``."""
        if lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {lr}")
        for name, update in updates.items():
            if name not in self.params:
                raise ConfigurationError(f"unknown parameter {name!r}")
            if update.shape != self.params[name].shape:
                raise ConfigurationError(
                    f"update for {name!r} has shape {update.shape}, "
                    f"expected {self.params[name].shape}")
            self.params[name] -= lr * update

    def clone_params(self) -> Params:
        """Deep copy of the current parameters."""
        return {k: v.copy() for k, v in self.params.items()}

    def load_params(self, params: Params) -> None:
        """Replace parameters (shapes must match)."""
        for name, value in params.items():
            if name not in self.params:
                raise ConfigurationError(f"unknown parameter {name!r}")
            if value.shape != self.params[name].shape:
                raise ConfigurationError(
                    f"parameter {name!r} has shape {value.shape}, "
                    f"expected {self.params[name].shape}")
            self.params[name] = value.copy()
