"""Post-hoc analyses: blocked-time bottlenecks, model sensitivity."""

from .bottleneck import (
    BlockedTimeReport,
    TimeBreakdown,
    blocked_time_analysis,
    time_breakdown,
)
from .sensitivity import DEFAULT_EPSILON, Sensitivities, model_sensitivities

__all__ = [
    "TimeBreakdown", "time_breakdown",
    "BlockedTimeReport", "blocked_time_analysis",
    "Sensitivities", "model_sensitivities", "DEFAULT_EPSILON",
]
