"""Table 2: encode/decode times for ResNet-50 at 16 GPUs."""

from repro.experiments import run_table2


def test_table2_encode_decode(run_once, show):
    result = run_once(run_table2, measure_numeric=False)
    show(result, "{:.2f}")

    # Every row within 7% of the paper's measurement (PowerSGD rows are
    # exact by calibration; Top-K carries the least-squares residual).
    for row in result.rows:
        rel = abs(row["model_ms"] - row["paper_ms"]) / row["paper_ms"]
        assert rel < 0.07, (row["method"], row["parameter"])

    # Orderings the paper's text leans on: signSGD fastest; Top-K
    # hundreds of ms regardless of density; PowerSGD grows with rank.
    sign = result.single(method="signsgd")["model_ms"]
    assert sign < 25
    for row in result.select(method="topk"):
        assert row["model_ms"] > 200
    ranks = [result.single(method="powersgd",
                           parameter=f"rank-{r}")["model_ms"]
             for r in (4, 8, 16)]
    assert ranks == sorted(ranks)
