"""Ablation: incast and the Figure-8 signSGD model error (DESIGN.md §5).

The paper blames its 14.2% signSGD underprediction on all-gather incast.
This ablation proves the mechanism in our reproduction: with the fabric's
incast model switched off, the analytic model's signSGD error collapses
to the all-reducible schemes' level; with it on, the error re-appears and
grows with scale.
"""

from repro.compression import SignSGDScheme
from repro.core import calibrate, predict
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.network import Fabric
from repro.simulator import DDPSimulator


def signsgd_model_error(incast_per_sender: float, gpus: int) -> float:
    model = get_model("resnet101")
    cluster = cluster_for_gpus(gpus)
    fabric = Fabric(cluster, incast_per_sender=incast_per_sender)
    sim = DDPSimulator(model, cluster, scheme=SignSGDScheme(),
                       fabric=fabric)
    measured = sim.run(64, iterations=60, warmup=10).mean
    report = calibrate(model, cluster, batch_size=64, fabric=fabric)
    predicted = predict(model, SignSGDScheme(), report.inputs).total
    return (measured - predicted) / measured


def run_ablation():
    return {
        ("off", 32): signsgd_model_error(0.0, 32),
        ("off", 96): signsgd_model_error(0.0, 96),
        ("on", 32): signsgd_model_error(0.008, 32),
        ("on", 96): signsgd_model_error(0.008, 96),
    }


def test_ablation_incast_explains_signsgd_error(run_once):
    errors = run_once(run_ablation)
    print("\nsignSGD model error (measured - predicted) / measured:")
    for (mode, gpus), err in errors.items():
        print(f"  incast {mode:>3} @ {gpus} GPUs: {err:+.1%}")

    # Without incast the model tracks signSGD tightly...
    assert abs(errors[("off", 96)]) < 0.05
    # ...with incast the paper's error structure appears: the model
    # underpredicts, and more so at larger scale.
    assert errors[("on", 96)] > 0.15
    assert errors[("on", 96)] > errors[("on", 32)]
