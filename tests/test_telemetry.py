"""Telemetry subsystem: metrics registry, structured logs, manifests."""

import io
import json

import pytest

from repro.engine.fingerprint import digest
from repro.errors import ConfigurationError
from repro.telemetry import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    StructuredLogger,
    build_manifest,
    format_key,
    get_logger,
    get_registry,
    metric_key,
    read_manifest,
    set_registry,
    verify_manifest,
    write_manifest,
)
from repro.telemetry import logs as telemetry_logs
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry.metrics import MAX_HISTOGRAM_SAMPLES


@pytest.fixture(autouse=True)
def _isolate_telemetry():
    """Restore the process-global registry and log sink after each test."""
    previous = get_registry()
    yield
    set_registry(previous)
    telemetry_logs.configure()


class TestMetricKey:
    def test_no_labels(self):
        assert format_key(metric_key("hits", {})) == "hits"

    def test_labels_sorted_and_stringified(self):
        key = metric_key("calls", {"b": 2, "a": "x"})
        assert key == ("calls", (("a", "x"), ("b", "2")))
        assert format_key(key) == 'calls{a="x",b="2"}'

    def test_label_order_does_not_matter(self):
        assert metric_key("m", {"a": 1, "b": 2}) \
            == metric_key("m", {"b": 2, "a": 1})

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            metric_key("", {})


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == pytest.approx(13.0)


class TestHistogram:
    def test_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0

    def test_percentile_range_validated(self):
        with pytest.raises(ConfigurationError):
            Histogram().percentile(101)

    def test_empty_summary_is_zeros(self):
        s = Histogram().summary()
        assert s["count"] == 0 and s["mean"] == 0.0 and s["p99"] == 0.0

    def test_summary_keys(self):
        h = Histogram()
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "total", "mean", "min", "max", "p50", "p90", "p99"}

    def test_sample_cap_keeps_exact_aggregates(self):
        h = Histogram()
        h._samples = [0.0] * MAX_HISTOGRAM_SAMPLES  # simulate a full buffer
        h.count = MAX_HISTOGRAM_SAMPLES
        h.observe(7.0)
        assert h.count == MAX_HISTOGRAM_SAMPLES + 1
        assert h.max == 7.0
        assert len(h._samples) == MAX_HISTOGRAM_SAMPLES


class TestMetricsRegistry:
    def test_same_name_and_labels_share_a_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="b").inc()
        snap = reg.snapshot()
        assert snap["counters"]['hits{kind="a"}'] == 2.0
        assert snap["counters"]['hits{kind="b"}'] == 1.0

    def test_snapshot_sections_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        reg.gauge("util").set(0.5)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["gauges"]["util"] == 0.5
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.histogram("h", scheme="powersgd").observe(0.25)
        json.dumps(reg.snapshot())


class TestNullRegistry:
    def test_disabled_and_inert(self):
        reg = NullRegistry()
        assert reg.enabled is False
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_handles_are_the_shared_singleton(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.histogram("b", x="y")


class TestGlobalRegistry:
    def test_default_is_null(self):
        # The autouse fixture restores whatever was installed; within a
        # fresh process the default is the null backend.
        telemetry_metrics.disable()
        assert not get_registry().enabled

    def test_enable_installs_live_registry(self):
        reg = telemetry_metrics.enable()
        assert get_registry() is reg and reg.enabled

    def test_set_registry_returns_previous(self):
        first = telemetry_metrics.enable()
        previous = set_registry(MetricsRegistry())
        assert previous is first

    def test_none_rejected(self):
        with pytest.raises(ConfigurationError):
            set_registry(None)


class TestStructuredLogs:
    def test_text_rendering_keeps_error_prefix(self):
        sink = io.StringIO()
        telemetry_logs.configure(level="debug", stream=sink)
        get_logger("t").error("boom", code=2)
        assert sink.getvalue() == "error: boom code=2\n"

    def test_threshold_filters(self):
        sink = io.StringIO()
        telemetry_logs.configure(level="warning", stream=sink)
        log = get_logger("t")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        assert sink.getvalue() == "warning: loud\n"

    def test_json_mode_one_object_per_line(self):
        sink = io.StringIO()
        telemetry_logs.configure(level="debug", json_mode=True, stream=sink)
        log = get_logger("repro.test")
        log.info("first", n=1)
        log.error("second")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["level"] == "info"
        assert first["logger"] == "repro.test"
        assert first["event"] == "first"
        assert first["n"] == 1
        assert isinstance(first["ts"], float)

    def test_json_reserved_key_collision_prefixed(self):
        sink = io.StringIO()
        telemetry_logs.configure(level="debug", json_mode=True, stream=sink)
        get_logger("t").info("e", level="inner")
        record = json.loads(sink.getvalue())
        assert record["level"] == "info"
        assert record["field_level"] == "inner"

    def test_json_non_serializable_field_repred(self):
        sink = io.StringIO()
        telemetry_logs.configure(level="debug", json_mode=True, stream=sink)
        get_logger("t").info("e", obj={1, 2})
        record = json.loads(sink.getvalue())
        assert record["obj"].startswith("{")  # repr of a set

    def test_get_logger_cached(self):
        assert get_logger("same") is get_logger("same")

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            telemetry_logs.configure(level="loud")
        with pytest.raises(ConfigurationError):
            get_logger("t").log("loud", "e")

    def test_empty_logger_name_rejected(self):
        with pytest.raises(ConfigurationError):
            StructuredLogger("")


class TestManifest:
    CONFIG = {"command": "experiment", "id": "table1", "jobs": 2}

    def test_build_fields(self):
        m = build_manifest("experiment table1", dict(self.CONFIG), 1.5)
        assert m["manifest_version"] == MANIFEST_VERSION
        assert m["command"] == "experiment table1"
        assert m["config"] == self.CONFIG
        assert m["wall_time_s"] == 1.5
        assert m["package"]["name"] == "repro"
        assert m["metrics"] == {} and m["results"] == {}

    def test_fingerprint_is_engine_digest_of_config(self):
        m = build_manifest("x", dict(self.CONFIG), 0.0)
        assert m["fingerprint"] == digest(self.CONFIG)

    def test_verify_roundtrip_and_tamper_detection(self):
        m = build_manifest("x", dict(self.CONFIG), 0.0)
        assert verify_manifest(m)
        m["config"]["jobs"] = 99
        assert not verify_manifest(m)

    def test_verify_malformed_is_false(self):
        assert not verify_manifest({})
        assert not verify_manifest({"config": {}, "fingerprint": None})

    def test_negative_wall_time_rejected(self):
        with pytest.raises(ConfigurationError):
            build_manifest("x", {}, -1.0)

    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / MANIFEST_FILENAME)
        m = build_manifest("x", dict(self.CONFIG), 2.0,
                           metrics={"counters": {"a": 1.0}, "gauges": {},
                                    "histograms": {}},
                           results={"exhibits": {"table1": {"rows": 5}}})
        write_manifest(path, m)
        loaded = read_manifest(path)
        assert loaded == m
        assert verify_manifest(loaded)

    def test_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / MANIFEST_FILENAME
        write_manifest(str(path), build_manifest("x", {}, 0.0))
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_FILENAME]

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_manifest(str(tmp_path / "nope.json"))

    def test_read_non_object_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            read_manifest(str(path))
