"""Hybrid compression policy and Chrome trace export."""

import json

import numpy as np
import pytest

from repro.compression import (
    HybridPowerSGDScheme,
    PowerSGDScheme,
    make_scheme,
)
from repro.errors import ConfigurationError
from repro.hardware import cluster_for_gpus
from repro.models import get_model
from repro.simulator import (
    DDPConfig,
    DDPSimulator,
    trace_to_chrome_json,
    trace_to_events,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


class TestHybridScheme:
    def test_threshold_zero_covers_almost_everything(self, rn50):
        hybrid = HybridPowerSGDScheme(4, min_layer_params=0)
        # Only non-matrix tensors (BN) stay dense.
        assert hybrid.coverage(rn50) > 0.99

    def test_partition_respects_threshold(self, rn50):
        hybrid = HybridPowerSGDScheme(4, min_layer_params=100_000)
        compressed, dense = hybrid.partition(rn50)
        assert all(l.num_params >= 100_000 for l in compressed)
        assert all(not l.has_matrix or l.num_params < 100_000
                   for l in dense)
        assert len(compressed) + len(dense) == len(rn50.trainable_layers)

    def test_encode_cheaper_than_full_powersgd(self, rn50):
        full = PowerSGDScheme(4).cost(rn50, 96)
        hybrid = HybridPowerSGDScheme(4, 100_000).cost(rn50, 96)
        assert hybrid.encode_decode_s < 0.8 * full.encode_decode_s

    def test_wire_larger_than_full_powersgd(self, rn50):
        full = PowerSGDScheme(4).cost(rn50, 96)
        hybrid = HybridPowerSGDScheme(4, 100_000).cost(rn50, 96)
        assert hybrid.wire_bytes > full.wire_bytes
        # ...but still a large compression overall.
        assert hybrid.compression_ratio(rn50) > 10

    def test_hybrid_beats_full_on_resnet(self, rn50):
        """The Figure-13 lesson made concrete: trading ratio for encode
        speed wins on many-small-layer models."""
        from repro.core import PerfModelInputs, predict
        inputs = PerfModelInputs(world_size=96,
                                 bandwidth_bytes_per_s=1.25e9,
                                 batch_size=64)
        full = predict(rn50, PowerSGDScheme(4), inputs).total
        hybrid = predict(rn50, HybridPowerSGDScheme(4, 100_000),
                         inputs).total
        assert hybrid < full

    def test_huge_threshold_degenerates_to_dense(self, rn50):
        hybrid = HybridPowerSGDScheme(4, min_layer_params=10**9)
        cost = hybrid.cost(rn50, 8)
        assert cost.wire_bytes == pytest.approx(rn50.grad_bytes)
        assert cost.messages == 1

    def test_registered(self):
        scheme = make_scheme("hybrid-powersgd", rank=8,
                             min_layer_params=50_000)
        assert scheme.rank == 8

    def test_simulator_accepts_hybrid(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(16),
                           scheme=HybridPowerSGDScheme(4, 100_000))
        assert sim.run(64, iterations=6, warmup=1).mean > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HybridPowerSGDScheme(0)
        with pytest.raises(ConfigurationError):
            HybridPowerSGDScheme(4, min_layer_params=-1)


class TestChromeTraceExport:
    @pytest.fixture
    def trace(self, rn50):
        sim = DDPSimulator(rn50, cluster_for_gpus(8),
                           config=DDPConfig(compute_jitter=0.0,
                                            comm_jitter=0.0))
        return sim.simulate_iteration(64, np.random.default_rng(0))

    def test_events_cover_all_spans(self, trace):
        events = trace_to_events(trace)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(trace.spans)

    def test_metadata_names_tracks(self, trace):
        events = trace_to_events(trace)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"compute", "comm", "worker0"} <= names

    def test_timestamps_in_microseconds(self, trace):
        events = trace_to_events(trace)
        fwd = next(e for e in events if e.get("name") == "forward")
        span = next(s for s in trace.spans if s.label == "forward")
        assert fwd["ts"] == pytest.approx(span.start * 1e6)
        assert fwd["dur"] == pytest.approx(span.duration * 1e6)

    def test_json_round_trips(self, trace):
        payload = json.loads(trace_to_chrome_json(trace))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"]

    def test_write_to_file(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(trace, str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_empty_trace_rejected(self):
        from repro.simulator.trace import IterationTrace
        with pytest.raises(ConfigurationError):
            trace_to_events(IterationTrace())
