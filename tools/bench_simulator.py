#!/usr/bin/env python
"""Simulator performance baseline: measure, record, and gate.

Measures the cold wall time and simulated-iteration throughput of the
simulator-bound paper exhibits under both execution schemes (event loop
vs the vectorized batch fast path) and writes ``BENCH_simulator.json``
at the repository root — the perf trajectory future PRs regress
against.

Two entry modes:

``--output PATH`` (default)
    Measure and (re)write the baseline file.  ``make bench`` runs this
    before the full pytest benchmark suite.

``--check``
    Measure again and compare against the checked-in baseline,
    failing (exit 1) when the fast path's *relative* advantage decayed
    by more than ``--tolerance`` (default 2x).  The gate compares the
    auto/event wall-time **ratio**, not absolute seconds, so a slower
    CI machine cannot fail it — only a genuinely regressed fast path
    can.  ``make bench-smoke`` and the CI ``bench-smoke`` job run this
    over a two-exhibit subset (``--smoke``).

Measurements run serial, cache-less, telemetry-off — the worst-case
cold configuration a first ``repro experiment`` run pays.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.engine import ExperimentEngine, JobOutcome, SimJob  # noqa: E402
from repro.experiments import EXPERIMENTS  # noqa: E402

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_simulator.json")

#: Simulator-bound exhibits (their cost is ``DDPSimulator.run`` grids;
#: the analytic figures cost milliseconds and would only add noise).
DEFAULT_EXHIBITS = ["fig3", "fig4", "fig5", "fig6", "fig7"]
SMOKE_EXHIBITS = ["fig4", "fig7"]

MODES = ["event", "auto"]

#: Cold event-path wall seconds measured at the commit immediately
#: before the batch fast path landed — the "before" column of the
#: trajectory this baseline starts.  Absolute numbers are
#: machine-specific; the --check gate never reads them.
PRE_FASTPATH_EVENT_WALL_S = {
    "fig3": 0.05, "fig4": 0.42, "fig5": 0.39, "fig6": 0.24, "fig7": 0.09,
}


class _CountingEngine(ExperimentEngine):
    """Serial engine that counts the simulated iterations it executed,
    so the baseline can report throughput, not just wall time."""

    def __init__(self, sim_mode: str):
        super().__init__(jobs=1, cache=None, sim_mode=sim_mode)
        self.sim_iterations = 0

    def run_outcomes(self, batch) -> List[JobOutcome]:
        outcomes = super().run_outcomes(batch)
        for outcome in outcomes:
            if outcome.result is not None:
                self.sim_iterations += outcome.job.iterations
        return outcomes


def measure(exhibits: List[str]) -> Dict[str, dict]:
    """Time each exhibit cold under every mode; returns the report rows."""
    rows: Dict[str, dict] = {}
    for exp_id in exhibits:
        runner = EXPERIMENTS[exp_id]
        if "engine" not in inspect.signature(runner).parameters:
            print(f"  [skip] {exp_id}: not an engine-backed exhibit")
            continue
        row: Dict[str, dict] = {}
        for mode in MODES:
            engine = _CountingEngine(sim_mode=mode)
            started = time.perf_counter()
            runner(engine=engine)
            wall = time.perf_counter() - started
            iters = engine.sim_iterations
            row[mode] = {
                "wall_s": round(wall, 4),
                "sim_iterations": iters,
                "iters_per_s": round(iters / wall, 1) if wall > 0 else 0.0,
            }
        speedup = (row["event"]["wall_s"] / row["auto"]["wall_s"]
                   if row["auto"]["wall_s"] > 0 else float("inf"))
        row["speedup"] = round(speedup, 2)
        rows[exp_id] = row
        print(f"  [{exp_id}] event {row['event']['wall_s']:.3f} s, "
              f"auto {row['auto']['wall_s']:.3f} s "
              f"({row['speedup']:.1f}x, "
              f"{row['auto']['iters_per_s']:.0f} iters/s)")
    return rows


def build_report(rows: Dict[str, dict]) -> dict:
    """Wrap measured rows in the BENCH_simulator.json schema."""
    return {
        "schema": 1,
        "generated_by": "tools/bench_simulator.py",
        "protocol": {
            "modes": MODES,
            "engine": "serial, no cache, telemetry off (cold worst case)",
            "note": ("speedup = event wall / auto wall; the --check gate "
                     "compares this machine-independent ratio"),
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "before": {
            "event_wall_s": PRE_FASTPATH_EVENT_WALL_S,
            "note": ("cold event-path walls measured before the batch "
                     "fast path and call-site memoization landed"),
        },
        "exhibits": rows,
    }


def check(baseline_path: str, exhibits: List[str],
          tolerance: float) -> int:
    """Re-measure and gate against the checked-in baseline ratios."""
    if not os.path.exists(baseline_path):
        print(f"error: no baseline at {baseline_path}; "
              f"run tools/bench_simulator.py first", file=sys.stderr)
        return 1
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_rows = baseline.get("exhibits", {})
    exhibits = [e for e in exhibits if e in base_rows]
    print(f"re-measuring {', '.join(exhibits)} against {baseline_path} "
          f"(tolerance {tolerance:g}x on the auto/event ratio)")
    rows = measure(exhibits)
    failed = []
    for exp_id, row in rows.items():
        base = base_rows[exp_id]
        base_ratio = (base["auto"]["wall_s"] / base["event"]["wall_s"]
                      if base["event"]["wall_s"] > 0 else 1.0)
        cur_ratio = (row["auto"]["wall_s"] / row["event"]["wall_s"]
                     if row["event"]["wall_s"] > 0 else 1.0)
        limit = base_ratio * tolerance
        verdict = "ok" if cur_ratio <= limit else "REGRESSED"
        print(f"  [{exp_id}] auto/event ratio {cur_ratio:.3f} "
              f"(baseline {base_ratio:.3f}, limit {limit:.3f}) {verdict}")
        if cur_ratio > limit:
            failed.append(exp_id)
    if failed:
        print(f"FAIL: fast-path regression on {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("bench check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: write the baseline or gate against it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_BASELINE,
                        metavar="PATH",
                        help="where to write the baseline JSON "
                             "(default: BENCH_simulator.json at repo root)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in baseline "
                             "instead of rewriting it")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed auto/event ratio inflation before "
                             "--check fails (default: 2.0)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"only measure {', '.join(SMOKE_EXHIBITS)} "
                             f"(the CI smoke subset)")
    parser.add_argument("--exhibits", nargs="*", default=None,
                        help="explicit exhibit ids to measure")
    args = parser.parse_args(argv)

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    exhibits = (args.exhibits if args.exhibits
                else SMOKE_EXHIBITS if args.smoke else DEFAULT_EXHIBITS)
    unknown = [e for e in exhibits if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown exhibits: {', '.join(unknown)}")

    if args.check:
        return check(args.output, exhibits, args.tolerance)

    print(f"measuring {', '.join(exhibits)} (cold, serial, both modes)")
    report = build_report(measure(exhibits))
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
