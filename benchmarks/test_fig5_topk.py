"""Figure 5: Top-K scalability (and its BERT OOM cliff)."""

import math

from repro.experiments import run_fig5


def test_fig5_topk_scalability(run_once, show):
    result = run_once(run_fig5, iterations=110, warmup=10)
    show(result)

    # --- Top-K never beats syncSGD, at any density, model or scale.
    for row in result.rows:
        if row["scheme"] == "syncsgd" or row["oom"]:
            continue
        base = result.single(model=row["model"], scheme="syncsgd",
                             gpus=row["gpus"])["mean_ms"]
        assert row["mean_ms"] > base, (row["model"], row["scheme"],
                                       row["gpus"])

    # --- The gap widens with scale (all-gather is linear in p).
    for fraction in ("topk(1%)", "topk(10%)", "topk(20%)"):
        small = result.single(model="resnet101", scheme=fraction,
                              gpus=8)["mean_ms"]
        large = result.single(model="resnet101", scheme=fraction,
                              gpus=96)["mean_ms"]
        assert large > 1.4 * small, fraction

    # --- BERT cannot scale past 32 GPUs (paper's figure note).
    for gpus in (8, 16, 32):
        row = result.single(model="bert-base", scheme="topk(1%)",
                            gpus=gpus)
        assert not row["oom"] and math.isfinite(row["mean_ms"])
    for gpus in (64, 96):
        assert result.single(model="bert-base", scheme="topk(1%)",
                             gpus=gpus)["oom"]
