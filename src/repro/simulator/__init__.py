"""Discrete-event cluster training simulator (the paper's testbed stand-in)."""

from .ddp import DDPConfig, DDPSimulator, TimingResult
from .events import EventQueue
from .export import (
    allocate_track_ids,
    events_to_chrome_json,
    run_to_events,
    trace_to_chrome_json,
    trace_to_events,
    traces_to_events,
    write_chrome_trace,
    write_run_trace,
)
from .trace import (
    COMM_STREAM,
    COMPUTE_STREAM,
    IterationTrace,
    Span,
    estimate_gamma,
)

__all__ = [
    "EventQueue", "Span", "IterationTrace", "estimate_gamma",
    "COMPUTE_STREAM", "COMM_STREAM",
    "DDPConfig", "DDPSimulator", "TimingResult",
    "trace_to_events", "traces_to_events", "run_to_events",
    "allocate_track_ids", "events_to_chrome_json",
    "trace_to_chrome_json", "write_chrome_trace", "write_run_trace",
]
