#!/usr/bin/env python
"""Simulator performance baseline: measure, record, and gate.

Measures the cold wall time and simulated-iteration throughput of the
simulator-bound paper exhibits under both execution schemes (event loop
vs the vectorized batch fast path) and writes ``BENCH_simulator.json``
at the repository root — the perf trajectory future PRs regress
against.

Two entry modes:

``--output PATH`` (default)
    Measure and (re)write the baseline file.  ``make bench`` runs this
    before the full pytest benchmark suite.

``--check``
    Measure again and compare against the checked-in baseline,
    failing (exit 1) when the fast path's *relative* advantage decayed
    by more than ``--tolerance`` (default 2x).  The gate compares the
    auto/event wall-time **ratio**, not absolute seconds, so a slower
    CI machine cannot fail it — only a genuinely regressed fast path
    can.  ``make bench-smoke`` and the CI ``bench-smoke`` job run this
    over a two-exhibit subset (``--smoke``).

Besides the simulator exhibits, both modes measure the **what-if
section**: dense (512-point) closed-form sweeps on the fig11/fig12
workloads, evaluated once through the vectorized grid kernel
(:mod:`repro.core.grid`) and once as a scalar per-point loop.  The
recorded ``speedup`` (scalar wall / grid wall) is the grid kernel's
advantage; ``--check`` gates on the same machine-independent ratio
plus a hard 5x floor.

A **faulted section** does the same for fault-schedule-bearing runs:
the reliability exhibit (clean + NIC-straggler + compute-straggler
rows across the bandwidth sweep) is timed under both modes — ``auto``
takes the masked batch kernels with cross-config family stacking,
``event`` the per-iteration loop — and ``--check`` (including the
smoke subset) gates on the auto/event ratio plus a hard 3x floor.

A **traced section** measures what run tracing costs on the fast path:
the full ``repro experiment fig4`` sweep (auto mode, serial, no cache)
with ``--trace-run`` — engine/job spans, per-run batch-kernel span
reconstruction, Perfetto export — against the identical untraced
invocation.  ``--check`` (including the smoke subset) fails when the
traced/plain wall ratio exceeds a hard 1.5x ceiling — tracing must
stay a light overlay, never a reason to dodge the batch path.

A **serving section** measures the persistent scheduler the way a
deployment sees it: a 200-request simulate burst through an in-process
:class:`repro.serving.ServingScheduler` (admission, batching window,
engine coalescing, result fan-out — everything but the HTTP socket),
once against a cold on-disk cache and once warm.  Recorded per run:
requests/s, p50/p99 latency, and mean batch occupancy.  ``--check``
(including the smoke subset) gates on the warm/cold throughput ratio —
a warm replay must stay at least ``SERVING_MIN_WARM_SPEEDUP``x faster,
or the cache stopped carrying the serving path.

A **cache section** measures the tiered simulation cache directly:
(1) batched lookups over a populated cache served from the in-process
hot tier vs from per-key legacy disk files — the recorded
``hot_speedup`` must stay at least ``CACHE_MIN_HOT_SPEEDUP``x; and
(2) a simulate burst through a fresh scheduler over an already
populated cache, once plainly warm (pack-tier hits) and once
warm-started with ``preload`` (the ``repro serve --cache-preload``
path) — the preloaded burst's p50 latency must stay within
``CACHE_PRELOAD_MAX_P50_RATIO``x of the warm burst's.  Both gates are
same-host ratios, so they hold on any machine.

An **advisor section** measures the auto-advisor's sharded Pareto
sweep (``repro advise``): the full default grid — every registered
scheme × hyperparameters × world sizes × 8192 bandwidth points, over
1.5 million configurations — priced serially through bounded engine
shards and reduced to its frontier.  Recorded: configs/s and the
frontier size.  ``--check`` (including the smoke subset) gates on a
hard ``ADVISOR_MIN_CONFIGS_PER_S`` throughput floor; the sweep is pure
vectorized pricing, so a machine slow enough to trip a 100k configs/s
floor indicates a structural regression (per-point Python, shard
explosion), not a slow host.

Every baseline rewrite appends a timestamped entry to the ``history``
list (exhibit + what-if rows and the host that measured them), so the
file accumulates the perf trajectory instead of forgetting it; the
``before`` block from the original baseline is carried over verbatim.

Measurements run serial, cache-less, telemetry-off — the worst-case
cold configuration a first ``repro experiment`` run pays.
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import io
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from dataclasses import replace  # noqa: E402

from repro.compression.kernel_cost import v100_kernel_profile  # noqa: E402
from repro.compression.schemes import PowerSGDScheme  # noqa: E402
from repro.core import PerfModelInputs  # noqa: E402
from repro.core.grid import (  # noqa: E402
    compressed_time_grid,
    syncsgd_time_grid,
)
from repro.core.perf_model import compressed_time, syncsgd_time  # noqa: E402
from repro.engine import (  # noqa: E402
    ExperimentEngine,
    JobOutcome,
    SimJob,
    SimulationCache,
)
from repro.serving import ServingScheduler, parse_request  # noqa: E402
from repro.experiments import EXPERIMENTS, EXTRA_EXPERIMENTS  # noqa: E402
from repro.cli import main as repro_main  # noqa: E402
from repro.hardware.gpus import V100  # noqa: E402
from repro.models import get_model  # noqa: E402
from repro.units import gbps_to_bytes_per_s  # noqa: E402

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_simulator.json")

#: Simulator-bound exhibits (their cost is ``DDPSimulator.run`` grids;
#: the analytic figures cost milliseconds and would only add noise).
DEFAULT_EXHIBITS = ["fig3", "fig4", "fig5", "fig6", "fig7"]
SMOKE_EXHIBITS = ["fig4", "fig7"]

MODES = ["event", "auto"]

#: Dense point count for the what-if grid-vs-scalar section.  The
#: exhibits' own sweeps (a dozen points) finish in microseconds either
#: way; a dense sweep is what makes the comparison measurable.
WHATIF_POINTS = 512

#: Hard floor on the what-if ``speedup`` (scalar wall / grid wall); a
#: machine-independent ratio, so the gate holds on any host.
WHATIF_MIN_SPEEDUP = 5.0

#: Hard floor on the faulted section's ``speedup`` (event wall / auto
#: wall over the reliability exhibit).  The faulted batch kernels plus
#: cross-config family stacking must keep at least this advantage.
#: Recalibrated from 3.0 when model-aggregate memoization
#: (``ModelSpec.num_params`` and friends) roughly halved the *event*
#: path's wall — the denominator got faster, not the fast path slower.
FAULTED_MIN_SPEEDUP = 1.5

#: Hard ceiling on the traced section's ``overhead`` (traced wall /
#: plain wall).  Engine/job span bookkeeping, per-run batch-kernel span
#: reconstruction and Perfetto export together must stay a cheap
#: overlay on top of the fast-path sweep.
TRACED_MAX_OVERHEAD = 1.5

#: Size of the serving section's request burst.
SERVING_REQUESTS = 200

#: Hard floor on the serving section's warm/cold throughput ratio: a
#: replayed burst is answered entirely from the simulation cache, so it
#: must stay at least this much faster than the cold burst that
#: populated it.  Machine-independent (both bursts run on the same
#: host back to back).
SERVING_MIN_WARM_SPEEDUP = 2.0

#: Entries populated for the cache section's lookup comparison.
CACHE_LOOKUP_ENTRIES = 400

#: Hard floor on the cache section's ``hot_speedup`` (per-key legacy
#: disk lookup wall / hot-tier lookup wall over the same keys).  A
#: dict probe must beat an ``open`` + ``json.load`` by at least this
#: much or the hot tier stopped paying for itself.
CACHE_MIN_HOT_SPEEDUP = 5.0

#: Hard ceiling on the cache section's ``preload_p50_ratio``
#: (preloaded-burst p50 latency / warm-burst p50 latency).  A server
#: warm-started with ``--cache-preload`` must serve its first burst
#: about as fast as one that already absorbed a burst.
CACHE_PRELOAD_MAX_P50_RATIO = 1.5

#: Size of the cache section's serving bursts (smaller than the
#: serving section's: these bursts are all cache hits).
CACHE_BURST_REQUESTS = 120

#: Hard floor on the advisor section's ``configs_per_s``.  The sweep
#: prices ~1.5M configurations through vectorized grid shards in well
#: under a second on any modern host; dipping below 100k configs/s
#: means a structural regression (a per-point Python loop, shard
#: explosion, cache thrash), not a slow machine.
ADVISOR_MIN_CONFIGS_PER_S = 100_000

#: The exhibit the traced section sweeps: the largest auto-mode
#: workload in the default set, so the fixed trace-export epilogue is
#: amortized the way a real traced run amortizes it.
TRACED_EXHIBIT = "fig4"

#: Cold event-path wall seconds measured at the commit immediately
#: before the batch fast path landed — the "before" column of the
#: trajectory this baseline starts.  Absolute numbers are
#: machine-specific; the --check gate never reads them.
PRE_FASTPATH_EVENT_WALL_S = {
    "fig3": 0.05, "fig4": 0.42, "fig5": 0.39, "fig6": 0.24, "fig7": 0.09,
}


class _CountingEngine(ExperimentEngine):
    """Serial engine that counts the simulated iterations it executed,
    so the baseline can report throughput, not just wall time."""

    def __init__(self, sim_mode: str):
        super().__init__(jobs=1, cache=None, sim_mode=sim_mode)
        self.sim_iterations = 0

    def run_outcomes(self, batch) -> List[JobOutcome]:
        outcomes = super().run_outcomes(batch)
        for outcome in outcomes:
            if outcome.result is not None:
                self.sim_iterations += outcome.job.iterations
        return outcomes


def measure(exhibits: List[str]) -> Dict[str, dict]:
    """Time each exhibit cold under every mode; returns the report rows."""
    rows: Dict[str, dict] = {}
    for exp_id in exhibits:
        runner = EXPERIMENTS[exp_id]
        if "engine" not in inspect.signature(runner).parameters:
            print(f"  [skip] {exp_id}: not an engine-backed exhibit")
            continue
        row: Dict[str, dict] = {}
        for mode in MODES:
            engine = _CountingEngine(sim_mode=mode)
            started = time.perf_counter()
            runner(engine=engine)
            wall = time.perf_counter() - started
            iters = engine.sim_iterations
            row[mode] = {
                "wall_s": round(wall, 4),
                "sim_iterations": iters,
                "iters_per_s": round(iters / wall, 1) if wall > 0 else 0.0,
            }
        speedup = (row["event"]["wall_s"] / row["auto"]["wall_s"]
                   if row["auto"]["wall_s"] > 0 else float("inf"))
        row["speedup"] = round(speedup, 2)
        rows[exp_id] = row
        print(f"  [{exp_id}] event {row['event']['wall_s']:.3f} s, "
              f"auto {row['auto']['wall_s']:.3f} s "
              f"({row['speedup']:.1f}x, "
              f"{row['auto']['iters_per_s']:.0f} iters/s)")
    return rows


def _best_wall(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` — the repeatable floor,
    which keeps the gated ratios stable on noisy CI machines."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_whatif(points: int = WHATIF_POINTS) -> Dict[str, dict]:
    """Time dense what-if sweeps through the grid kernel vs a scalar
    per-point loop on the fig11/fig12 ResNet-50 workload."""
    model = get_model("resnet50")
    scheme = PowerSGDScheme(rank=4)
    profile = v100_kernel_profile()
    inputs = PerfModelInputs(
        world_size=64,
        bandwidth_bytes_per_s=gbps_to_bytes_per_s(10.0),
        batch_size=64)
    bandwidths = np.linspace(gbps_to_bytes_per_s(1.0),
                             gbps_to_bytes_per_s(30.0), points)
    factors = np.linspace(1.0, 4.0, points)

    def grid_bandwidth() -> None:
        syncsgd_time_grid(model, inputs, bandwidth_bytes_per_s=bandwidths)
        compressed_time_grid(model, scheme, inputs,
                             bandwidth_bytes_per_s=bandwidths)

    def scalar_bandwidth() -> None:
        for bw in bandwidths:
            point = replace(inputs, bandwidth_bytes_per_s=float(bw))
            syncsgd_time(model, point)
            compressed_time(model, scheme, point)

    def grid_compute() -> None:
        syncsgd_time_grid(model, inputs, compute_factor=factors)
        compressed_time_grid(model, scheme, inputs, compute_factor=factors)

    def scalar_compute() -> None:
        for factor in factors:
            gpu = V100.scaled(float(factor))
            syncsgd_time(model, inputs, gpu)
            compressed_time(model, scheme, inputs, gpu,
                            profile.scaled(float(factor)))

    sweeps = {
        "fig11_bandwidth": (grid_bandwidth, scalar_bandwidth),
        "fig12_compute": (grid_compute, scalar_compute),
    }
    rows: Dict[str, dict] = {}
    for name, (grid_fn, scalar_fn) in sweeps.items():
        grid_wall = _best_wall(grid_fn)
        scalar_wall = _best_wall(scalar_fn)
        speedup = (scalar_wall / grid_wall if grid_wall > 0
                   else float("inf"))
        rows[name] = {
            "points": points,
            "grid": {"wall_s": round(grid_wall, 5)},
            "scalar": {"wall_s": round(scalar_wall, 5)},
            "speedup": round(speedup, 2),
        }
        print(f"  [{name}] scalar {scalar_wall:.4f} s, "
              f"grid {grid_wall:.4f} s ({speedup:.1f}x over "
              f"{points} points)")
    return rows


def measure_faulted() -> Dict[str, dict]:
    """Time the fault-schedule-heavy reliability exhibit both ways.

    The reliability study is the repository's faulted workload: every
    row but the clean one carries a fault schedule, and its
    clean/NIC-straggler/compute-straggler triplets form natural
    cross-config families.  Under ``auto`` those run through the
    masked batch kernels (stacked per family by the engine); under
    ``event`` every job walks the per-iteration loop.  Results are
    bit-identical, so the wall ratio is pure fast-path advantage.
    """
    runner = EXTRA_EXPERIMENTS["reliability"]
    row: Dict[str, dict] = {}
    for mode in MODES:
        engine = _CountingEngine(sim_mode=mode)
        started = time.perf_counter()
        runner(engine=engine)
        wall = time.perf_counter() - started
        iters = engine.sim_iterations
        row[mode] = {
            "wall_s": round(wall, 4),
            "sim_iterations": iters,
            "iters_per_s": round(iters / wall, 1) if wall > 0 else 0.0,
        }
        if mode == "auto":
            row[mode]["jobs_batched"] = engine.jobs_batched
    speedup = (row["event"]["wall_s"] / row["auto"]["wall_s"]
               if row["auto"]["wall_s"] > 0 else float("inf"))
    row["speedup"] = round(speedup, 2)
    print(f"  [reliability] event {row['event']['wall_s']:.3f} s, "
          f"auto {row['auto']['wall_s']:.3f} s "
          f"({row['speedup']:.1f}x, "
          f"{row['auto']['jobs_batched']} jobs family-batched)")
    return {"reliability": row}


def measure_traced() -> Dict[str, dict]:
    """Time a fully traced CLI sweep against the identical untraced one.

    Runs ``repro experiment fig4`` (auto mode, serial, no cache)
    through the real CLI entry point twice: once bare, once with
    ``--trace-run`` — which turns on engine/job span bookkeeping,
    worker context propagation, per-run batch-kernel span
    reconstruction, and the Perfetto export.  The ratio is everything a
    user pays for a traced run; the gate is a hard ceiling on it, so
    tracing can never quietly grow into a reason to avoid the fast
    path.  Results are unaffected either way (tracing is observability
    only), so the comparison is pure overhead.
    """
    sink = io.StringIO()
    tmp = tempfile.mkdtemp(prefix="bench-traced-")
    trace_path = os.path.join(tmp, "run.json")

    def run(extra: List[str]) -> None:
        with contextlib.redirect_stdout(sink):
            code = repro_main(["experiment", TRACED_EXHIBIT] + extra)
        if code != 0:
            raise RuntimeError(
                f"traced-section sweep exited with {code}")

    plain_wall = _best_wall(lambda: run([]))
    traced_wall = _best_wall(lambda: run(["--trace-run", trace_path]))
    overhead = (traced_wall / plain_wall if plain_wall > 0
                else float("inf"))
    row = {
        "exhibit": TRACED_EXHIBIT,
        "plain": {"wall_s": round(plain_wall, 5)},
        "traced": {"wall_s": round(traced_wall, 5)},
        "overhead": round(overhead, 3),
    }
    print(f"  [{TRACED_EXHIBIT}] plain {plain_wall:.4f} s, "
          f"traced {traced_wall:.4f} s ({overhead:.2f}x overhead)")
    return {"experiment_trace_run": row}


def measure_serving(requests: int = SERVING_REQUESTS) -> Dict[str, dict]:
    """Drive a simulate burst through the serving scheduler, twice.

    The burst cycles four scheme variants over ``requests`` seeds, so
    the scheduler's batch window has plenty of compatible work to
    coalesce (four ``family_key`` groups).  The first burst runs
    against an empty on-disk cache (every job simulates); the second
    replays the identical burst warm (every job is a cache hit).  The
    in-process scheduler is used directly — admission, batching and
    fan-out without socket noise — so the warm/cold ratio isolates
    what the cache buys the serving path.
    """
    bodies = []
    schemes = [None, "powersgd:rank=4", "powersgd:rank=8", "signsgd"]
    for i in range(requests):
        # 300 iterations keeps each cold simulation meaningfully more
        # expensive than the fixed per-request scheduler overhead, so
        # the warm/cold ratio measures the cache, not queue plumbing.
        body = {"model": "resnet50", "gpus": 8, "iterations": 300,
                "seed": i // len(schemes)}
        spec = schemes[i % len(schemes)]
        if spec is not None:
            body["scheme"] = spec
        bodies.append(body)
    cache_dir = tempfile.mkdtemp(prefix="bench-serving-")

    def burst() -> dict:
        engine = ExperimentEngine(jobs=1, cache=SimulationCache(cache_dir),
                                  sim_mode="auto")
        scheduler = ServingScheduler(engine=engine,
                                     queue_depth=requests + 8,
                                     batch_window_s=0.005,
                                     max_batch_requests=64,
                                     default_timeout_s=120.0)
        try:
            started = time.perf_counter()
            ids = [scheduler.submit(parse_request("simulate", body)).id
                   for body in bodies]
            states = [scheduler.wait(i, timeout_s=120.0) for i in ids]
            wall = time.perf_counter() - started
        finally:
            scheduler.close()
        bad = [s for s in states if s.status != "done"]
        if bad:
            raise RuntimeError(
                f"{len(bad)} serving request(s) did not finish "
                f"(first: {bad[0].status}: {bad[0].error})")
        latencies = sorted(s.finished_unix - s.submitted_unix
                           for s in states)

        def pct(p: float) -> float:
            return latencies[int(round(p * (len(latencies) - 1)))]

        batches = scheduler.batches
        return {
            "requests": len(states),
            "wall_s": round(wall, 4),
            "requests_per_s": round(len(states) / wall, 1),
            "p50_latency_s": round(pct(0.50), 4),
            "p99_latency_s": round(pct(0.99), 4),
            "batches": batches,
            "mean_batch_occupancy": (round(len(states) / batches, 2)
                                     if batches else 0.0),
        }

    try:
        cold = burst()
        warm = burst()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    speedup = (cold["wall_s"] / warm["wall_s"]
               if warm["wall_s"] > 0 else float("inf"))
    row = {
        "burst": requests,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(speedup, 2),
    }
    print(f"  [simulate_burst] cold {cold['wall_s']:.3f} s "
          f"({cold['requests_per_s']:.0f} req/s, "
          f"occupancy {cold['mean_batch_occupancy']:.1f}), "
          f"warm {warm['wall_s']:.3f} s "
          f"({warm['requests_per_s']:.0f} req/s) — "
          f"{row['warm_speedup']:.1f}x warm speedup")
    return {"simulate_burst": row}


def measure_cache(requests: int = CACHE_BURST_REQUESTS) -> Dict[str, dict]:
    """Measure what the cache tiers buy: lookups and warm starts.

    **lookup** — ``CACHE_LOOKUP_ENTRIES`` entries are written in the
    legacy one-file-per-key layout, then the same batched
    ``lookup_many`` resolves every key twice: through a disk-only cache
    (per-key ``open`` + ``json.load``) and through a preloaded hot tier
    (sharded dict probes).  Identical outcomes either way, so the wall
    ratio is pure tier advantage.

    **preload_burst** — a simulate burst populates a cache directory,
    then two fresh schedulers replay it: one plainly warm (first
    lookups fault the pack tier in), one warm-started via ``preload``
    (the ``repro serve --cache-preload`` path, hot tier filled before
    the first request).  Gate: the preloaded p50 stays within
    ``CACHE_PRELOAD_MAX_P50_RATIO``x of the warm p50.
    """
    from repro.core.perf_model import PredictedTime

    lookup_dir = tempfile.mkdtemp(prefix="bench-cache-lookup-")
    try:
        seed = SimulationCache(lookup_dir)
        keys = [f"{i:064x}" for i in range(CACHE_LOOKUP_ENTRIES)]
        for i, key in enumerate(keys):
            seed.put(key, PredictedTime(
                total=1.0 + i, compute=0.5, encode_decode=0.1,
                comm_exposed=0.4))
        seed.close()

        disk_cache = SimulationCache(lookup_dir)
        disk_wall = _best_wall(lambda: disk_cache.lookup_many(keys))
        if len(disk_cache.lookup_many(keys)) != len(keys):
            raise RuntimeError("disk lookup lost entries")
        disk_cache.close()

        hot_cache = SimulationCache(lookup_dir, memory_mb=64)
        hot_cache.preload(memory=True)
        hot_wall = _best_wall(lambda: hot_cache.lookup_many(keys))
        if hot_cache.stats.memory_hits == 0:
            raise RuntimeError("hot tier never served a lookup")
        hot_cache.close()
    finally:
        shutil.rmtree(lookup_dir, ignore_errors=True)
    hot_speedup = disk_wall / hot_wall if hot_wall > 0 else float("inf")
    lookup_row = {
        "entries": CACHE_LOOKUP_ENTRIES,
        "disk": {"wall_s": round(disk_wall, 6),
                 "per_key_us": round(1e6 * disk_wall
                                     / CACHE_LOOKUP_ENTRIES, 2)},
        "hot": {"wall_s": round(hot_wall, 6),
                "per_key_us": round(1e6 * hot_wall
                                    / CACHE_LOOKUP_ENTRIES, 2)},
        "hot_speedup": round(hot_speedup, 2),
    }
    print(f"  [lookup] disk {disk_wall * 1e3:.2f} ms, "
          f"hot {hot_wall * 1e3:.2f} ms over {CACHE_LOOKUP_ENTRIES} "
          f"keys ({hot_speedup:.1f}x hot speedup)")

    bodies = []
    schemes = [None, "powersgd:rank=4", "powersgd:rank=8", "signsgd"]
    for i in range(requests):
        body = {"model": "resnet50", "gpus": 8, "iterations": 300,
                "seed": i // len(schemes)}
        spec = schemes[i % len(schemes)]
        if spec is not None:
            body["scheme"] = spec
        bodies.append(body)
    cache_dir = tempfile.mkdtemp(prefix="bench-cache-serving-")

    def burst(preload: bool) -> dict:
        cache = SimulationCache(cache_dir, memory_mb=64)
        if preload:
            cache.preload(memory=True)
        engine = ExperimentEngine(jobs=1, cache=cache, sim_mode="auto")
        scheduler = ServingScheduler(engine=engine,
                                     queue_depth=requests + 8,
                                     batch_window_s=0.005,
                                     max_batch_requests=64,
                                     default_timeout_s=120.0)
        try:
            started = time.perf_counter()
            ids = [scheduler.submit(parse_request("simulate", body)).id
                   for body in bodies]
            states = [scheduler.wait(i, timeout_s=120.0) for i in ids]
            wall = time.perf_counter() - started
        finally:
            scheduler.close()
            cache.close()
        bad = [s for s in states if s.status != "done"]
        if bad:
            raise RuntimeError(
                f"{len(bad)} cache-burst request(s) did not finish "
                f"(first: {bad[0].status}: {bad[0].error})")
        latencies = sorted(s.finished_unix - s.submitted_unix
                           for s in states)
        p50 = latencies[int(round(0.50 * (len(latencies) - 1)))]
        return {
            "requests": len(states),
            "wall_s": round(wall, 4),
            "requests_per_s": round(len(states) / wall, 1),
            "p50_latency_s": round(p50, 4),
        }

    try:
        burst(preload=False)  # cold: populates the pack tier
        warm = burst(preload=False)
        preloaded = burst(preload=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    ratio = (preloaded["p50_latency_s"] / warm["p50_latency_s"]
             if warm["p50_latency_s"] > 0 else 1.0)
    burst_row = {
        "burst": requests,
        "warm": warm,
        "preloaded": preloaded,
        "preload_p50_ratio": round(ratio, 3),
    }
    print(f"  [preload_burst] warm p50 "
          f"{warm['p50_latency_s'] * 1e3:.1f} ms, preloaded p50 "
          f"{preloaded['p50_latency_s'] * 1e3:.1f} ms "
          f"({ratio:.2f}x ratio)")
    return {"lookup": lookup_row, "preload_burst": burst_row}


def measure_advisor() -> Dict[str, dict]:
    """Time the auto-advisor's full default Pareto sweep, serial + cold.

    The default :class:`repro.analysis.SweepSpec` grid: every
    registered scheme crossed with its hyperparameters, four world
    sizes, 8192 bandwidth points — over 1.5 million configurations in
    4096-point shards.  Reported throughput is configurations priced
    per wall second, including the per-shard Pareto reduction and the
    final merge/refinement; the frontier size is recorded so a sweep
    that silently degenerates (empty or exploded frontier) is visible
    in the baseline.
    """
    from repro.analysis import advise  # noqa: PLC0415 - keep import cost out
    from repro.hardware import cluster_for_gpus  # noqa: PLC0415

    model = get_model("resnet50")
    cluster = cluster_for_gpus(32)
    holder: Dict[str, object] = {}

    def sweep() -> None:
        holder["report"] = advise(model, cluster,
                                  engine=ExperimentEngine(jobs=1))

    wall = _best_wall(sweep)
    report = holder["report"]
    configs_per_s = (report.configs_priced / wall if wall > 0
                     else float("inf"))
    row = {
        "configs_total": report.configs_total,
        "configs_priced": report.configs_priced,
        "candidates": report.candidates_total,
        "shards": report.shards,
        "frontier_size": len(report.frontier),
        "wall_s": round(wall, 4),
        "configs_per_s": round(configs_per_s, 1),
    }
    print(f"  [pareto_sweep] {report.configs_priced:,} configs in "
          f"{wall:.3f} s ({configs_per_s:,.0f} configs/s, "
          f"{report.shards} shards, frontier {len(report.frontier)})")
    return {"pareto_sweep": row}


def build_report(rows: Dict[str, dict], whatif_rows: Dict[str, dict],
                 faulted_rows: Dict[str, dict],
                 traced_rows: Dict[str, dict],
                 serving_rows: Dict[str, dict],
                 cache_rows: Dict[str, dict],
                 advisor_rows: Dict[str, dict],
                 previous: Optional[dict] = None) -> dict:
    """Wrap measured rows in the BENCH_simulator.json schema.

    ``previous`` is the baseline being replaced (if any): its
    ``before`` block is carried over verbatim and its ``history`` list
    extended with this run, so rewriting the baseline accumulates the
    trajectory instead of erasing it.
    """
    previous = previous or {}
    host = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    before = previous.get("before") or {
        "event_wall_s": PRE_FASTPATH_EVENT_WALL_S,
        "note": ("cold event-path walls measured before the batch "
                 "fast path and call-site memoization landed"),
    }
    history = list(previous.get("history", []))
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host,
        "exhibits": rows,
        "whatif": whatif_rows,
        "faulted": faulted_rows,
        "traced": traced_rows,
        "serving": serving_rows,
        "cache": cache_rows,
        "advisor": advisor_rows,
    })
    return {
        "schema": 7,
        "generated_by": "tools/bench_simulator.py",
        "protocol": {
            "modes": MODES,
            "engine": "serial, no cache, telemetry off (cold worst case)",
            "note": ("speedup = event wall / auto wall (exhibits) or "
                     "scalar wall / grid wall (whatif); the --check "
                     "gate compares these machine-independent ratios"),
        },
        "host": host,
        "before": before,
        "exhibits": rows,
        "whatif": whatif_rows,
        "faulted": faulted_rows,
        "traced": traced_rows,
        "serving": serving_rows,
        "cache": cache_rows,
        "advisor": advisor_rows,
        "history": history,
    }


def check(baseline_path: str, exhibits: List[str],
          tolerance: float) -> int:
    """Re-measure and gate against the checked-in baseline ratios."""
    if not os.path.exists(baseline_path):
        print(f"error: no baseline at {baseline_path}; "
              f"run tools/bench_simulator.py first", file=sys.stderr)
        return 1
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_rows = baseline.get("exhibits", {})
    exhibits = [e for e in exhibits if e in base_rows]
    print(f"re-measuring {', '.join(exhibits)} against {baseline_path} "
          f"(tolerance {tolerance:g}x on the auto/event ratio)")
    rows = measure(exhibits)
    failed = []
    for exp_id, row in rows.items():
        base = base_rows[exp_id]
        base_ratio = (base["auto"]["wall_s"] / base["event"]["wall_s"]
                      if base["event"]["wall_s"] > 0 else 1.0)
        cur_ratio = (row["auto"]["wall_s"] / row["event"]["wall_s"]
                     if row["event"]["wall_s"] > 0 else 1.0)
        limit = base_ratio * tolerance
        verdict = "ok" if cur_ratio <= limit else "REGRESSED"
        print(f"  [{exp_id}] auto/event ratio {cur_ratio:.3f} "
              f"(baseline {base_ratio:.3f}, limit {limit:.3f}) {verdict}")
        if cur_ratio > limit:
            failed.append(exp_id)

    base_whatif = baseline.get("whatif", {})
    print(f"re-measuring what-if sweeps (floor "
          f"{WHATIF_MIN_SPEEDUP:g}x grid-vs-scalar)")
    for name, row in measure_whatif().items():
        cur_ratio = (row["grid"]["wall_s"] / row["scalar"]["wall_s"]
                     if row["scalar"]["wall_s"] > 0 else 1.0)
        limits = [1.0 / WHATIF_MIN_SPEEDUP]
        base = base_whatif.get(name)
        if base is not None and base["scalar"]["wall_s"] > 0:
            limits.append(tolerance * base["grid"]["wall_s"]
                          / base["scalar"]["wall_s"])
        limit = min(limits)
        verdict = "ok" if cur_ratio <= limit else "REGRESSED"
        print(f"  [{name}] grid/scalar ratio {cur_ratio:.4f} "
              f"(limit {limit:.4f}) {verdict}")
        if cur_ratio > limit:
            failed.append(f"whatif:{name}")

    base_faulted = baseline.get("faulted", {})
    print(f"re-measuring faulted section (floor "
          f"{FAULTED_MIN_SPEEDUP:g}x auto-vs-event)")
    for name, row in measure_faulted().items():
        cur_ratio = (row["auto"]["wall_s"] / row["event"]["wall_s"]
                     if row["event"]["wall_s"] > 0 else 1.0)
        limits = [1.0 / FAULTED_MIN_SPEEDUP]
        base = base_faulted.get(name)
        if base is not None and base["event"]["wall_s"] > 0:
            limits.append(tolerance * base["auto"]["wall_s"]
                          / base["event"]["wall_s"])
        limit = min(limits)
        verdict = "ok" if cur_ratio <= limit else "REGRESSED"
        print(f"  [{name}] auto/event ratio {cur_ratio:.4f} "
              f"(limit {limit:.4f}) {verdict}")
        if cur_ratio > limit:
            failed.append(f"faulted:{name}")

    base_serving = baseline.get("serving", {})
    print(f"re-measuring serving section (floor "
          f"{SERVING_MIN_WARM_SPEEDUP:g}x warm-vs-cold burst)")
    for name, row in measure_serving().items():
        cur_ratio = (row["warm"]["wall_s"] / row["cold"]["wall_s"]
                     if row["cold"]["wall_s"] > 0 else 1.0)
        limits = [1.0 / SERVING_MIN_WARM_SPEEDUP]
        base = base_serving.get(name)
        if base is not None and base["cold"]["wall_s"] > 0:
            limits.append(tolerance * base["warm"]["wall_s"]
                          / base["cold"]["wall_s"])
        limit = min(limits)
        verdict = "ok" if cur_ratio <= limit else "REGRESSED"
        print(f"  [{name}] warm/cold ratio {cur_ratio:.4f} "
              f"(limit {limit:.4f}) {verdict}")
        if cur_ratio > limit:
            failed.append(f"serving:{name}")

    base_cache = baseline.get("cache", {})
    print(f"re-measuring cache section (floor "
          f"{CACHE_MIN_HOT_SPEEDUP:g}x hot-vs-disk lookup, ceiling "
          f"{CACHE_PRELOAD_MAX_P50_RATIO:g}x preloaded-vs-warm p50)")
    cache_rows = measure_cache()
    lookup = cache_rows["lookup"]
    cur_ratio = (lookup["hot"]["wall_s"] / lookup["disk"]["wall_s"]
                 if lookup["disk"]["wall_s"] > 0 else 1.0)
    limits = [1.0 / CACHE_MIN_HOT_SPEEDUP]
    base_lookup = base_cache.get("lookup")
    if base_lookup is not None and base_lookup["disk"]["wall_s"] > 0:
        limits.append(tolerance * base_lookup["hot"]["wall_s"]
                      / base_lookup["disk"]["wall_s"])
    limit = min(limits)
    verdict = "ok" if cur_ratio <= limit else "REGRESSED"
    print(f"  [lookup] hot/disk ratio {cur_ratio:.4f} "
          f"(limit {limit:.4f}) {verdict}")
    if cur_ratio > limit:
        failed.append("cache:lookup")
    burst_row = cache_rows["preload_burst"]
    # Absolute ceiling (like the traced section): the ratio sits near
    # 1.0, so a baseline-relative limit would be pure timer noise.
    verdict = ("ok" if burst_row["preload_p50_ratio"]
               <= CACHE_PRELOAD_MAX_P50_RATIO else "REGRESSED")
    print(f"  [preload_burst] preloaded/warm p50 ratio "
          f"{burst_row['preload_p50_ratio']:.3f} "
          f"(ceiling {CACHE_PRELOAD_MAX_P50_RATIO:g}) {verdict}")
    if burst_row["preload_p50_ratio"] > CACHE_PRELOAD_MAX_P50_RATIO:
        failed.append("cache:preload_burst")

    print(f"re-measuring advisor section (floor "
          f"{ADVISOR_MIN_CONFIGS_PER_S:,} configs/s)")
    for name, row in measure_advisor().items():
        # Absolute floor, not baseline-relative: the sweep is pure
        # vectorized pricing with ~20x headroom over the floor, so
        # only a structural regression can trip it.
        verdict = ("ok" if row["configs_per_s"]
                   >= ADVISOR_MIN_CONFIGS_PER_S else "REGRESSED")
        print(f"  [{name}] {row['configs_per_s']:,.0f} configs/s "
              f"(floor {ADVISOR_MIN_CONFIGS_PER_S:,}) {verdict}")
        if row["configs_per_s"] < ADVISOR_MIN_CONFIGS_PER_S:
            failed.append(f"advisor:{name}")

    print(f"re-measuring traced section (ceiling "
          f"{TRACED_MAX_OVERHEAD:g}x traced-vs-plain)")
    for name, row in measure_traced().items():
        # The ceiling is absolute, not baseline-relative: overhead near
        # 1.0 leaves the ratio dominated by timer noise, so comparing
        # against a recorded baseline ratio would flap.
        verdict = ("ok" if row["overhead"] <= TRACED_MAX_OVERHEAD
                   else "REGRESSED")
        print(f"  [{name}] traced/plain overhead {row['overhead']:.3f} "
              f"(ceiling {TRACED_MAX_OVERHEAD:g}) {verdict}")
        if row["overhead"] > TRACED_MAX_OVERHEAD:
            failed.append(f"traced:{name}")

    if failed:
        print(f"FAIL: fast-path regression on {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("bench check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: write the baseline or gate against it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_BASELINE,
                        metavar="PATH",
                        help="where to write the baseline JSON "
                             "(default: BENCH_simulator.json at repo root)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in baseline "
                             "instead of rewriting it")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed auto/event ratio inflation before "
                             "--check fails (default: 2.0)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"only measure {', '.join(SMOKE_EXHIBITS)} "
                             f"(the CI smoke subset)")
    parser.add_argument("--exhibits", nargs="*", default=None,
                        help="explicit exhibit ids to measure")
    args = parser.parse_args(argv)

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    exhibits = (args.exhibits if args.exhibits
                else SMOKE_EXHIBITS if args.smoke else DEFAULT_EXHIBITS)
    unknown = [e for e in exhibits if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown exhibits: {', '.join(unknown)}")

    if args.check:
        return check(args.output, exhibits, args.tolerance)

    previous = None
    if os.path.exists(args.output):
        with open(args.output) as fh:
            previous = json.load(fh)
    print(f"measuring {', '.join(exhibits)} (cold, serial, both modes)")
    rows = measure(exhibits)
    print("measuring what-if grid-vs-scalar sweeps")
    whatif_rows = measure_whatif()
    print("measuring the faulted section (reliability exhibit, both modes)")
    faulted_rows = measure_faulted()
    print("measuring the traced section (batch run +/- trace export)")
    traced_rows = measure_traced()
    print("measuring the serving section (scheduler burst, cold vs warm)")
    serving_rows = measure_serving()
    print("measuring the cache section (tier lookups, preloaded burst)")
    cache_rows = measure_cache()
    print("measuring the advisor section (full sharded Pareto sweep)")
    advisor_rows = measure_advisor()
    report = build_report(rows, whatif_rows, faulted_rows,
                          traced_rows, serving_rows, cache_rows,
                          advisor_rows, previous)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
