"""Batch fast path vs event path: bit-identity, fallback, and wiring.

The vectorized kernel in :mod:`repro.simulator.batch` is only allowed
to exist because its results are *byte-identical* to the event loop —
the mode stays out of cache fingerprints on that guarantee.  This
module is the contract: exact ``TimingResult`` equality (no approx)
across schemes, world sizes, and jitter settings, plus the fallback
rules, CLI reporting, and engine/cache wiring around the mode switch.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.collectives import (
    allgather_time,
    allgather_time_batch,
    ring_allreduce_time,
    ring_allreduce_time_batch,
)
from repro.compression import (
    FP16Scheme,
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.core import bucket_pipeline_end
from repro.engine import ExperimentEngine, SimJob
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, StragglerFault
from repro.hardware import P3_2XLARGE, ClusterConfig, cluster_for_gpus
from repro.models import get_model
from repro.simulator import SIM_MODES, DDPConfig, DDPSimulator


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


def solo_cluster():
    """A genuine world_size=1 cluster (cluster_for_gpus needs >= 4)."""
    return ClusterConfig(P3_2XLARGE, num_nodes=1)


def make_sim(model, scheme=None, gpus=8, config=None, faults=None):
    cluster = solo_cluster() if gpus == 1 else cluster_for_gpus(gpus)
    return DDPSimulator(model, cluster, scheme=scheme, config=config,
                        faults=faults)


def run_both(sim, iterations=14, warmup=3, seed=0, batch_size=None):
    event = sim.run(batch_size, iterations=iterations, warmup=warmup,
                    seed=seed, mode="event")
    batch = sim.run(batch_size, iterations=iterations, warmup=warmup,
                    seed=seed, mode="batch")
    return event, batch


# Scheme x world-size x jitter matrix covering every kernel branch:
# baseline bucketed pipeline (with and without overlap / hook cost),
# sequential compressed, overlapped compressed, single worker (p == 1,
# skipped comm draws), and the jitter-free closed form.
CASES = [
    ("syncsgd-p1", SyncSGDScheme(), 1, {}),
    ("syncsgd-p8", SyncSGDScheme(), 8, {}),
    ("syncsgd-p32", SyncSGDScheme(), 32, {}),
    ("syncsgd-no-overlap", SyncSGDScheme(), 8,
     {"overlap_communication": False}),
    ("powersgd-p8", PowerSGDScheme(rank=4), 8, {}),
    ("powersgd-p1", PowerSGDScheme(rank=4), 1, {}),
    ("powersgd-overlap-p8", PowerSGDScheme(rank=4), 8,
     {"overlap_compression": True}),
    ("powersgd-overlap-p1", PowerSGDScheme(rank=4), 1,
     {"overlap_compression": True}),
    ("topk-p8", TopKScheme(fraction=0.01), 8, {}),
    ("signsgd-p8", SignSGDScheme(), 8, {}),
    ("signsgd-overlap", SignSGDScheme(), 8, {"overlap_compression": True}),
    ("fp16-p8", FP16Scheme(), 8, {}),
    ("syncsgd-double-tree", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "double_tree"}),
    ("syncsgd-hierarchical", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "hierarchical"}),
    ("syncsgd-param-server", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "parameter_server"}),
    ("compute-jitter-only", SyncSGDScheme(), 8, {"comm_jitter": 0.0}),
    ("comm-jitter-only", PowerSGDScheme(rank=4), 8,
     {"compute_jitter": 0.0}),
    ("closed-form", SyncSGDScheme(), 8,
     {"compute_jitter": 0.0, "comm_jitter": 0.0}),
    ("closed-form-overlapped", PowerSGDScheme(rank=4), 8,
     {"compute_jitter": 0.0, "comm_jitter": 0.0,
      "overlap_compression": True}),
]


class TestBitIdentity:
    @pytest.mark.parametrize(
        "scheme,gpus,cfg", [c[1:] for c in CASES],
        ids=[c[0] for c in CASES])
    def test_rows_byte_identical(self, rn50, scheme, gpus, cfg):
        sim = make_sim(rn50, scheme, gpus, DDPConfig(**cfg))
        event, batch = run_both(sim)
        # Dataclass equality over the full row: every float in the
        # per-iteration tuple must be the same bits, not merely close.
        assert event == batch
        assert event.iteration_times == batch.iteration_times

    def test_seed_still_matters_on_batch_path(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        a = sim.run(iterations=14, warmup=3, seed=1, mode="batch")
        b = sim.run(iterations=14, warmup=3, seed=2, mode="batch")
        assert a.iteration_times != b.iteration_times

    def test_closed_form_rows_are_constant(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8,
                       DDPConfig(compute_jitter=0.0, comm_jitter=0.0))
        result = sim.run(iterations=14, warmup=3, mode="batch")
        assert len(set(result.iteration_times)) == 1


class TestModeResolution:
    def test_auto_resolves_to_batch_when_clean(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        sim.run(iterations=12, warmup=2, mode="auto")
        assert sim.last_run_mode == "batch"
        assert sim.last_run_fallback is None

    def test_unknown_mode_rejected(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        with pytest.raises(ConfigurationError):
            sim.run(iterations=12, warmup=2, mode="vectorised")

    def test_faults_take_batch_path(self, rn50):
        faults = FaultSchedule(stragglers=(
            StragglerFault(worker=0, slowdown=2.0, start_iteration=3,
                           duration_iterations=4),))
        sim = make_sim(rn50, SyncSGDScheme(), 8, faults=faults)
        sim.run(iterations=12, warmup=2, mode="auto")
        assert sim.last_run_mode == "batch"
        assert sim.last_run_fallback is None

    def test_explicit_batch_with_faults_matches_event(self, rn50):
        faults = FaultSchedule(stragglers=(
            StragglerFault(worker=0, slowdown=2.0, start_iteration=3),))
        sim_b = make_sim(rn50, SyncSGDScheme(), 8, faults=faults)
        sim_e = make_sim(rn50, SyncSGDScheme(), 8, faults=faults)
        assert sim_b.run(iterations=12, warmup=2, mode="batch") == \
            sim_e.run(iterations=12, warmup=2, mode="event")

    def test_fallback_taxonomy_is_empty(self):
        # Trace export was the last registered fallback; reconstruction
        # (repro.simulator.reconstruct) retired it.
        from repro.simulator.ddp import FALLBACK_REASONS
        assert FALLBACK_REASONS == {}

    def test_empty_fault_schedule_takes_batch(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8, faults=FaultSchedule())
        sim.run(iterations=12, warmup=2, mode="auto")
        assert sim.last_run_mode == "batch"

    def test_tracing_stays_on_batch(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        assert sim.resolve_mode("auto", tracing=True) == ("batch", None)
        assert sim.resolve_mode("batch", tracing=True) == ("batch", None)


class TestCLIReporting:
    def test_simulate_reports_batch_mode(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--iterations", "12"]) == 0
        assert "sim mode: batch" in capsys.readouterr().out

    def test_simulate_trace_stays_on_batch(self, capsys, tmp_path):
        # Trace export no longer forces the event loop: spans come from
        # batch-kernel reconstruction on the fast path.
        from repro.cli import main
        trace = tmp_path / "trace.json"
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--iterations", "12", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "sim mode: batch" in out
        assert "fell back" not in out
        assert trace.exists()


class TestEngineWiring:
    def job(self, model, **kwargs):
        kwargs.setdefault("iterations", 12)
        kwargs.setdefault("warmup", 2)
        return SimJob(model=model, cluster=cluster_for_gpus(8), **kwargs)

    def test_fingerprint_ignores_sim_mode(self, rn50):
        base = self.job(rn50)
        for mode in SIM_MODES:
            assert replace(base, sim_mode=mode).fingerprint() == \
                base.fingerprint()

    def test_engine_modes_agree(self, rn50):
        jobs = [self.job(rn50),
                self.job(rn50, scheme=PowerSGDScheme(rank=4))]
        by_mode = {}
        for mode in ("event", "batch"):
            engine = ExperimentEngine(jobs=1, sim_mode=mode)
            by_mode[mode] = [o.result for o in engine.run_outcomes(jobs)]
        assert by_mode["event"] == by_mode["batch"]

    def test_cache_shared_across_modes(self, rn50, tmp_path):
        from repro.engine import SimulationCache
        jobs = [self.job(rn50)]
        warm = ExperimentEngine(jobs=1, cache=SimulationCache(tmp_path),
                                sim_mode="batch")
        warm.run_outcomes(jobs)
        served = ExperimentEngine(jobs=1, cache=SimulationCache(tmp_path),
                                  sim_mode="event")
        outcomes = served.run_outcomes(jobs)
        assert all(o.cached for o in outcomes)
        # Cache rows are what the event path would have produced.
        assert outcomes[0].result == warm.run(jobs[0])

    def test_engine_respects_explicit_job_mode(self, rn50):
        job = self.job(rn50, sim_mode="event")
        engine = ExperimentEngine(jobs=1, sim_mode="batch")
        # A job that pins its own mode is not overridden...
        assert engine._job_for_execution(job).sim_mode == "event"
        # ...while "auto" jobs inherit the engine-level mode.
        assert engine._job_for_execution(
            self.job(rn50)).sim_mode == "batch"


class TestVectorizedPrimitives:
    def test_ring_allreduce_batch_matches_scalar(self):
        payloads = np.array([0.0, 1.0, 25e6, 1e9])
        batch = ring_allreduce_time_batch(payloads, 8, 10e9, 5e-6)
        scalar = [ring_allreduce_time(float(b), 8, 10e9, 5e-6)
                  for b in payloads]
        assert batch.tolist() == scalar

    def test_allgather_batch_matches_scalar(self):
        payloads = np.array([1.0, 4096.0, 3e7])
        batch = allgather_time_batch(payloads, 16, 25e9, 2e-6,
                                     incast_factor=1.5)
        scalar = [allgather_time(float(b), 16, 25e9, 2e-6,
                                 incast_factor=1.5)
                  for b in payloads]
        assert batch.tolist() == scalar

    def test_single_worker_collective_is_free(self):
        assert ring_allreduce_time_batch(
            np.array([1e6]), 1, 10e9, 5e-6).tolist() == [0.0]

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_time_batch(np.array([-1.0]), 8, 10e9, 5e-6)

    def test_bucket_pipeline_end_matches_naive_recurrence(self):
        rng = np.random.default_rng(0)
        ready = np.sort(rng.uniform(0.0, 1.0, size=(5, 7)), axis=1)
        durs = rng.uniform(0.0, 0.2, size=7)
        got = bucket_pipeline_end(ready, durs, 0.25)
        for i in range(ready.shape[0]):
            end = 0.25
            for k in range(ready.shape[1]):
                end = max(ready[i, k], end) + durs[k]
            assert got[i] == end
