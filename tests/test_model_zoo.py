"""Model builders: parameter counts against published architectures."""

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    available_models,
    bert_base,
    build_resnet,
    build_transformer,
    get_model,
    gpt2_small,
    register_model,
    resnet50,
    resnet101,
    resnet152,
    vgg16,
    TransformerConfig,
)


class TestResNetBuilders:
    def test_resnet50_param_count_matches_torchvision(self, resnet50):
        # torchvision resnet50: 25,557,032 parameters.
        assert resnet50.num_params == 25_557_032

    def test_resnet101_param_count(self, resnet101):
        # torchvision resnet101: 44,549,160 parameters.
        assert resnet101.num_params == 44_549_160

    def test_resnet152_param_count(self):
        # torchvision resnet152: 60,192,808 parameters.
        assert get_model("resnet152").num_params == 60_192_808

    def test_resnet50_size_is_papers_97mb(self, resnet50):
        assert resnet50.grad_bytes / 1e6 == pytest.approx(102, rel=0.06)

    def test_resnet101_size_is_papers_170mb(self, resnet101):
        assert resnet101.grad_bytes / 1e6 == pytest.approx(178, rel=0.06)

    def test_resnet50_flops_in_published_range(self, resnet50):
        # ~4.1 GMAC = ~8.2 GFLOP per 224x224 image.
        assert resnet50.fwd_flops(1) / 1e9 == pytest.approx(8.2, rel=0.05)

    def test_conv_matrix_shapes_cover_weights(self, resnet50):
        for layer in resnet50.matrix_layers:
            m, n = layer.matrix_shape
            assert m * n == layer.num_params - layer.extra_params

    def test_unsupported_depth(self):
        with pytest.raises(ConfigurationError):
            build_resnet(34)

    def test_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            build_resnet(50, input_hw=100)

    def test_custom_classes(self):
        small = build_resnet(50, num_classes=10)
        assert small.layer_named("fc").param_shape == (10, 2048)


class TestTransformerBuilders:
    def test_bert_base_param_count(self, bert_base):
        # ~110 M including pooler and classification head.
        assert bert_base.num_params / 1e6 == pytest.approx(110, rel=0.02)

    def test_bert_large_param_count(self):
        assert get_model("bert-large").num_params / 1e6 == pytest.approx(
            335, rel=0.02)

    def test_gpt2_small_param_count(self):
        assert get_model("gpt2-small").num_params / 1e6 == pytest.approx(
            124, rel=0.03)

    def test_bert_has_encoder_layers(self, bert_base):
        q_layers = [l for l in bert_base.layers if l.name.endswith("attn.q")]
        assert len(q_layers) == 12

    def test_seq_len_exceeding_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            TransformerConfig(
                name="bad", vocab_size=100, hidden=64, num_layers=1,
                num_heads=4, intermediate=128, seq_len=1024,
                max_positions=512)

    def test_hidden_not_divisible_rejected(self):
        with pytest.raises(ConfigurationError):
            TransformerConfig(
                name="bad", vocab_size=100, hidden=65, num_layers=1,
                num_heads=4, intermediate=128, seq_len=64,
                max_positions=128)

    def test_lm_head_has_compute_but_no_params(self):
        gpt2 = get_model("gpt2-small")
        head = gpt2.layer_named("lm_head")
        assert head.num_params == 0
        assert head.fwd_flops_per_sample > 0


class TestVGG:
    def test_vgg16_param_count(self):
        # torchvision vgg16: 138,357,544 parameters.
        assert get_model("vgg16").num_params == 138_357_544

    def test_vgg_is_layer_granularity(self):
        assert get_model("vgg16").gather_granularity == "layer"

    def test_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            vgg16(input_hw=50)


class TestZooRegistry:
    def test_all_models_build(self):
        for name in available_models():
            model = get_model(name)
            assert model.num_params > 0

    def test_cache_returns_same_object(self):
        assert get_model("resnet50") is get_model("resnet50")

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_model("alexnet")

    def test_register_custom(self):
        register_model("custom-rn", lambda: build_resnet(50, num_classes=7),
                       overwrite=True)
        assert get_model("custom-rn").layer_named("fc").param_shape[0] == 7

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_model("resnet50", resnet50)
