"""Event queue and trace primitives."""

import pytest

from repro.errors import SimulationError
from repro.simulator import (
    COMM_STREAM,
    COMPUTE_STREAM,
    EventQueue,
    IterationTrace,
    Span,
    estimate_gamma,
)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda q: order.append("b"))
        queue.schedule(1.0, lambda q: order.append("a"))
        queue.schedule(3.0, lambda q: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda q: order.append("first"))
        queue.schedule(1.0, lambda q: order.append("second"))
        queue.run()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(0.5, lambda q: seen.append(q.now))
        final = queue.run()
        assert seen == [0.5]
        assert final == 0.5

    def test_events_can_schedule_followups(self):
        queue = EventQueue()
        seen = []

        def first(q):
            q.schedule_after(1.0, lambda q2: seen.append(q2.now))

        queue.schedule(1.0, first)
        queue.run()
        assert seen == [2.0]

    def test_scheduling_into_past_rejected(self):
        queue = EventQueue()

        def bad(q):
            q.schedule(q.now - 1.0, lambda q2: None)

        queue.schedule(5.0, bad)
        with pytest.raises(SimulationError):
            queue.run()

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule_after(-1.0, lambda q: None)

    def test_event_budget_guard(self):
        queue = EventQueue()

        def loop(q):
            q.schedule_after(0.1, loop)

        queue.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="budget"):
            queue.run(max_events=100)

    def test_processed_count(self):
        queue = EventQueue()
        for t in range(5):
            queue.schedule(float(t), lambda q: None)
        queue.run()
        assert queue.processed == 5
        assert queue.empty()

    def test_budget_is_per_run_not_lifetime(self):
        # Regression: the guard used to compare the *lifetime* processed
        # counter against max_events, silently shrinking the budget of
        # every subsequent run() on a reused queue.
        queue = EventQueue()
        for t in range(80):
            queue.schedule(float(t), lambda q: None)
        queue.run(max_events=100)
        for t in range(80):
            queue.schedule(queue.now + float(t), lambda q: None)
        queue.run(max_events=100)  # 160 lifetime events: must not raise
        assert queue.processed == 160

    def test_budget_still_guards_within_one_run(self):
        queue = EventQueue()
        for t in range(80):
            queue.schedule(float(t), lambda q: None)
        queue.run(max_events=100)
        for t in range(120):
            queue.schedule(queue.now + float(t), lambda q: None)
        with pytest.raises(SimulationError, match="budget"):
            queue.run(max_events=100)

    def test_pending_counts_queued_events(self):
        queue = EventQueue()
        assert queue.pending == 0
        for t in range(5):
            queue.schedule(float(t), lambda q: None)
        assert queue.pending == 5
        queue.run()
        assert queue.pending == 0

    def test_budget_error_is_actionable(self):
        # A runaway loop: every callback reschedules itself.  The error
        # must say what happened (budget, backlog, virtual time) and
        # point at both likely causes — a self-rescheduling callback or
        # a legitimately large workload needing a bigger budget.
        def reschedule(q):
            q.schedule(q.now + 1.0, reschedule)

        queue = EventQueue()
        queue.schedule(0.0, reschedule)
        with pytest.raises(SimulationError) as excinfo:
            queue.run(max_events=50)
        message = str(excinfo.value)
        assert "event budget exhausted" in message
        assert "50 events" in message
        assert "still queued" in message
        assert "reschedules itself" in message
        assert "raise max_events" in message
        # The backlog it reports is live at raise time.
        assert queue.pending >= 1


class TestSpansAndTrace:
    def test_span_duration(self):
        span = Span(COMPUTE_STREAM, "fwd", 1.0, 3.5)
        assert span.duration == pytest.approx(2.5)

    def test_backwards_span_rejected(self):
        with pytest.raises(SimulationError):
            Span(COMPUTE_STREAM, "bad", 2.0, 1.0)

    def test_stream_busy_time(self):
        trace = IterationTrace()
        trace.add(Span(COMPUTE_STREAM, "a", 0.0, 1.0))
        trace.add(Span(COMPUTE_STREAM, "b", 2.0, 3.0))
        trace.add(Span(COMM_STREAM, "c", 0.0, 5.0))
        assert trace.stream_busy_time(COMPUTE_STREAM) == pytest.approx(2.0)
        assert trace.stream_busy_time(COMM_STREAM) == pytest.approx(5.0)

    def test_overlap_computation(self):
        trace = IterationTrace()
        trace.add(Span(COMPUTE_STREAM, "bwd", 0.0, 4.0))
        trace.add(Span(COMM_STREAM, "bucket", 2.0, 6.0))
        assert trace.compute_comm_overlap() == pytest.approx(2.0)

    def test_sync_time_window(self):
        trace = IterationTrace()
        trace.forward_end = 1.0
        trace.sync_end = 4.5
        assert trace.sync_time() == pytest.approx(3.5)

    def test_ascii_render_contains_streams(self):
        trace = IterationTrace()
        trace.add(Span(COMPUTE_STREAM, "fwd", 0.0, 1.0))
        trace.add(Span(COMM_STREAM, "b0", 0.5, 2.0))
        art = trace.render_ascii()
        assert "compute" in art and "comm" in art

    def test_empty_trace_renders(self):
        assert "empty" in IterationTrace().render_ascii()


class TestGammaEstimation:
    def test_gamma_from_stretched_trace(self):
        trace = IterationTrace()
        trace.forward_end = 1.0
        trace.backward_end = 3.2  # 2.2 s stretched backward
        assert estimate_gamma(trace, 2.0) == pytest.approx(1.1)

    def test_zero_standalone_rejected(self):
        with pytest.raises(SimulationError):
            estimate_gamma(IterationTrace(), 0.0)
