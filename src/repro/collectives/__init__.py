"""Communication collectives: analytic cost models + numeric algorithms."""

from .cost import (
    TREE_BLOCK_BYTES,
    allgather_time,
    allgather_time_batch,
    allgather_time_grid,
    broadcast_time,
    double_tree_allreduce_time,
    parameter_server_time,
    pick_allreduce_time,
    reduce_scatter_time,
    ring_allreduce_time,
    ring_allreduce_time_batch,
    ring_allreduce_time_grid,
)
from .hierarchical import (
    hierarchical_allreduce,
    hierarchical_allreduce_time,
)
from .numeric import (
    allgather,
    broadcast,
    is_allreduce_safe,
    parameter_server_reduce,
    reduce_scatter,
    ring_allreduce,
    tree_allreduce,
)

__all__ = [
    "ring_allreduce_time", "double_tree_allreduce_time", "allgather_time",
    "ring_allreduce_time_batch", "allgather_time_batch",
    "ring_allreduce_time_grid", "allgather_time_grid",
    "reduce_scatter_time", "broadcast_time", "parameter_server_time",
    "pick_allreduce_time", "TREE_BLOCK_BYTES",
    "ring_allreduce", "tree_allreduce", "allgather", "reduce_scatter",
    "broadcast", "parameter_server_reduce", "is_allreduce_safe",
    "hierarchical_allreduce", "hierarchical_allreduce_time",
]
