"""Resolving a :class:`FaultSchedule` into per-iteration fault state.

The :class:`~repro.simulator.DDPSimulator` asks the injector one
question per iteration — :meth:`FaultInjector.faults_for` — and gets
back an :class:`IterationFaults`: the compute stretch the slowest
straggler imposes, the effective bandwidth scale after every active
link/NIC fault is applied to the fabric's matrix, the surviving world
size under elastic recovery, any recovery stall, and the active
retransmit policy.

Determinism rules:

* the injector owns its own RNG space — retransmit draws come from a
  generator seeded by ``(schedule seed, iteration, transfer index)``,
  never from the simulator's jitter stream, so attaching faults does
  not perturb jitter and parallel sweeps replay identically;
* everything else is a pure function of the schedule and the iteration
  index, memoized per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..hardware import ClusterConfig
from ..network import Fabric
from ..telemetry.metrics import get_registry
from .schedule import FaultSchedule, RetransmitFault

#: Stream name for fault-window spans in iteration traces; the Perfetto
#: exporter allocates it a track automatically, so fault windows show up
#: as a third timeline row next to ``compute`` and ``comm``.
FAULT_STREAM = "faults"


@dataclass(frozen=True)
class IterationFaults:
    """The resolved fault state of one simulated iteration.

    Attributes:
        iteration: The 0-based absolute iteration index.
        compute_slowdown: Compute stretch factor (>= 1); lockstep
            training runs at the slowest straggler's pace.
        bandwidth_scale: Multiplier (<= 1) on the fabric's pairwise
            minimum bandwidth after active link/NIC faults.
        world_size: Workers actually participating (reduced by elastic
            crash recovery; never below 1).
        stall_s: Recovery stall charged at the start of the iteration
            (crash restart / elastic reconfiguration).
        stall_label: Trace label for the stall span (``None`` = none).
        retransmit: The active retransmit policy, if any.
        active: Labels of every active fault, for trace fault-window
            spans and telemetry (sorted, low cardinality).
    """

    iteration: int
    compute_slowdown: float
    bandwidth_scale: float
    world_size: int
    stall_s: float
    stall_label: Optional[str]
    retransmit: Optional[RetransmitFault]
    active: Tuple[str, ...]

    @property
    def degraded(self) -> bool:
        """Whether anything at all is wrong this iteration."""
        return bool(self.active) or self.stall_s > 0


class FaultInjector:
    """Binds a :class:`FaultSchedule` to one cluster + fabric.

    Construction validates the schedule against the topology (a
    straggler on worker 12 of an 8-GPU job is a spec error, not a
    silent no-op) and snapshots the fault-free minimum bandwidth so
    per-iteration scales are computed against the true baseline.
    """

    def __init__(self, schedule: FaultSchedule, cluster: ClusterConfig,
                 fabric: Fabric):
        """Validate ``schedule`` against the topology and bind it."""
        self.schedule = schedule
        self.cluster = cluster
        self.fabric = fabric
        self._validate_topology()
        self._base_min_bw = fabric.min_bandwidth()
        self._cache: Dict[int, IterationFaults] = {}
        #: Counters the CLI prints after a faulted run; mirrored into
        #: telemetry when a registry is enabled.
        self.retransmits_injected = 0
        self.retransmit_delay_s = 0.0

    def _validate_topology(self) -> None:
        """Reject faults referencing workers/nodes the cluster lacks."""
        p = self.cluster.world_size
        n = self.cluster.num_nodes
        for s in self.schedule.stragglers:
            if s.worker >= p:
                raise ConfigurationError(
                    f"straggler worker {s.worker} out of range for "
                    f"{p} workers")
        for c in self.schedule.crashes:
            if c.worker >= p:
                raise ConfigurationError(
                    f"crash worker {c.worker} out of range for "
                    f"{p} workers")
        for link in self.schedule.links:
            if link.node_a >= n or link.node_b >= n:
                raise ConfigurationError(
                    f"link fault ({link.node_a}, {link.node_b}) out of "
                    f"range for {n} nodes")
        for node in self.schedule.nodes:
            if node.node >= n:
                raise ConfigurationError(
                    f"node fault {node.node} out of range for {n} nodes")

    # ----- per-iteration resolution ----------------------------------------

    def faults_for(self, iteration: int) -> IterationFaults:
        """The resolved fault state of ``iteration`` (memoized)."""
        state = self._cache.get(iteration)
        if state is None:
            state = self._resolve(iteration)
            self._cache[iteration] = state
        return state

    def _resolve(self, iteration: int) -> IterationFaults:
        """Compute one iteration's fault state from the schedule."""
        active = []

        slowdown = 1.0
        for s in self.schedule.stragglers:
            if s.active(iteration) and not self._crashed_out(
                    s.worker, iteration):
                slowdown = max(slowdown, s.slowdown)
                active.append("straggler")

        bw_scale = self._bandwidth_scale(iteration)
        if bw_scale < 1.0:
            active.append("degraded-link")

        world = self.cluster.world_size
        stall_s = 0.0
        stall_label = None
        for c in self.schedule.crashes:
            if c.recovery == "elastic" and iteration >= c.at_iteration:
                world -= 1
            if iteration == c.at_iteration:
                stall_s += c.stall_s
                stall_label = f"crash-{c.recovery}"
                active.append(f"crash-{c.recovery}")
        world = max(1, world)

        retransmit = None
        for r in self.schedule.retransmits:
            if r.active(iteration):
                # With several overlapping policies the harshest wins —
                # modelling independent loss processes would need a
                # combined rate anyway, and one policy is the 99% case.
                if retransmit is None or r.drop_rate > retransmit.drop_rate:
                    retransmit = r
        if retransmit is not None:
            active.append("retransmit-risk")

        return IterationFaults(
            iteration=iteration,
            compute_slowdown=slowdown,
            bandwidth_scale=bw_scale,
            world_size=world,
            stall_s=stall_s,
            stall_label=stall_label,
            retransmit=retransmit,
            active=tuple(sorted(set(active))),
        )

    def _crashed_out(self, worker: int, iteration: int) -> bool:
        """Whether ``worker`` has been elastically dropped by now (a
        dropped straggler stops straggling — the silver lining)."""
        return any(c.worker == worker and c.recovery == "elastic"
                   and iteration >= c.at_iteration
                   for c in self.schedule.crashes)

    def _bandwidth_scale(self, iteration: int) -> float:
        """Effective min-bandwidth multiplier after active link faults.

        Applies every active link/NIC factor to a copy of the fabric's
        pairwise matrix and re-takes the minimum — exactly the paper's
        probe-and-take-minimum methodology, run against the degraded
        fabric.  Clusters are small (<= a few dozen nodes), so the
        O(n^2) copy per *distinct* fault pattern is negligible.
        """
        n = self.cluster.num_nodes
        if n <= 1:
            return 1.0
        active_links = [f for f in self.schedule.links
                        if f.active(iteration)]
        active_nodes = [f for f in self.schedule.nodes
                        if f.active(iteration)]
        if not active_links and not active_nodes:
            return 1.0
        matrix = np.array(
            [[self.fabric.pair_bandwidth(a, b) if a != b else np.inf
              for b in range(n)] for a in range(n)])
        for link in active_links:
            matrix[link.node_a, link.node_b] *= link.factor
            matrix[link.node_b, link.node_a] *= link.factor
        for node in active_nodes:
            for other in range(n):
                if other != node.node:
                    matrix[node.node, other] *= node.factor
                    matrix[other, node.node] *= node.factor
        return float(matrix.min()) / self._base_min_bw

    # ----- retransmits ------------------------------------------------------

    def retransmit_delay(self, iteration: int, transfer_index: int,
                         base_duration_s: float) -> Tuple[float, int]:
        """Extra seconds a transfer pays to loss this iteration.

        Returns ``(delay_s, replays)``.  Each attempt drops with the
        policy's ``drop_rate``; attempt *k*'s failure costs a timeout of
        ``timeout_s * backoff**(k-1)`` plus a full replay of the
        transfer (the α+β cost again).  After ``max_retries`` failures
        the transfer is forced through.  The draw stream is seeded by
        ``(schedule seed, iteration, transfer_index)``, so it is
        reproducible and independent of the jitter RNG.
        """
        state = self.faults_for(iteration)
        policy = state.retransmit
        if policy is None or policy.drop_rate == 0.0:
            return 0.0, 0
        rng = np.random.default_rng(
            (self.schedule.seed, iteration, transfer_index))
        delay = 0.0
        replays = 0
        while replays < policy.max_retries:
            if rng.random() >= policy.drop_rate:
                break
            delay += (policy.timeout_s * policy.backoff ** replays
                      + base_duration_s)
            replays += 1
        if replays:
            self.retransmits_injected += replays
            self.retransmit_delay_s += delay
            registry = get_registry()
            if registry.enabled:
                registry.counter("sim_fault_retransmits_total").inc(replays)
                registry.histogram("sim_fault_retransmit_delay_s").observe(
                    delay)
        return delay, replays

    # ----- reporting --------------------------------------------------------

    def record_iteration(self, state: IterationFaults) -> None:
        """Mirror one iteration's fault state into telemetry (enabled
        registries only; pure counter writes, no RNG interaction)."""
        registry = get_registry()
        if not registry.enabled or not state.degraded:
            return
        registry.counter("sim_fault_degraded_iterations_total").inc()
        for label in state.active:
            # "crash-restart" -> "crash": keep label cardinality tiny.
            kind = label.split("-")[0]
            registry.counter("sim_faults_active_total", kind=kind).inc()
        if state.stall_s > 0:
            registry.counter("sim_fault_stall_s_total").inc(state.stall_s)

    def summary(self) -> str:
        """One-line post-run summary for the CLI."""
        return (f"faults: {self.schedule.describe()}; "
                f"{self.retransmits_injected} retransmits "
                f"(+{self.retransmit_delay_s * 1e3:.1f} ms)")
