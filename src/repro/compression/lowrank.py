"""Low-rank compressors: PowerSGD [63], ATOMO [64], GradiVeq-style [70].

A gradient matrix ``G (m x n)`` is approximated by rank-``r`` factors
``P (m x r)`` and ``Q (n x r)``, cutting communication from ``O(mn)`` to
``O(r(m+n))``.  4D conv kernels are viewed as ``(cout, cin*k*k)`` — the
:attr:`~repro.models.LayerSpec.matrix_shape` the model zoo records.

PowerSGD finds the factors with a *single warm-started power iteration*
and — crucially for the paper — its aggregation is a plain mean of the
``P`` (then ``Q``) matrices, so it is **all-reduce compatible**.  ATOMO
computes an SVD per worker, whose factors do not align across workers, so
it needs all-gather (Table 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompressionError
from ..units import FLOAT32_BYTES
from .base import AggregationResult, Aggregator, Compressor, Payload
from .error_feedback import ErrorFeedback


def _as_matrix(arr: np.ndarray) -> np.ndarray:
    """View a gradient tensor as 2D: ``(dim0, rest)``; 1D tensors become
    a single row."""
    if arr.ndim == 1:
        return arr.reshape(1, -1)
    if arr.ndim == 2:
        return arr
    return arr.reshape(arr.shape[0], -1)


def orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Numerically stable Gram-Schmidt via thin QR, tolerating rank
    deficiency (zero columns stay zero rather than becoming NaN)."""
    if matrix.ndim != 2:
        raise CompressionError(
            f"orthonormalize expects a 2D matrix, got shape {matrix.shape}")
    q, r = np.linalg.qr(matrix)
    # QR leaves arbitrary signs on null columns; zero them for stability.
    col_norms = np.abs(np.diag(r)) if r.shape[0] >= r.shape[1] else None
    if col_norms is not None:
        q = q * (col_norms > 1e-12)
    return q


class PowerSGDCompressor(Compressor):
    """Single-shot PowerSGD factorization of one matrix (no shared state).

    This is the single-tensor codec used for wire-size accounting and
    round-trip tests; the distributed algorithm with warm start and error
    feedback lives in :class:`PowerSGDAggregator`.
    """

    name = "powersgd"
    all_reducible = True
    layerwise = True

    def __init__(self, rank: int = 4, seed: int = 0):
        if rank < 1:
            raise CompressionError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.seed = seed

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        matrix = _as_matrix(arr)
        m, n = matrix.shape
        r = min(self.rank, m, n)
        rng = np.random.default_rng((self.seed, m, n))
        q = orthonormalize(rng.standard_normal((n, r)))
        p = matrix @ q
        p_hat = orthonormalize(p)
        q_new = matrix.T @ p_hat
        return Payload(
            arrays=(p_hat, q_new),
            wire_bytes=float((p_hat.size + q_new.size) * FLOAT32_BYTES),
            shape=arr.shape,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        p_hat, q_new = payload.arrays
        return (p_hat @ q_new.T).reshape(payload.shape)


class ATOMOCompressor(Compressor):
    """ATOMO with SVD atoms: keep the top-``rank`` singular triplets.

    The SVD is exactly why the paper found ATOMO's encode cost high; the
    kernel-cost model charges it a full ``O(mn·min(m,n))`` decomposition.
    """

    name = "atomo"
    all_reducible = False
    layerwise = True

    def __init__(self, rank: int = 4):
        if rank < 1:
            raise CompressionError(f"rank must be >= 1, got {rank}")
        self.rank = rank

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        matrix = _as_matrix(arr)
        u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        r = min(self.rank, s.size)
        return Payload(
            arrays=(u[:, :r], s[:r], vt[:r, :]),
            wire_bytes=float(
                (u[:, :r].size + r + vt[:r, :].size) * FLOAT32_BYTES),
            shape=arr.shape,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        u, s, vt = payload.arrays
        return (u @ np.diag(s) @ vt).reshape(payload.shape)


class GradiVeqCompressor(Compressor):
    """GradiVeq-style linear projection onto a shared basis.

    Gradients are chunked into fixed-length blocks and projected onto a
    seeded orthonormal basis shared by all workers.  Projection is linear,
    so coefficient vectors sum correctly — all-reduce compatible — and the
    method works per layer (Table 1: all-reduce yes, layer-wise yes).
    The real GradiVeq learns the basis from gradient history (PCA); a
    fixed random basis preserves the system-level behaviour (linearity,
    size, cost) though not the accuracy claims.
    """

    name = "gradiveq"
    all_reducible = True
    layerwise = True

    def __init__(self, block: int = 512, dims: int = 64, seed: int = 0):
        if block < 1 or dims < 1:
            raise CompressionError(
                f"block and dims must be >= 1, got {block}, {dims}")
        if dims > block:
            raise CompressionError(
                f"dims ({dims}) cannot exceed block length ({block})")
        self.block = block
        self.dims = dims
        self.seed = seed
        self._basis_cache: Dict[int, np.ndarray] = {}

    def _basis(self, block: int) -> np.ndarray:
        basis = self._basis_cache.get(block)
        if basis is None:
            rng = np.random.default_rng((self.seed, block))
            dims = min(self.dims, block)
            basis = orthonormalize(rng.standard_normal((block, dims)))
            self._basis_cache[block] = basis
        return basis

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        pad = (-flat.size) % self.block
        padded = np.pad(flat, (0, pad))
        blocks = padded.reshape(-1, self.block)
        coeffs = blocks @ self._basis(self.block)
        return Payload(
            arrays=(coeffs,),
            wire_bytes=float(coeffs.size * FLOAT32_BYTES),
            shape=arr.shape,
            meta={"pad": float(pad)},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        coeffs = payload.arrays[0]
        blocks = coeffs @ self._basis(self.block).T
        flat = blocks.reshape(-1)
        pad = int(payload.meta["pad"])
        if pad:
            flat = flat[:-pad]
        return flat.reshape(payload.shape)


class PowerSGDAggregator(Aggregator):
    """The full distributed PowerSGD step (Algorithm 1 of [63]).

    Per round, with per-worker error feedback and a warm-started shared
    ``Q``::

        C_i = G_i + E_i                      (error feedback)
        P   = mean_i(C_i @ Q)                (all-reduce #1)
        P̂  = orthonormalize(P)
        Q'  = mean_i(C_i^T @ P̂)             (all-reduce #2)
        M̂  = P̂ @ Q'^T                       (decode; the applied update)
        E_i = C_i - M̂                        (store residual)
        Q  <- Q'                              (warm start)

    Both all-reduces are plain sums — PowerSGD is all-reduce compatible —
    but there are **two** of them, the double latency cost the paper's
    §4.2 model charges PowerSGD for.
    """

    name = "powersgd"
    all_reducible = True

    def __init__(self, num_workers: int, rank: int = 4, seed: int = 0,
                 use_error_feedback: bool = True):
        super().__init__(num_workers)
        if rank < 1:
            raise CompressionError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.seed = seed
        self.error_feedback: Optional[ErrorFeedback] = (
            ErrorFeedback(num_workers) if use_error_feedback else None)
        self._q: Optional[np.ndarray] = None

    def _initial_q(self, n: int, r: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, n, r))
        return orthonormalize(rng.standard_normal((n, r)))

    def step(self, worker_grads: Sequence[np.ndarray]) -> AggregationResult:
        from ..collectives import ring_allreduce  # local import avoids cycle

        grads = self._check_round(worker_grads)
        shape = grads[0].shape
        matrices: List[np.ndarray] = []
        for rank_idx, grad in enumerate(grads):
            if self.error_feedback is not None:
                corrected = self.error_feedback.corrected(rank_idx, grad)
            else:
                corrected = grad
            matrices.append(_as_matrix(corrected))

        m, n = matrices[0].shape
        r = min(self.rank, m, n)
        if self._q is None or self._q.shape != (n, r):
            self._q = self._initial_q(n, r)

        local_p = [mat @ self._q for mat in matrices]
        p_mean = ring_allreduce(local_p)[0] / self.num_workers
        p_hat = orthonormalize(p_mean)
        local_q = [mat.T @ p_hat for mat in matrices]
        q_mean = ring_allreduce(local_q)[0] / self.num_workers
        update = (p_hat @ q_mean.T).reshape(shape)

        if self.error_feedback is not None:
            for rank_idx, mat in enumerate(matrices):
                residual = mat.reshape(shape) - update
                self.error_feedback.store(rank_idx, residual)
        self._q = q_mean

        wire = float((p_hat.size + q_mean.size) * FLOAT32_BYTES)
        return AggregationResult(
            update=update,
            bytes_sent_per_worker=wire,
            bytes_received_per_worker=wire,
            messages=2,
            collective="ring_allreduce",
        )


class GatherDecodeAggregator(Aggregator):
    """Generic aggregation for non-all-reducible codecs (ATOMO, QSGD,
    TernGrad, 1-bit): all-gather payloads, decode all ``p``, average.
    Optional error feedback for the biased ones."""

    name = "gather-decode"
    all_reducible = False

    def __init__(self, num_workers: int, codec: Compressor,
                 use_error_feedback: bool = False, messages: int = 1):
        super().__init__(num_workers)
        if codec.all_reducible:
            raise CompressionError(
                f"{codec.name} is all-reducible; use MeanAllReduceAggregator")
        self.codec = codec
        self.messages = messages
        self.error_feedback: Optional[ErrorFeedback] = (
            ErrorFeedback(num_workers) if use_error_feedback else None)

    def step(self, worker_grads: Sequence[np.ndarray]) -> AggregationResult:
        grads = self._check_round(worker_grads)
        decoded = []
        wire = 0.0
        for rank_idx, grad in enumerate(grads):
            if self.error_feedback is not None:
                corrected = self.error_feedback.corrected(rank_idx, grad)
            else:
                corrected = grad
            payload = self.codec.encode(corrected)
            approx = self.codec.decode(payload)
            if self.error_feedback is not None:
                self.error_feedback.store(rank_idx, corrected - approx)
            decoded.append(approx)
            wire = max(wire, payload.wire_bytes)
        update = np.mean(decoded, axis=0)
        return AggregationResult(
            update=update,
            bytes_sent_per_worker=wire,
            bytes_received_per_worker=wire * (self.num_workers - 1),
            messages=self.messages,
            collective="allgather",
        )
