"""Figure 6: signSGD scalability and the paper's headline 1075 ms number."""

from repro.experiments import run_fig6


def test_fig6_signsgd_scalability(run_once, show):
    result = run_once(run_fig6, iterations=110, warmup=10)
    show(result)

    # --- The paper's headline: ResNet-101 at 96 GPUs, signSGD ~1075 ms
    # vs syncSGD ~265 ms. Assert the bands and the >= 2.5x gap.
    sign = result.single(model="resnet101", scheme="signsgd",
                         gpus=96)["mean_ms"]
    sync = result.single(model="resnet101", scheme="syncsgd",
                         gpus=96)["mean_ms"]
    assert 800 < sign < 1500
    assert 200 < sync < 450
    assert sign / sync > 2.5

    # --- Communication grows linearly: time roughly doubles per
    # doubling at scale, while syncSGD stays nearly flat.
    for model in ("resnet50", "resnet101"):
        t8 = result.single(model=model, scheme="signsgd",
                           gpus=8)["mean_ms"]
        t96 = result.single(model=model, scheme="signsgd",
                            gpus=96)["mean_ms"]
        assert t96 > 3 * t8, model
        s8 = result.single(model=model, scheme="syncsgd",
                           gpus=8)["mean_ms"]
        s96 = result.single(model=model, scheme="syncsgd",
                            gpus=96)["mean_ms"]
        assert s96 < 1.5 * s8, model

    # --- BERT: runs at 32, OOM beyond (paper's figure note).
    assert not result.single(model="bert-base", scheme="signsgd",
                             gpus=32)["oom"]
    for gpus in (64, 96):
        assert result.single(model="bert-base", scheme="signsgd",
                             gpus=gpus)["oom"]
