"""Exception hierarchy for :mod:`repro`.

A single root, :class:`ReproError`, so callers can catch everything the
library raises deliberately with one ``except`` clause while still letting
genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised deliberately by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or combined with invalid parameters."""


class OutOfMemoryError(ReproError):
    """A simulated worker exceeded its GPU memory budget.

    Mirrors the paper's observation that non-all-reducible methods (Top-K,
    signSGD) could not scale past 32 GPUs for BERT because their aggregation
    working set grows linearly with the number of workers.
    """

    def __init__(self, message: str, required_bytes: float = 0.0,
                 budget_bytes: float = 0.0):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class EngineError(ReproError):
    """The experiment engine gave up on a job after exhausting retries.

    Carries the final failure's description; the sweep that submitted the
    job keeps running and reports the failure as a degraded row instead
    of dying wholesale.
    """


class CollectiveError(ReproError):
    """A collective was invoked with inconsistent per-worker inputs."""


class CompressionError(ReproError):
    """A compressor was given input it cannot encode or decode."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class CalibrationError(ReproError):
    """A calibration routine could not fit its constants."""
