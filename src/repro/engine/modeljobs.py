"""Closed-form model evaluations as engine jobs.

The what-if sweeps (§6) price the *analytic* performance model, not the
simulator — each point is a closed-form evaluation that finishes in
microseconds.  Running them as engine jobs still pays off twice:

* **per-point caching** — a :class:`ModelEvalJob` fingerprints exactly
  like a :class:`~repro.engine.engine.SimJob` does (content hash of
  everything that determines the prediction), so repeated sweeps are
  served from the same :class:`~repro.engine.cache.SimulationCache`;
* **family chunking** — jobs that differ only along vectorizable axes
  (bandwidth, world size, batch size, compute factor, or the Figure-13
  ``k``/``l`` pair) share a :meth:`ModelEvalJob.family_key`.  The engine
  collapses each family into **one** grid-kernel call
  (:mod:`repro.core.grid`) — and, on the pool path, one worker
  invocation — then fans the cells back out to per-point outcomes and
  per-point cache entries.  Chunking never changes fingerprints or
  cached bytes; it only amortizes IPC, hashing, and cache I/O.

The bit-identity contract of :mod:`repro.core.grid` makes the collapse
safe: a family evaluated through the grid kernel yields cells
byte-identical to :meth:`ModelEvalJob.evaluate` run point by point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression.kernel_cost import KernelProfile, v100_kernel_profile
from ..compression.schemes import Scheme
from ..core.grid import (
    compressed_time_grid,
    syncsgd_time_grid,
    tradeoff_time_grid,
)
from ..core.perf_model import (
    PerfModelInputs,
    PredictedTime,
    compressed_time,
    syncsgd_time,
)
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_json,
    digest,
    model_fingerprint,
    profile_fingerprint,
    scheme_fingerprint,
)


def _gpu_payload(gpu: GPUSpec) -> Dict[str, Any]:
    """GPU identity in the same rendering cluster fingerprints use."""
    return {
        "name": gpu.name,
        "peak_fp32_flops": gpu.peak_fp32_flops,
        "training_efficiency": gpu.training_efficiency,
        "memcpy_bytes_per_s": gpu.memcpy_bytes_per_s,
        "memory_bytes": gpu.memory_bytes,
        "kernel_launch_overhead_s": gpu.kernel_launch_overhead_s,
    }


@dataclass(frozen=True, eq=False)
class ModelEvalJob:
    """One closed-form performance-model evaluation.

    ``scheme=None`` prices the syncSGD baseline (§4.1); a scheme prices
    sequential compression (§4.2).  ``compute_factor`` scales the GPU
    *and* the kernel profile, exactly like the Figure-12 sweep.  Setting
    ``tradeoff_k``/``tradeoff_l`` (always together, and only with a base
    scheme) prices the Figure-13 hypothetical instead: encode time
    divided by ``k``, wire payload multiplied by ``l·k``.
    """

    model: ModelSpec
    scheme: Optional[Scheme]
    inputs: PerfModelInputs
    gpu: GPUSpec = V100
    profile: Optional[KernelProfile] = None
    compute_factor: float = 1.0
    tradeoff_k: Optional[float] = None
    tradeoff_l: Optional[float] = None

    def __post_init__(self) -> None:
        if self.compute_factor <= 0:
            raise ConfigurationError(
                f"compute factors must be > 0, got {self.compute_factor}")
        if (self.tradeoff_k is None) != (self.tradeoff_l is None):
            raise ConfigurationError(
                "tradeoff_k and tradeoff_l must be provided together")
        if self.tradeoff_k is not None:
            if self.scheme is None:
                raise ConfigurationError(
                    "tradeoff jobs need a base scheme to derive from")
            if self.compute_factor != 1.0:
                raise ConfigurationError(
                    "tradeoff jobs fix compute_factor at 1.0")
            if self.tradeoff_k < 1:
                raise ConfigurationError(
                    f"k must be >= 1, got {self.tradeoff_k}")
            if self.tradeoff_l < 1:
                raise ConfigurationError(
                    f"l must be >= 1, got {self.tradeoff_l}")

    @property
    def is_tradeoff(self) -> bool:
        """Whether this job prices a Figure-13 hypothetical scheme."""
        return self.tradeoff_k is not None

    def fingerprint(self) -> str:
        """Content hash identifying this evaluation's prediction.

        Shares the cache namespace with simulation jobs without ever
        colliding: the payload leads with a distinct ``kind``.
        """
        payload = {
            "kind": "model-eval",
            "version": FINGERPRINT_VERSION,
            "model": model_fingerprint(self.model),
            "scheme": scheme_fingerprint(self.scheme),
            "gpu": _gpu_payload(self.gpu),
            "profile": profile_fingerprint(self.profile),
            "inputs": {
                "world_size": self.inputs.world_size,
                "bandwidth_bytes_per_s": self.inputs.bandwidth_bytes_per_s,
                "alpha_s": self.inputs.alpha_s,
                "gamma": self.inputs.gamma,
                "batch_size": self.inputs.batch_size,
                "bucket_cap_bytes": self.inputs.bucket_cap_bytes,
            },
            "compute_factor": self.compute_factor,
            "tradeoff": (None if not self.is_tradeoff
                         else {"k": self.tradeoff_k, "l": self.tradeoff_l}),
        }
        return digest(payload)

    def family_key(self) -> str:
        """Grouping key: jobs with equal keys differ only along axes the
        grid kernel vectorizes, so the engine may evaluate them in one
        call.

        Sweep jobs vectorize bandwidth, world size, batch size, and
        compute factor; tradeoff jobs vectorize ``(k, l)`` and therefore
        pin the sweep axes instead.
        """
        payload: Dict[str, Any] = {
            "model": model_fingerprint(self.model),
            "scheme": scheme_fingerprint(self.scheme),
            "gpu": _gpu_payload(self.gpu),
            "profile": profile_fingerprint(self.profile),
            "alpha_s": self.inputs.alpha_s,
            "gamma": self.inputs.gamma,
            "bucket_cap_bytes": self.inputs.bucket_cap_bytes,
        }
        if self.is_tradeoff:
            payload["kind"] = "tradeoff"
            payload["world_size"] = self.inputs.world_size
            payload["bandwidth_bytes_per_s"] = \
                self.inputs.bandwidth_bytes_per_s
            payload["batch_size"] = self.inputs.batch_size
        else:
            payload["kind"] = "sweep"
        return canonical_json(payload)

    def evaluate(self) -> PredictedTime:
        """Price this single point (the per-point reference the family
        grid path reproduces bit for bit)."""
        if self.is_tradeoff:
            grid = tradeoff_time_grid(
                self.model, self.scheme, np.asarray(float(self.tradeoff_k)),
                np.asarray(float(self.tradeoff_l)), self.inputs, self.gpu,
                self.profile)
            return grid.at(())
        gpu = self.gpu
        prof = self.profile
        if self.compute_factor != 1.0:
            gpu = gpu.scaled(self.compute_factor)
            prof = (prof if prof is not None
                    else v100_kernel_profile()).scaled(self.compute_factor)
        if self.scheme is None:
            return syncsgd_time(self.model, self.inputs, gpu)
        return compressed_time(self.model, self.scheme, self.inputs, gpu,
                               prof)

    def describe(self) -> str:
        """Short human label for logs and error messages."""
        scheme_label = self.scheme.label if self.scheme else "syncsgd"
        if self.is_tradeoff:
            return (f"eval {self.model.name} x {scheme_label} "
                    f"k={self.tradeoff_k:g} l={self.tradeoff_l:g}")
        return (f"eval {self.model.name} x {scheme_label} @ "
                f"{self.inputs.world_size} GPUs")


@dataclass
class ModelEvalOutcome:
    """What one model evaluation produced.

    ``exec_s`` is the job's share of its family's evaluation wall time
    (0 for cache hits); ``error`` carries the exception of a failed
    evaluation (an invalid configuration, typically) so sweep code can
    re-raise it at the offending point.
    """

    job: ModelEvalJob
    result: Optional[PredictedTime] = None
    error: Optional[Exception] = None
    cached: bool = False
    exec_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether a prediction came back."""
        return self.result is not None

    def unwrap(self) -> PredictedTime:
        """The prediction, or re-raise the evaluation's failure."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def evaluate_family(jobs: Sequence[ModelEvalJob]) -> List[PredictedTime]:
    """Evaluate one family in a single grid-kernel call.

    All jobs must share a :meth:`ModelEvalJob.family_key`; their
    vectorizable axes are laid out as aligned 1-D arrays (a zipped
    sweep, not an outer product), so cell ``i`` is job ``i``'s point —
    bit-identical to ``jobs[i].evaluate()``.
    """
    if not jobs:
        return []
    first = jobs[0]
    if len(jobs) == 1:
        return [first.evaluate()]
    if first.is_tradeoff:
        grid = tradeoff_time_grid(
            first.model, first.scheme,
            np.asarray([float(j.tradeoff_k) for j in jobs]),
            np.asarray([float(j.tradeoff_l) for j in jobs]),
            first.inputs, first.gpu, first.profile)
    else:
        bw = np.asarray([j.inputs.bandwidth_bytes_per_s for j in jobs],
                        dtype=float)
        p = np.asarray([j.inputs.world_size for j in jobs])
        factor = np.asarray([j.compute_factor for j in jobs], dtype=float)
        bs = np.asarray([j.inputs.batch_size
                         if j.inputs.batch_size is not None
                         else j.model.default_batch_size for j in jobs])
        if first.scheme is None:
            grid = syncsgd_time_grid(
                first.model, first.inputs, first.gpu,
                bandwidth_bytes_per_s=bw, world_size=p,
                compute_factor=factor, batch_size=bs)
        else:
            grid = compressed_time_grid(
                first.model, first.scheme, first.inputs, first.gpu,
                first.profile, bandwidth_bytes_per_s=bw, world_size=p,
                compute_factor=factor, batch_size=bs)
    return [grid.at(i) for i in range(len(jobs))]


def _execute_model_family(jobs: Sequence[ModelEvalJob],
                          ) -> Tuple[List[PredictedTime], float]:
    """Process-pool entry point: one family, one grid call.

    Exceptions propagate to the parent, which falls back to in-process
    per-point evaluation (isolating the offending job instead of
    failing the family wholesale).
    """
    started = time.perf_counter()
    results = evaluate_family(jobs)
    return results, time.perf_counter() - started
