"""Natural compression [30] and error-feedback signSGD [35].

Two methods from the paper's related-work roster that bracket the design
space nicely:

* **Natural compression** rounds each value stochastically to a power of
  two — unbiased, ~4x smaller (sign + 8-bit exponent), and extremely
  cheap to encode (bit manipulation).  By the paper's §5 criteria it is
  close to the "ideal" profile except that exponent payloads from
  different workers cannot be summed, so it still needs all-gather.
* **EF-signSGD** is signSGD made convergent: scale the sign pattern by
  the mean absolute value and carry the quantization error in an
  error-feedback buffer.  Same wire format as signSGD (1 bit + one
  scale), same all-gather aggregation; the error feedback lives in the
  aggregator.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompressionError
from ..units import FLOAT32_BYTES
from .base import Compressor, Payload


class NaturalCompressor(Compressor):
    """Stochastic rounding to signed powers of two.

    Encode ``x`` as ``sign(x) * 2^e`` with ``e = floor(log2 |x|)`` chosen
    stochastically between floor and ceil so the estimator is unbiased.
    Wire format: 1 sign bit + 8 exponent bits per element (int8 exponent
    biased around 0; zeros get a reserved code).
    """

    name = "natural"
    all_reducible = False
    layerwise = True

    #: Reserved exponent code for exact zeros.
    _ZERO_CODE = -128

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        signs = flat >= 0.0
        magnitude = np.abs(flat)
        nonzero = magnitude > 0.0

        exponents = np.full(flat.size, self._ZERO_CODE, dtype=np.int16)
        if nonzero.any():
            logs = np.log2(magnitude[nonzero])
            floor = np.floor(logs)
            # P(round up) = (|x| - 2^floor) / (2^ceil - 2^floor)
            low = 2.0 ** floor
            prob_up = (magnitude[nonzero] - low) / low  # (x-2^f)/(2^(f+1)-2^f)
            up = self._rng.random(prob_up.size) < prob_up
            chosen = (floor + up).astype(np.int16)
            chosen = np.clip(chosen, -126, 127)
            exponents[nonzero] = chosen

        packed_signs = np.packbits(signs)
        return Payload(
            arrays=(exponents.astype(np.int8), packed_signs),
            wire_bytes=float(flat.size * (1.0 + 1.0 / 8.0)),
            shape=arr.shape,
            meta={"numel": float(flat.size)},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        exponents, packed_signs = payload.arrays
        numel = int(payload.meta["numel"])
        signs = np.unpackbits(packed_signs, count=numel).astype(bool)
        exps = exponents.astype(np.float64)
        values = np.where(exps == self._ZERO_CODE, 0.0, 2.0 ** exps)
        return (np.where(signs, values, -values)).reshape(payload.shape)


class EFSignCompressor(Compressor):
    """Scaled sign compression: ``mean(|x|) * sign(x)`` (EF-signSGD's
    transmission; the error-feedback state lives in the aggregator)."""

    name = "efsignsgd"
    all_reducible = False
    layerwise = True

    def encode(self, grad: np.ndarray) -> Payload:
        arr = self._require_floating(grad)
        flat = arr.reshape(-1)
        scale = float(np.abs(flat).mean())
        packed = np.packbits(flat >= 0.0)
        return Payload(
            arrays=(packed,),
            wire_bytes=np.ceil(flat.size / 8.0) + FLOAT32_BYTES,
            shape=arr.shape,
            meta={"numel": float(flat.size), "scale": scale},
        )

    def decode(self, payload: Payload) -> np.ndarray:
        numel = int(payload.meta["numel"])
        bits = np.unpackbits(payload.arrays[0], count=numel).astype(bool)
        signs = np.where(bits, 1.0, -1.0)
        return (payload.meta["scale"] * signs).reshape(payload.shape)
