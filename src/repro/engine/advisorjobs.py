"""Advisor bandwidth shards as engine jobs.

The auto-advisor (:mod:`repro.analysis.advisor`) prices the full
scheme × hyperparameter × world-size × bandwidth grid — on the default
sweep, over a million configurations.  One grid call that size would
blow the :data:`repro.core.grid.MAX_GRID_POINTS` bound, so the sweep is
sliced along its widest axis into *shards*: each
:class:`AdvisorShardJob` prices one contiguous slice of the bandwidth
axis for one (candidate, world size) pair through the grid kernels,
bounded-memory by construction.

Two properties make shards engine citizens like
:class:`~repro.engine.modeljobs.ModelEvalJob`:

* **per-shard caching** — a shard fingerprints as content
  (candidate, calibrated inputs, axis specification, slice), so a
  repeated ``repro advise`` is served from the tiered
  :class:`~repro.engine.cache.SimulationCache` without pricing
  anything;
* **family chunking** — shards of one candidate share a
  :meth:`AdvisorShardJob.family_key`; on the pool path the engine
  submits one task per candidate (amortizing IPC over that candidate's
  shards) while each member still runs its own bounded grid call.

Shard boundaries never change values: every shard slices the *same*
full ``np.linspace`` bandwidth axis, so the concatenation of shard
totals is bit-identical to one monolithic grid evaluation — which is
what makes sharded-parallel advise output byte-identical to serial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression.kernel_cost import KernelProfile
from ..compression.schemes import Scheme
from ..core.grid import compressed_time_grid, syncsgd_time_grid
from ..core.perf_model import PerfModelInputs
from ..errors import ConfigurationError
from ..hardware import GPUSpec, V100
from ..models import ModelSpec
from ..units import GIGA
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_json,
    digest,
    model_fingerprint,
    profile_fingerprint,
    scheme_fingerprint,
)
from .modeljobs import _gpu_payload


@dataclass(frozen=True)
class AdvisorShardResult:
    """What one shard produced: predicted iteration seconds per point.

    ``total_s[i]`` is the model's total at the shard's ``i``-th
    bandwidth point (plain Python floats, so the cache's JSON round
    trip preserves them exactly).
    """

    total_s: Tuple[float, ...]


@dataclass(frozen=True, eq=False)
class AdvisorShardJob:
    """One bounded slice of the advisor's pricing grid.

    The bandwidth axis is specified *globally* — ``bw_points`` samples
    of ``np.linspace(bw_lo_gbps, bw_hi_gbps)`` — and the shard owns
    ``[start, start + count)`` of it.  Evaluation always materializes
    the full axis and slices (a few kilobytes), so a point's value is
    bit-identical however the sweep is sharded.  ``scheme=None`` prices
    the syncSGD baseline.
    """

    model: ModelSpec
    scheme: Optional[Scheme]
    inputs: PerfModelInputs
    world_size: int
    bw_lo_gbps: float
    bw_hi_gbps: float
    bw_points: int
    start: int
    count: int
    gpu: GPUSpec = V100
    profile: Optional[KernelProfile] = None

    def __post_init__(self) -> None:
        if self.bw_points < 2:
            raise ConfigurationError(
                f"bw_points must be >= 2, got {self.bw_points}")
        if not 0 < self.bw_lo_gbps < self.bw_hi_gbps:
            raise ConfigurationError(
                f"need 0 < bw_lo_gbps < bw_hi_gbps, got "
                f"[{self.bw_lo_gbps}, {self.bw_hi_gbps}]")
        if self.world_size < 1:
            raise ConfigurationError(
                f"world_size must be >= 1, got {self.world_size}")
        if not 0 <= self.start < self.bw_points:
            raise ConfigurationError(
                f"shard start {self.start} outside axis of "
                f"{self.bw_points} points")
        if self.count < 1 or self.start + self.count > self.bw_points:
            raise ConfigurationError(
                f"shard [{self.start}, {self.start + self.count}) outside "
                f"axis of {self.bw_points} points")

    def bandwidth_axis(self) -> np.ndarray:
        """This shard's bandwidths in bytes/s: the global linspace
        (Gbit/s), converted with the scalar helper's exact arithmetic,
        then sliced."""
        full = np.linspace(self.bw_lo_gbps, self.bw_hi_gbps,
                           self.bw_points) * GIGA / 8.0
        return full[self.start:self.start + self.count]

    def bandwidth_axis_gbps(self) -> np.ndarray:
        """This shard's bandwidth points in Gbit/s (for labelling)."""
        full = np.linspace(self.bw_lo_gbps, self.bw_hi_gbps,
                           self.bw_points)
        return full[self.start:self.start + self.count]

    def fingerprint(self) -> str:
        """Content hash identifying this shard's totals.

        Shares the cache namespace with simulation and model-eval jobs
        without colliding: the payload leads with a distinct ``kind``.
        """
        payload = {
            "kind": "advisor-shard",
            "version": FINGERPRINT_VERSION,
            "model": model_fingerprint(self.model),
            "scheme": scheme_fingerprint(self.scheme),
            "gpu": _gpu_payload(self.gpu),
            "profile": profile_fingerprint(self.profile),
            "inputs": {
                "alpha_s": self.inputs.alpha_s,
                "gamma": self.inputs.gamma,
                "batch_size": self.inputs.batch_size,
                "bucket_cap_bytes": self.inputs.bucket_cap_bytes,
            },
            "world_size": self.world_size,
            "axis": {
                "lo_gbps": self.bw_lo_gbps,
                "hi_gbps": self.bw_hi_gbps,
                "points": self.bw_points,
                "start": self.start,
                "count": self.count,
            },
        }
        return digest(payload)

    def family_key(self) -> str:
        """Grouping key: one candidate's shards across world sizes and
        slices, which the pool path submits as a single task."""
        payload: Dict[str, Any] = {
            "kind": "advisor-shard",
            "model": model_fingerprint(self.model),
            "scheme": scheme_fingerprint(self.scheme),
            "gpu": _gpu_payload(self.gpu),
            "profile": profile_fingerprint(self.profile),
            "alpha_s": self.inputs.alpha_s,
            "gamma": self.inputs.gamma,
            "batch_size": self.inputs.batch_size,
            "bucket_cap_bytes": self.inputs.bucket_cap_bytes,
        }
        return canonical_json(payload)

    def evaluate(self) -> AdvisorShardResult:
        """Price this shard: one bounded grid-kernel call."""
        bw = self.bandwidth_axis()
        if self.scheme is None:
            grid = syncsgd_time_grid(
                self.model, self.inputs, self.gpu,
                bandwidth_bytes_per_s=bw, world_size=self.world_size)
        else:
            grid = compressed_time_grid(
                self.model, self.scheme, self.inputs, self.gpu,
                self.profile, bandwidth_bytes_per_s=bw,
                world_size=self.world_size)
        return AdvisorShardResult(
            total_s=tuple(float(t) for t in grid.total))

    def describe(self) -> str:
        """Short human label for logs and error messages."""
        scheme_label = self.scheme.label if self.scheme else "syncsgd"
        return (f"advise {self.model.name} x {scheme_label} @ "
                f"{self.world_size} GPUs, bw[{self.start}:"
                f"{self.start + self.count}]")


@dataclass
class AdvisorShardOutcome:
    """What one shard evaluation produced (mirror of
    :class:`~repro.engine.modeljobs.ModelEvalOutcome`)."""

    job: AdvisorShardJob
    result: Optional[AdvisorShardResult] = None
    error: Optional[Exception] = None
    cached: bool = False
    exec_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether shard totals came back."""
        return self.result is not None

    def unwrap(self) -> AdvisorShardResult:
        """The totals, or re-raise the evaluation's failure."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def evaluate_advisor_family(jobs: Sequence[AdvisorShardJob],
                            ) -> List[AdvisorShardResult]:
    """Evaluate one candidate's shards in order.

    Unlike a model-eval family (one grid call for the whole family),
    each shard keeps its own bounded grid call — the family exists to
    amortize pool IPC and cache batching, not to fuse the math.
    """
    return [job.evaluate() for job in jobs]


def _execute_advisor_family(jobs: Sequence[AdvisorShardJob],
                            ) -> Tuple[List[AdvisorShardResult], float]:
    """Process-pool entry point: one candidate's shards, sequentially.

    Exceptions propagate to the parent, which falls back to in-process
    per-shard evaluation (isolating the offending shard instead of
    failing the candidate wholesale).
    """
    started = time.perf_counter()
    results = evaluate_advisor_family(jobs)
    return results, time.perf_counter() - started
