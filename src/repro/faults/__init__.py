"""Seeded, deterministic fault injection for the cluster simulator.

The paper's argument — gradient compression rarely pays off in
datacenters — rests on timing behaviour under *benign* conditions:
lognormal jitter and incast are the only adversities the base simulator
models.  Real clusters also straggle, flap and die, and whether
compression helps or hurts under those conditions is exactly the kind
of end-to-end question the paper's methodology is built to answer.

This package supplies the missing fault model:

* :class:`FaultSchedule` — a declarative, JSON-serializable description
  of *what goes wrong when*: per-worker compute stragglers, degraded or
  flapping links, straggler NICs, gradient-bucket retransmits, and
  worker crashes with two recovery policies;
* :class:`FaultInjector` — resolves the schedule into per-iteration
  fault state the :class:`~repro.simulator.DDPSimulator` consumes.

Determinism is the design contract: the same schedule and the same
seeds produce byte-identical simulated timelines whether the sweep runs
serially or fanned out over a process pool, and an **empty schedule is
bit-identical to no schedule at all** — no extra RNG draws, no changed
cache keys.
"""

from .injector import (
    FAULT_STREAM,
    FaultInjector,
    IterationFaults,
    ResolvedFaults,
)
from .schedule import (
    CrashFault,
    FaultSchedule,
    LinkFault,
    NodeFault,
    RetransmitFault,
    StragglerFault,
)

__all__ = [
    "FaultSchedule",
    "StragglerFault", "LinkFault", "NodeFault",
    "RetransmitFault", "CrashFault",
    "FaultInjector", "IterationFaults", "ResolvedFaults", "FAULT_STREAM",
]
