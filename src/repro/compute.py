"""Compute-time model: how long forward/backward passes take on a GPU.

This is the ``T_comp`` term of the paper's performance model (§4).  It is
shared by the analytic model (:mod:`repro.core.perf_model`) and the
discrete-event simulator (:mod:`repro.simulator`), so both sides of the
Figure-8 validation consume identical compute estimates and differ only in
how they treat communication and overlap.

The model is a calibrated roofline:

    ``T = FLOPs(batch) / (peak * gpu_eff * model_eff) * (1 + half/batch)``

where the saturation term captures GPU under-utilization at small batch
sizes — the effect behind the paper's Figure 7 (small batches leave less
computation to hide communication under, *and* run less efficiently).
Constants are calibrated against the paper's published V100 measurements;
see :mod:`repro.hardware.gpus` and the per-model fields on
:class:`repro.models.ModelSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .errors import ConfigurationError
from .hardware import GPUSpec
from .models import LayerSpec, ModelSpec
from .units import FLOAT32_BYTES


@dataclass(frozen=True)
class ComputeModel:
    """Timing/memory model for one ``(model, gpu)`` pair.

    Attributes:
        model: The workload.
        gpu: The device it runs on.
    """

    model: ModelSpec
    gpu: GPUSpec

    def effective_flops(self, batch_size: int) -> float:
        """Sustained FLOP/s for this model at this batch size."""
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        saturation = 1.0 / (1.0 + self.model.batch_half_saturation / batch_size)
        return (self.gpu.effective_training_flops
                * self.model.compute_efficiency * saturation)

    def forward_time(self, batch_size: int) -> float:
        """Seconds for one forward pass."""
        return self.model.fwd_flops(batch_size) / self.effective_flops(batch_size)

    def backward_time(self, batch_size: int) -> float:
        """Seconds for one backward pass — the paper's ``T_comp``."""
        return self.model.bwd_flops(batch_size) / self.effective_flops(batch_size)

    def layer_backward_time(self, layer: LayerSpec, batch_size: int) -> float:
        """Seconds for the backward pass of one layer.

        Used by the simulator to schedule per-layer gradient-ready events
        (the granularity at which DDP overlaps communication).
        """
        if layer.name not in {l.name for l in self.model.layers}:
            raise ConfigurationError(
                f"layer {layer.name!r} is not part of {self.model.name}")
        flops = batch_size * layer.bwd_flops_per_sample()
        return flops / self.effective_flops(batch_size)

    def optimizer_time(self) -> float:
        """Seconds for the SGD parameter update (elementwise, memory-bound:
        read grad + read/write weights + momentum buffer ~ 4 tensor
        sweeps)."""
        bytes_touched = 4.0 * self.model.grad_bytes
        return bytes_touched / self.gpu.memcpy_bytes_per_s

    def iteration_compute_time(self, batch_size: int) -> float:
        """Forward + backward + optimizer, no communication.

        This is the *ideal weak-scaling* per-iteration time: what a run
        would cost if gradient synchronization were free (§5 of the
        paper).
        """
        return (self.forward_time(batch_size)
                + self.backward_time(batch_size)
                + self.optimizer_time())

    # ----- memory --------------------------------------------------------

    def model_state_bytes(self) -> float:
        """Weights + gradients + SGD momentum, all fp32."""
        return 3.0 * self.model.num_params * FLOAT32_BYTES

    def training_memory_bytes(self, batch_size: int) -> float:
        """Steady-state training footprint without aggregation buffers."""
        return (self.model_state_bytes()
                + self.model.activation_bytes(batch_size))

    def peak_memory_bytes(self, batch_size: int,
                          aggregation_bytes: float = 0.0) -> float:
        """Peak footprint over the iteration.

        Activations exist during forward/backward; the aggregation
        working set (gathered payload stacks) exists *after* the backward
        pass has freed the activations, so the peak is the max of the two
        phases, not their sum.
        """
        training_peak = self.training_memory_bytes(batch_size)
        aggregation_peak = self.model_state_bytes() + aggregation_bytes
        return max(training_peak, aggregation_peak)

    def fits_in_memory(self, batch_size: int,
                       extra_bytes: float = 0.0) -> Tuple[bool, float]:
        """Check the iteration's peak footprint (training phase vs
        aggregation phase with ``extra_bytes`` of gathered payload stack)
        against the GPU's memory.

        Returns ``(fits, required_bytes)`` so callers can report how far
        over budget a configuration is (the paper's BERT OOM notes).
        """
        required = self.peak_memory_bytes(batch_size, extra_bytes)
        return required <= self.gpu.memory_bytes, required
