"""Time-to-accuracy model (§7 future work)."""

import math

import numpy as np
import pytest

from repro.compression import PowerSGDScheme, SyncSGDScheme
from repro.core import (
    PerfModelInputs,
    measure_statistical_efficiency,
    steps_to_loss,
    time_to_accuracy,
)
from repro.errors import ConfigurationError
from repro.models import get_model
from repro.units import gbps_to_bytes_per_s


def inputs(bs=12):
    return PerfModelInputs(world_size=64,
                           bandwidth_bytes_per_s=gbps_to_bytes_per_s(10),
                           batch_size=bs)


class TestStepsToLoss:
    def test_finds_first_crossing(self):
        losses = [1.0] * 10 + [0.05] * 10
        step = steps_to_loss(losses, target=0.1)
        assert step is not None
        assert 10 <= step <= 15  # running mean of 5 crosses within 5 steps

    def test_never_reached_returns_none(self):
        assert steps_to_loss([1.0] * 20, target=0.1) is None

    def test_noise_smoothed(self):
        # Single-step dips below target do not count.
        losses = [1.0, 0.01, 1.0, 1.0, 1.0] * 5
        assert steps_to_loss(losses, target=0.1) is None

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            steps_to_loss([1.0], target=0.0)


class TestStatisticalEfficiency:
    def test_fp32_factor_is_one(self):
        assert measure_statistical_efficiency("fp32") == pytest.approx(1.0)

    def test_fp16_factor_near_one(self):
        assert measure_statistical_efficiency("fp16") < 1.3

    def test_powersgd_factor_finite_and_modest(self):
        factor = measure_statistical_efficiency("powersgd")
        assert 1.0 <= factor < 3.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_statistical_efficiency("zipml")


class TestTimeToAccuracy:
    def test_supplied_factor_used(self):
        tta = time_to_accuracy(get_model("bert-base"), PowerSGDScheme(4),
                               inputs(), statistical_factor=1.5)
        assert tta.effective_iteration_s == pytest.approx(
            tta.iteration_s * 1.5)

    def test_total_scales_with_iterations(self):
        tta = time_to_accuracy(get_model("bert-base"), SyncSGDScheme(),
                               inputs(), statistical_factor=1.0)
        assert tta.total_s(200) == pytest.approx(2 * tta.total_s(100))

    def test_infinite_factor_means_never(self):
        tta = time_to_accuracy(get_model("bert-base"), PowerSGDScheme(4),
                               inputs(),
                               statistical_factor=float("inf"))
        assert math.isinf(tta.total_s(100))

    def test_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            time_to_accuracy(get_model("bert-base"), PowerSGDScheme(4),
                             inputs(), statistical_factor=0.5)

    def test_compression_win_can_vanish_after_statistics(self):
        """The paper's caveat: per-iteration wins shrink once extra
        iterations are charged.  PowerSGD's ~15-20% BERT win is erased
        by a 1.3x statistical factor."""
        bert = get_model("bert-base")
        sync = time_to_accuracy(bert, SyncSGDScheme(), inputs(),
                                statistical_factor=1.0)
        comp = time_to_accuracy(bert, PowerSGDScheme(4), inputs(),
                                statistical_factor=1.3)
        assert comp.total_s(1000) > sync.total_s(1000)
