"""Cloud instance types.

An instance bundles GPUs with a NIC.  The paper's experiments all run on
AWS ``p3.8xlarge`` (4x V100, ~10 Gbit/s guaranteed network); we also ship
the rest of the p3 family plus 25/100 Gbit/s variants so the what-if
analyses can be driven from realistic configurations rather than raw
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import ConfigurationError
from ..units import gbps_to_bytes_per_s
from .gpus import A100, GPUSpec, V100


@dataclass(frozen=True)
class InstanceType:
    """A machine with one or more GPUs and a network interface.

    Attributes:
        name: Cloud SKU, e.g. ``"p3.8xlarge"``.
        gpu: The GPU spec installed in the machine.
        gpus_per_node: Number of GPUs.
        network_bytes_per_s: NIC bandwidth (bytes/s) available to the
            training job; the paper measures this with iperf3 before each
            run and uses the pairwise minimum.
        intra_node_bytes_per_s: GPU-to-GPU bandwidth inside the node
            (NVLink on p3), used by hierarchical collectives.
        hourly_usd: On-demand price (us-east-1 list prices at the
            paper's time), for cost-to-train planning.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    network_bytes_per_s: float
    intra_node_bytes_per_s: float
    hourly_usd: float = 0.0

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ConfigurationError(
                f"{self.name}: gpus_per_node must be >= 1, got {self.gpus_per_node}")
        if self.network_bytes_per_s <= 0:
            raise ConfigurationError(f"{self.name}: network bandwidth must be > 0")
        if self.intra_node_bytes_per_s <= 0:
            raise ConfigurationError(f"{self.name}: intra-node bandwidth must be > 0")
        if self.hourly_usd < 0:
            raise ConfigurationError(f"{self.name}: hourly_usd must be >= 0")

    def with_network_gbps(self, gbps: float) -> "InstanceType":
        """Return a copy with a different NIC speed (for what-if sweeps)."""
        return replace(
            self,
            name=f"{self.name}@{gbps:g}Gbps",
            network_bytes_per_s=gbps_to_bytes_per_s(gbps),
        )

    def with_gpu(self, gpu: GPUSpec) -> "InstanceType":
        """Return a copy with a different GPU (for compute what-ifs)."""
        return replace(self, name=f"{self.name}/{gpu.name}", gpu=gpu)


#: The paper's testbed: 4x V100, ~10 Gbit/s.
P3_8XLARGE = InstanceType(
    name="p3.8xlarge",
    gpu=V100,
    gpus_per_node=4,
    network_bytes_per_s=gbps_to_bytes_per_s(10),
    intra_node_bytes_per_s=gbps_to_bytes_per_s(300 * 8),  # NVLink ~300 GB/s
    hourly_usd=12.24,
)

P3_2XLARGE = InstanceType(
    name="p3.2xlarge",
    gpu=V100,
    gpus_per_node=1,
    network_bytes_per_s=gbps_to_bytes_per_s(10),
    intra_node_bytes_per_s=gbps_to_bytes_per_s(300 * 8),
    hourly_usd=3.06,
)

P3DN_24XLARGE = InstanceType(
    name="p3dn.24xlarge",
    gpu=V100,
    gpus_per_node=8,
    network_bytes_per_s=gbps_to_bytes_per_s(100),
    intra_node_bytes_per_s=gbps_to_bytes_per_s(300 * 8),
    hourly_usd=31.212,
)

P4D_24XLARGE = InstanceType(
    name="p4d.24xlarge",
    gpu=A100,
    gpus_per_node=8,
    network_bytes_per_s=gbps_to_bytes_per_s(400),
    intra_node_bytes_per_s=gbps_to_bytes_per_s(600 * 8),
    hourly_usd=32.7726,
)

_REGISTRY: Dict[str, InstanceType] = {
    i.name: i for i in (P3_2XLARGE, P3_8XLARGE, P3DN_24XLARGE, P4D_24XLARGE)
}


def get_instance(name: str) -> InstanceType:
    """Look up a built-in instance type by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance {name!r}; available: {sorted(_REGISTRY)}") from None


def available_instances() -> Dict[str, InstanceType]:
    """Return a copy of the built-in instance registry."""
    return dict(_REGISTRY)
