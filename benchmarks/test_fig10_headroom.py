"""Figure 10: the syncSGD-vs-ideal gap bounds encode/decode budgets."""

from repro.experiments import run_fig10


def test_fig10_headroom(run_once, show):
    result = run_once(run_fig10)
    show(result)

    # --- Magnitude bands at the top of the sweep (~150 machines,
    # 10 Gbit/s): paper reads ~50 / ~100 / ~200 ms.
    top = {row["model"]: row["headroom_ms"]
           for row in result.select(gpus=152)}
    assert 30 < top["resnet50"] < 120
    assert 60 < top["resnet101"] < 180
    assert 150 < top["bert-base"] < 350

    # --- Ordering: gap grows with model (communication) size.
    assert top["resnet50"] < top["resnet101"] < top["bert-base"]

    # --- The gap grows with scale for every model.
    for model in ("resnet50", "resnet101", "bert-base"):
        rows = sorted(result.select(model=model),
                      key=lambda r: r["gpus"])
        assert rows[-1]["headroom_ms"] >= rows[0]["headroom_ms"]

    # --- Cross-reference Table 2: Top-K's encode alone (~240 ms+)
    # exceeds the ResNet headroom — the paper's "limited opportunity".
    from repro.compression import TopKScheme
    from repro.models import get_model
    topk = TopKScheme(0.01).cost(get_model("resnet50"), 96)
    assert topk.encode_decode_s * 1e3 > top["resnet50"]
