"""Figure 12: compute what-if — faster GPUs make compression attractive."""

from repro.experiments import run_fig12


def test_fig12_compute_whatif(run_once, show):
    result = run_once(run_fig12)
    show(result, "{:.2f}")

    for model in ("resnet50", "resnet101", "bert-base"):
        rows = sorted(result.select(model=model),
                      key=lambda r: r["compute_factor"])
        ratios = [r["speedup_ratio"] for r in rows]
        # Compression's advantage grows monotonically with compute speed.
        assert ratios == sorted(ratios), model
        # syncSGD saturates (comm-bound): < 20% gain from 2x -> 4x.
        sync2 = next(r for r in rows
                     if r["compute_factor"] == 2.0)["syncsgd_ms"]
        sync4 = next(r for r in rows
                     if r["compute_factor"] == 4.0)["syncsgd_ms"]
        assert sync4 > 0.80 * sync2, model
        # PowerSGD keeps improving: >= 40% faster at 4x than at 1x.
        pwr1 = rows[0]["powersgd_ms"]
        pwr4 = rows[-1]["powersgd_ms"]
        assert pwr4 < 0.6 * pwr1, model

    # ResNet-50 passes the paper's 1.75x speedup mark within the sweep.
    rn50 = sorted(result.select(model="resnet50"),
                  key=lambda r: r["compute_factor"])
    assert rn50[-1]["speedup_ratio"] > 1.75
