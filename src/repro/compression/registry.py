"""Name-based construction of compressors, aggregators and schemes.

Experiments and examples refer to methods by string (``"powersgd"``);
this module maps those names to the three faces of each method: the
single-tensor codec, the distributed aggregator, and the cost scheme.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..errors import ConfigurationError
from .base import Aggregator, Compressor
from .hybrid import HybridPowerSGDScheme
from .identity import FP16Compressor, FP32Compressor
from .lowrank import (
    ATOMOCompressor,
    GatherDecodeAggregator,
    GradiVeqCompressor,
    PowerSGDAggregator,
    PowerSGDCompressor,
)
from .natural import EFSignCompressor, NaturalCompressor
from .quantization import OneBitCompressor, QSGDCompressor, TernGradCompressor
from .schemes import (
    ATOMOScheme,
    DGCScheme,
    EFSignScheme,
    FP16Scheme,
    GradiVeqScheme,
    NaturalScheme,
    OneBitScheme,
    PowerSGDScheme,
    QSGDScheme,
    RandomKScheme,
    Scheme,
    SignSGDScheme,
    SyncSGDScheme,
    TernGradScheme,
    TopKScheme,
)
from .signsgd import MajorityVoteAggregator, SignSGDCompressor
from .sparsification import (
    DGCCompressor,
    MeanAllReduceAggregator,
    RandomKCompressor,
    SparseGatherAggregator,
    TopKCompressor,
)

_COMPRESSORS: Dict[str, Callable[..., Compressor]] = {
    "fp32": FP32Compressor,
    "fp16": FP16Compressor,
    "signsgd": SignSGDCompressor,
    "topk": TopKCompressor,
    "randomk": RandomKCompressor,
    "dgc": DGCCompressor,
    "qsgd": QSGDCompressor,
    "terngrad": TernGradCompressor,
    "onebit": OneBitCompressor,
    "powersgd": PowerSGDCompressor,
    "atomo": ATOMOCompressor,
    "gradiveq": GradiVeqCompressor,
    "natural": NaturalCompressor,
    "efsignsgd": EFSignCompressor,
}

_SCHEMES: Dict[str, Callable[..., Scheme]] = {
    "syncsgd": SyncSGDScheme,
    "fp16": FP16Scheme,
    "powersgd": PowerSGDScheme,
    "topk": TopKScheme,
    "signsgd": SignSGDScheme,
    "qsgd": QSGDScheme,
    "terngrad": TernGradScheme,
    "onebit": OneBitScheme,
    "atomo": ATOMOScheme,
    "randomk": RandomKScheme,
    "dgc": DGCScheme,
    "gradiveq": GradiVeqScheme,
    "natural": NaturalScheme,
    "efsignsgd": EFSignScheme,
    "hybrid-powersgd": HybridPowerSGDScheme,
}


def make_compressor(name: str, **params: Any) -> Compressor:
    """Construct the single-tensor codec registered under ``name``."""
    if name not in _COMPRESSORS:
        raise ConfigurationError(
            f"unknown compressor {name!r}; available: {available_methods()}")
    return _COMPRESSORS[name](**params)


def make_scheme(name: str, **params: Any) -> Scheme:
    """Construct the cost scheme registered under ``name``."""
    if name not in _SCHEMES:
        raise ConfigurationError(
            f"unknown scheme {name!r}; available: {sorted(_SCHEMES)}")
    return _SCHEMES[name](**params)


def scheme_from_spec(spec: str) -> Scheme:
    """Parse a ``'name'`` or ``'name:key=value,key=value'`` spec string.

    The textual scheme syntax the CLI (``--scheme powersgd:rank=4``)
    and the serving API share; numeric parameter values become ``int``
    when possible, ``float`` otherwise.
    """
    name, _, params_text = spec.partition(":")
    params: Dict[str, Any] = {}
    if params_text:
        for item in params_text.split(","):
            key, _, value = item.partition("=")
            if not key or not value:
                raise ConfigurationError(
                    f"bad scheme parameter {item!r} in spec {spec!r}")
            try:
                params[key] = int(value)
            except ValueError:
                try:
                    params[key] = float(value)
                except ValueError:
                    raise ConfigurationError(
                        f"non-numeric scheme parameter {item!r} "
                        f"in spec {spec!r}")
    return make_scheme(name, **params)


def make_aggregator(name: str, num_workers: int, **params: Any) -> Aggregator:
    """Construct the distributed aggregator for method ``name``.

    Routes each method to its aggregation strategy: PowerSGD to the
    warm-started two-all-reduce algorithm, all-reducible codecs to the
    mean-all-reduce path, the rest to gather-and-decode (with error
    feedback for the biased sparsifiers, matching the reference systems).
    """
    if name == "powersgd":
        return PowerSGDAggregator(num_workers, **params)
    if name == "signsgd":
        if params:
            raise ConfigurationError(
                f"signsgd aggregator takes no parameters, got {params}")
        return MajorityVoteAggregator(num_workers)
    if name in ("fp32", "fp16", "randomk", "gradiveq"):
        return MeanAllReduceAggregator(
            num_workers, make_compressor(name, **params))
    if name in ("topk", "dgc"):
        return SparseGatherAggregator(
            num_workers, make_compressor(name, **params),
            use_error_feedback=True)
    if name in ("qsgd", "terngrad", "atomo", "onebit", "natural",
                "efsignsgd"):
        use_ef = name in ("atomo", "onebit", "efsignsgd")  # the biased ones
        return GatherDecodeAggregator(
            num_workers, make_compressor(name, **params),
            use_error_feedback=use_ef)
    raise ConfigurationError(
        f"unknown aggregator {name!r}; available: {available_methods()}")


def available_methods() -> List[str]:
    """Sorted names of all registered compression methods."""
    return sorted(_COMPRESSORS)


def available_schemes() -> List[str]:
    """Sorted names of all registered cost schemes.

    The scheme-level companion of :func:`available_methods`: the names
    :func:`make_scheme` accepts.  The advisor enumerates its candidate
    grid from this list, so registering a scheme here is all it takes
    for the scheme to show up in ``repro advise`` and, via
    :func:`repro.core.advisor.default_candidates`, ``repro recommend``.
    """
    return sorted(_SCHEMES)
