"""Builders for user-defined architectures.

The zoo covers the paper's workloads; these helpers let a user model
*their* network without hand-writing :class:`LayerSpec` lists:

* :func:`mlp_model` — dense stacks (recommenders, tabular models);
* :func:`simple_cnn` — plain conv/pool stacks (non-residual CNNs);
* :func:`scaled_model` — an existing spec with every layer width
  multiplied (capacity what-ifs: "what if my model were 4x wider?").

All return ordinary :class:`~repro.models.ModelSpec` objects, so the
performance model, simulator and advisor work on them unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import FLOAT32_BYTES
from .flops import conv2d_flops, linear_flops, norm_flops, pool_flops
from .layers import LayerSpec, ModelSpec


def mlp_model(name: str, input_dim: int, hidden_dims: Sequence[int],
              num_classes: int, default_batch_size: int = 256,
              compute_efficiency: float = 0.7) -> ModelSpec:
    """A fully connected network spec.

    Dense layers are communication-heavy relative to their compute
    (VGG's pathology, concentrated) — useful for exploring the paper's
    "low compute density" workload trend.
    """
    if input_dim < 1 or num_classes < 2:
        raise ConfigurationError(
            f"invalid dims: input={input_dim}, classes={num_classes}")
    dims = (input_dim, *hidden_dims, num_classes)
    if any(d < 1 for d in dims):
        raise ConfigurationError(f"all dims must be >= 1, got {dims}")
    layers: List[LayerSpec] = []
    for i, (fan_in, fan_out) in enumerate(zip(dims, dims[1:])):
        layers.append(LayerSpec(
            name=f"fc{i}", kind="linear",
            param_shape=(fan_out, fan_in),
            matrix_shape=(fan_out, fan_in),
            extra_params=fan_out,
            fwd_flops_per_sample=linear_flops(fan_in, fan_out),
            activation_bytes_per_sample=fan_out * FLOAT32_BYTES,
        ))
    return ModelSpec(
        name=name, layers=tuple(layers),
        default_batch_size=default_batch_size,
        sample_description=f"{input_dim}-dim feature vector",
        compute_efficiency=compute_efficiency,
        batch_half_saturation=32.0,
        gather_granularity="layer",
    )


def simple_cnn(name: str, input_hw: int, channels: Sequence[int],
               num_classes: int, kernel: int = 3,
               default_batch_size: int = 64,
               compute_efficiency: float = 1.0) -> ModelSpec:
    """A plain conv stack: conv-norm per stage, 2x pool between stages,
    global pool, classifier."""
    if input_hw < 2 ** len(channels):
        raise ConfigurationError(
            f"input_hw={input_hw} too small for {len(channels)} "
            f"pooling stages")
    if num_classes < 2 or kernel < 1:
        raise ConfigurationError(
            f"invalid num_classes={num_classes} or kernel={kernel}")
    layers: List[LayerSpec] = []
    cin, hw = 3, input_hw
    for i, cout in enumerate(channels):
        if cout < 1:
            raise ConfigurationError(f"channel widths must be >= 1")
        layers.append(LayerSpec(
            name=f"conv{i}", kind="conv",
            param_shape=(cout, cin, kernel, kernel),
            matrix_shape=(cout, cin * kernel * kernel),
            fwd_flops_per_sample=conv2d_flops(cin, cout, kernel, hw, hw),
            activation_bytes_per_sample=cout * hw * hw * FLOAT32_BYTES,
        ))
        layers.append(LayerSpec(
            name=f"norm{i}", kind="norm", extra_params=2 * cout,
            fwd_flops_per_sample=norm_flops(cout, hw * hw),
            activation_bytes_per_sample=cout * hw * hw * FLOAT32_BYTES,
        ))
        hw //= 2
        layers.append(LayerSpec(
            name=f"pool{i}", kind="pool",
            fwd_flops_per_sample=pool_flops(cout, hw, hw, 2),
            activation_bytes_per_sample=cout * hw * hw * FLOAT32_BYTES,
        ))
        cin = cout
    layers.append(LayerSpec(
        name="head", kind="linear",
        param_shape=(num_classes, cin),
        matrix_shape=(num_classes, cin),
        extra_params=num_classes,
        fwd_flops_per_sample=linear_flops(cin, num_classes),
        activation_bytes_per_sample=num_classes * FLOAT32_BYTES,
    ))
    return ModelSpec(
        name=name, layers=tuple(layers),
        default_batch_size=default_batch_size,
        sample_description=f"{input_hw}x{input_hw} RGB image",
        compute_efficiency=compute_efficiency,
        batch_half_saturation=16.0,
        gather_granularity="layer",
    )


def scaled_model(base: ModelSpec, width_factor: float,
                 name: str = "") -> ModelSpec:
    """A capacity what-if: every layer's width multiplied.

    Parameter counts and FLOPs scale quadratically with width (both
    fan-in and fan-out grow), activations linearly — the trend behind
    "larger models are more communication-heavy".
    """
    if width_factor <= 0:
        raise ConfigurationError(
            f"width_factor must be > 0, got {width_factor}")

    def scale_dim(d: int) -> int:
        return max(1, int(round(d * width_factor)))

    layers: List[LayerSpec] = []
    for layer in base.layers:
        if layer.param_shape:
            new_shape = tuple(scale_dim(d) for d in layer.param_shape)
            m = scale_dim(layer.matrix_shape[0]) if layer.has_matrix else 0
            # Keep matrix_shape consistent with the scaled param shape.
            numel = 1
            for d in new_shape:
                numel *= d
            if layer.has_matrix and m > 0 and numel % m == 0:
                new_matrix = (m, numel // m)
            elif layer.has_matrix:
                new_matrix = (numel, 1)
            else:
                new_matrix = (0, 0)
        else:
            new_shape, new_matrix = (), (0, 0)
        layers.append(LayerSpec(
            name=layer.name, kind=layer.kind,
            param_shape=new_shape,
            matrix_shape=new_matrix,
            extra_params=scale_dim(layer.extra_params)
            if layer.extra_params else 0,
            fwd_flops_per_sample=layer.fwd_flops_per_sample
            * width_factor ** 2,
            activation_bytes_per_sample=layer.activation_bytes_per_sample
            * width_factor,
        ))
    return ModelSpec(
        name=name or f"{base.name}-x{width_factor:g}",
        layers=tuple(layers),
        default_batch_size=base.default_batch_size,
        sample_description=base.sample_description,
        compute_efficiency=base.compute_efficiency,
        batch_half_saturation=base.batch_half_saturation,
        gather_granularity=base.gather_granularity,
    )
