"""Batch-path trace reconstruction vs the event loop's spans.

``repro.simulator.reconstruct`` derives per-iteration span timelines
from the batch kernel's recorded intermediates; its contract is *exact*
equality with what ``simulate_iteration`` emits — same spans (stream,
label, start, end, bytes), same key instants, same float bits — which
is what lets ``--trace`` stay on the vectorized fast path.  This module
is that contract, across schemes, world sizes, allreduce algorithms,
and fault schedules, plus the CLI wiring on top of it.
"""

import numpy as np
import pytest

from repro.compression import (
    FP16Scheme,
    PowerSGDScheme,
    SignSGDScheme,
    SyncSGDScheme,
    TopKScheme,
)
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, StragglerFault
from repro.hardware import P3_2XLARGE, ClusterConfig, cluster_for_gpus
from repro.models import get_model
from repro.simulator import DDPConfig, DDPSimulator, reconstruct_traces


@pytest.fixture(scope="module")
def rn50():
    return get_model("resnet50")


def make_sim(model, scheme=None, gpus=8, config=None, faults=None):
    cluster = (ClusterConfig(P3_2XLARGE, num_nodes=1) if gpus == 1
               else cluster_for_gpus(gpus))
    return DDPSimulator(model, cluster, scheme=scheme, config=config,
                        faults=faults)


STRAGGLER = FaultSchedule(stragglers=(
    StragglerFault(worker=0, slowdown=2.0, start_iteration=1,
                   duration_iterations=3),))

# Scheme x world-size x algorithm x fault matrix covering every
# reconstruction path: baseline bucketed pipeline (all four allreduce
# algorithms, with and without overlap), sequential compressed,
# overlapped compressed, the p == 1 edge cases (no comm draws, no
# waves), and faulted runs (stalls, slowdowns, retransmits).
CASES = [
    ("syncsgd-p1", SyncSGDScheme(), 1, {}, None),
    ("syncsgd-p4", SyncSGDScheme(), 4, {}, None),
    ("syncsgd-p32", SyncSGDScheme(), 32, {}, None),
    ("syncsgd-no-overlap", SyncSGDScheme(), 8,
     {"overlap_communication": False}, None),
    ("syncsgd-double-tree", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "double_tree"}, None),
    ("syncsgd-hierarchical", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "hierarchical"}, None),
    ("syncsgd-param-server", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "parameter_server"}, None),
    ("powersgd-p8", PowerSGDScheme(rank=4), 8, {}, None),
    ("powersgd-p1", PowerSGDScheme(rank=4), 1, {}, None),
    ("powersgd-overlap-p8", PowerSGDScheme(rank=4), 8,
     {"overlap_compression": True}, None),
    ("powersgd-overlap-p1", PowerSGDScheme(rank=4), 1,
     {"overlap_compression": True}, None),
    ("topk-p8", TopKScheme(fraction=0.01), 8, {}, None),
    ("signsgd-overlap", SignSGDScheme(), 8,
     {"overlap_compression": True}, None),
    ("fp16-p8", FP16Scheme(), 8, {}, None),
    ("closed-form", SyncSGDScheme(), 8,
     {"compute_jitter": 0.0, "comm_jitter": 0.0}, None),
    ("syncsgd-faulted", SyncSGDScheme(), 8, {}, STRAGGLER),
    ("powersgd-faulted", PowerSGDScheme(rank=4), 8, {}, STRAGGLER),
    ("powersgd-overlap-faulted", PowerSGDScheme(rank=4), 8,
     {"overlap_compression": True}, STRAGGLER),
    ("double-tree-faulted", SyncSGDScheme(), 8,
     {"allreduce_algorithm": "double_tree"}, STRAGGLER),
]


def span_rows(trace):
    return [(s.stream, s.label, s.start, s.end, s.bytes_on_wire)
            for s in trace.spans]


class TestExactEquivalence:
    @pytest.mark.parametrize(
        "scheme,gpus,cfg,faults", [c[1:] for c in CASES],
        ids=[c[0] for c in CASES])
    def test_reconstructed_spans_match_event_loop(self, rn50, scheme,
                                                  gpus, cfg, faults):
        iterations = 6
        config = DDPConfig(**cfg)
        reconstructed = reconstruct_traces(
            make_sim(rn50, scheme, gpus, config, faults),
            iterations=iterations, seed=0)
        event_sim = make_sim(rn50, scheme, gpus, config, faults)
        rng = np.random.default_rng(0)
        for i in range(iterations):
            event = event_sim.simulate_iteration(None, rng, iteration=i)
            got = reconstructed[i]
            # Exact float equality on every span and key instant — the
            # reconstruction replays the kernel's own arithmetic, it
            # does not re-derive it approximately.
            assert span_rows(got) == span_rows(event)
            assert got.forward_end == event.forward_end
            assert got.backward_end == event.backward_end
            assert got.sync_end == event.sync_end
            assert got.iteration_end == event.iteration_end

    def test_reconstruction_is_pure(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8, faults=STRAGGLER)
        before = sim.run(iterations=12, warmup=2, seed=0, mode="batch")
        reconstruct_traces(sim, iterations=4, seed=0)
        after = sim.run(iterations=12, warmup=2, seed=0, mode="batch")
        assert before == after

    def test_seed_matters(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        a = reconstruct_traces(sim, iterations=2, seed=0)
        b = reconstruct_traces(sim, iterations=2, seed=1)
        assert span_rows(a[0]) != span_rows(b[0])

    def test_iterations_validated(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        with pytest.raises(ConfigurationError):
            reconstruct_traces(sim, iterations=0)


class TestModeStaysBatch:
    def test_auto_with_tracing_keeps_batch_and_no_fallback(self, rn50):
        sim = make_sim(rn50, SyncSGDScheme(), 8)
        assert sim.resolve_mode("auto", tracing=True) == ("batch", None)
        sim.run(iterations=12, warmup=2, mode="auto")
        assert sim.last_run_mode == "batch"
        assert sim.last_run_fallback is None


class TestCLIByteIdentity:
    def export(self, tmp_path, name, mode, faults_path=None):
        from repro.cli import main
        out = tmp_path / name
        argv = ["simulate", "--model", "resnet50", "--gpus", "8",
                "--scheme", "powersgd:rank=4", "--iterations", "12",
                "--sim-mode", mode, "--trace", str(out)]
        if faults_path is not None:
            argv += ["--faults", str(faults_path)]
        assert main(argv) == 0
        return out.read_bytes()

    def test_trace_files_identical_across_modes(self, tmp_path):
        assert self.export(tmp_path, "batch.json", "batch") == \
            self.export(tmp_path, "event.json", "event")

    def test_faulted_trace_files_identical_across_modes(self, tmp_path):
        spec = tmp_path / "faults.json"
        spec.write_text(
            '{"stragglers": [{"worker": 0, "slowdown": 2.0, '
            '"start_iteration": 1, "duration_iterations": 3}]}')
        assert self.export(tmp_path, "fb.json", "batch", spec) == \
            self.export(tmp_path, "fe.json", "event", spec)

    def test_auto_trace_stays_batch(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "auto.json"
        assert main(["simulate", "--model", "resnet50", "--gpus", "8",
                     "--iterations", "12", "--trace", str(out)]) == 0
        text = capsys.readouterr().out
        assert "sim mode: batch" in text
        assert "fell back" not in text
        assert out.exists()
